//! RPC vocabulary: client↔broker, broker↔broker, broker↔controller, and the
//! KRaft metadata quorum.

use std::fmt;

use s2g_sim::Message;

use crate::record::{Offset, ProducerId, RecordBatch, TopicPartition};

/// Identifies a broker in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BrokerId(pub u32);

impl fmt::Display for BrokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Matches a response to its request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CorrelationId(pub u64);

/// Monotonically increasing per-partition leadership epoch; fences stale
/// leaders and stale metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LeaderEpoch(pub u64);

impl LeaderEpoch {
    /// The epoch after this one.
    pub fn next(self) -> LeaderEpoch {
        LeaderEpoch(self.0 + 1)
    }
}

/// Producer acknowledgement mode (Kafka's `acks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckMode {
    /// Acknowledge once the leader has appended (`acks=1`, the Kafka 2.x
    /// default, and the mode under which the ZooKeeper-era partition bug
    /// silently loses data).
    #[default]
    Leader,
    /// Acknowledge once all in-sync replicas have appended (`acks=all`).
    All,
}

/// Error codes carried in responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Success.
    None,
    /// The receiving broker is not the partition leader.
    NotLeader,
    /// Unknown topic or partition.
    UnknownTopicPartition,
    /// Fetch offset is beyond the log end (or before log start).
    OffsetOutOfRange,
    /// The broker is fenced (lost its controller session in KRaft mode).
    Fenced,
    /// Not enough in-sync replicas to satisfy `acks=all`.
    NotEnoughReplicas,
    /// The request carried a stale leader epoch.
    StaleEpoch,
    /// The consumer group's membership or assignment changed; the member
    /// must rejoin to learn the new generation and assignment.
    RebalanceInProgress,
    /// The request carried a stale group generation (or an unknown member):
    /// a fenced offset commit from an evicted member, or a heartbeat from a
    /// forgotten one. The member must rejoin.
    IllegalGeneration,
}

impl ErrorCode {
    /// True for `ErrorCode::None`.
    pub fn is_ok(self) -> bool {
        self == ErrorCode::None
    }

    /// True for errors that a client should retry against fresh metadata.
    pub fn is_retriable(self) -> bool {
        matches!(
            self,
            ErrorCode::NotLeader
                | ErrorCode::Fenced
                | ErrorCode::NotEnoughReplicas
                | ErrorCode::StaleEpoch
        )
    }

    /// True for errors that require the consumer to rejoin its group.
    pub fn needs_rejoin(self) -> bool {
        matches!(
            self,
            ErrorCode::RebalanceInProgress | ErrorCode::IllegalGeneration
        )
    }
}

/// Leadership metadata for one partition, as served to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMetadata {
    /// The partition described.
    pub tp: TopicPartition,
    /// Current leader, if one is elected.
    pub leader: Option<BrokerId>,
    /// Current leadership epoch.
    pub epoch: LeaderEpoch,
    /// In-sync replica set.
    pub isr: Vec<BrokerId>,
    /// Full replica assignment (first entry is the preferred leader).
    pub replicas: Vec<BrokerId>,
}

impl PartitionMetadata {
    fn encoded_len(&self) -> usize {
        self.tp.topic.len() + 16 + 6 * (self.isr.len() + self.replicas.len())
    }
}

/// Fixed per-RPC envelope overhead (API key, version, correlation, client id).
pub const RPC_OVERHEAD: usize = 38;

/// Client ↔ broker RPCs (produce, fetch, metadata).
#[derive(Debug, Clone)]
pub enum ClientRpc {
    /// Append a batch to a partition.
    ProduceRequest {
        /// Correlation id.
        corr: CorrelationId,
        /// Target partition.
        tp: TopicPartition,
        /// Records to append.
        batch: RecordBatch,
        /// Acknowledgement mode.
        acks: AckMode,
        /// The leader epoch the producer believes is current for `tp`
        /// (from its metadata cache). A broker whose leadership epoch is
        /// newer rejects the request with [`ErrorCode::StaleEpoch`] — this
        /// is the fence that bounces a delayed produce aimed at a deposed
        /// leader's reign after a new election.
        epoch: LeaderEpoch,
        /// When set, the batch is part of the producer's open transaction
        /// with this sequence number: the records are appended but withheld
        /// from read-committed consumers until an [`EndTxn`] commit marker
        /// arrives (a checkpoint-aligned transactional sink's staging
        /// write).
        ///
        /// [`EndTxn`]: ClientRpc::EndTxn
        txn: Option<u64>,
    },
    /// Result of a produce.
    ProduceResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// Target partition.
        tp: TopicPartition,
        /// Offset of the first appended record (when successful).
        base_offset: Offset,
        /// Outcome.
        error: ErrorCode,
    },
    /// Read records from a partition starting at `offset`.
    FetchRequest {
        /// Correlation id.
        corr: CorrelationId,
        /// Source partition.
        tp: TopicPartition,
        /// First offset wanted.
        offset: Offset,
        /// Cap on returned records.
        max_records: usize,
        /// Read-committed isolation: records of an open transaction are
        /// withheld (the fetch is capped at the partition's last stable
        /// offset) and records of aborted transactions are skipped.
        read_committed: bool,
    },
    /// Records returned by a fetch.
    FetchResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// Source partition.
        tp: TopicPartition,
        /// Records at and after the requested offset (up to the high
        /// watermark only — uncommitted records are never served).
        batch: RecordBatch,
        /// The partition's high watermark.
        high_watermark: Offset,
        /// The offset the consumer should fetch next. On a compacted log
        /// the served records are not contiguous, so advancing by
        /// `batch.len()` would re-read across the holes; the broker computes
        /// the correct next position instead. On `OffsetOutOfRange` this is
        /// the reset position (the log start below retention, the high
        /// watermark above it).
        next_offset: Offset,
        /// Outcome.
        error: ErrorCode,
    },
    /// Ask any broker for cluster metadata.
    MetadataRequest {
        /// Correlation id.
        corr: CorrelationId,
    },
    /// Cluster metadata snapshot.
    MetadataResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// Per-partition leadership info.
        partitions: Vec<PartitionMetadata>,
    },
    /// Durably record a consumer group's positions on the broker, so a
    /// recovering consumer resumes where the group left off instead of
    /// resetting to the high watermark (Kafka's `OffsetCommit`).
    OffsetCommit {
        /// Correlation id.
        corr: CorrelationId,
        /// Consumer group name.
        group: String,
        /// Positions to record, one per partition.
        offsets: Vec<(TopicPartition, Offset)>,
        /// Generation fencing: `(member id, generation)` of the committing
        /// member. When present, the coordinator rejects the commit with
        /// [`ErrorCode::IllegalGeneration`] unless the member is current at
        /// exactly that generation — a zombie evicted by a rebalance can
        /// never clobber the offsets its successor is advancing. `None`
        /// (group-less or membership-less commits) skips the fence.
        member: Option<(String, u64)>,
    },
    /// Acknowledgement of an offset commit.
    OffsetCommitResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// Outcome.
        error: ErrorCode,
    },
    /// Read a consumer group's committed positions (Kafka's `OffsetFetch`).
    OffsetFetch {
        /// Correlation id.
        corr: CorrelationId,
        /// Consumer group name.
        group: String,
        /// Partitions of interest.
        tps: Vec<TopicPartition>,
    },
    /// Committed positions for the requested partitions; `None` when the
    /// group has no commit recorded for a partition.
    OffsetFetchResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// Per-partition committed position, aligned with the request.
        offsets: Vec<(TopicPartition, Option<Offset>)>,
    },
    /// Flip a transaction marker: commit makes the staged records visible
    /// to read-committed consumers, abort hides them forever (Kafka's
    /// `EndTxn`). Applied on every partition this broker hosts.
    EndTxn {
        /// Correlation id.
        corr: CorrelationId,
        /// The transactional producer.
        producer: ProducerId,
        /// The transaction's sequence number.
        txn: u64,
        /// True to commit, false to abort.
        commit: bool,
    },
    /// Acknowledgement of an [`EndTxn`](ClientRpc::EndTxn).
    EndTxnResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// Outcome.
        error: ErrorCode,
    },
    /// Resolve every open transaction a crashed producer incarnation left
    /// behind: transactions at or below `commit_upto` are committed (their
    /// prepare completed — the matching checkpoint is durable), newer ones
    /// are aborted and will be re-staged by the recovered worker's replay.
    /// Only transactions staged under a producer epoch *below* `epoch` are
    /// touched (Kafka-style fencing), so a delayed or retried recover can
    /// never abort the new incarnation's own staged output.
    TxnRecover {
        /// Correlation id.
        corr: CorrelationId,
        /// The transactional producer being recovered.
        producer: ProducerId,
        /// Highest transaction sequence whose commit must roll forward.
        commit_upto: u64,
        /// The recovering incarnation's producer epoch; only transactions
        /// from older epochs are resolved.
        epoch: u32,
    },
    /// Acknowledgement of a [`TxnRecover`](ClientRpc::TxnRecover).
    TxnRecoverResponse {
        /// Correlation id.
        corr: CorrelationId,
    },
    /// Join (or rejoin) a consumer group on its coordinator broker
    /// (`fnv1a(group) % brokers`). The coordinator admits the member,
    /// bumps the generation when membership changed, computes a sticky
    /// partition assignment server-side (KIP-848 style), and answers with
    /// [`JoinGroupResponse`](ClientRpc::JoinGroupResponse).
    JoinGroup {
        /// Correlation id.
        corr: CorrelationId,
        /// Consumer group name.
        group: String,
        /// This member's stable id (survives rejoin; a respawned stub
        /// reuses it, which is what makes assignment sticky across its
        /// crash).
        member: String,
        /// Topics the member subscribes to.
        topics: Vec<String>,
    },
    /// The coordinator's admission + assignment answer.
    JoinGroupResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// The group generation this assignment belongs to; commits and
        /// heartbeats are fenced against it.
        generation: u64,
        /// Partitions this member owns until the next rebalance.
        assigned: Vec<TopicPartition>,
        /// Outcome.
        error: ErrorCode,
    },
    /// Group-membership liveness beacon. A member whose heartbeats stop
    /// for the group session timeout is evicted and its partitions are
    /// reassigned to the survivors.
    GroupHeartbeat {
        /// Correlation id.
        corr: CorrelationId,
        /// Consumer group name.
        group: String,
        /// The heartbeating member.
        member: String,
        /// The generation the member believes is current.
        generation: u64,
    },
    /// Heartbeat answer. [`ErrorCode::RebalanceInProgress`] (stale
    /// generation) or [`ErrorCode::IllegalGeneration`] (unknown member —
    /// evicted, or the coordinator restarted) sends the member back to
    /// [`JoinGroup`](ClientRpc::JoinGroup).
    GroupHeartbeatResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// Outcome.
        error: ErrorCode,
    },
}

impl Message for ClientRpc {
    fn wire_size(&self) -> usize {
        RPC_OVERHEAD
            + match self {
                ClientRpc::ProduceRequest { tp, batch, .. } => {
                    tp.topic.len() + 8 + batch.wire_len()
                }
                ClientRpc::ProduceResponse { tp, .. } => tp.topic.len() + 16,
                ClientRpc::FetchRequest { tp, .. } => tp.topic.len() + 20,
                ClientRpc::FetchResponse { tp, batch, .. } => {
                    tp.topic.len() + 24 + batch.wire_len()
                }
                ClientRpc::MetadataRequest { .. } => 4,
                ClientRpc::MetadataResponse { partitions, .. } => {
                    partitions
                        .iter()
                        .map(PartitionMetadata::encoded_len)
                        .sum::<usize>()
                        + 8
                }
                ClientRpc::OffsetCommit {
                    group,
                    offsets,
                    member,
                    ..
                } => {
                    group.len()
                        + offsets
                            .iter()
                            .map(|(tp, _)| tp.topic.len() + 12)
                            .sum::<usize>()
                        + member.as_ref().map_or(0, |(m, _)| m.len() + 8)
                }
                ClientRpc::OffsetCommitResponse { .. } => 6,
                ClientRpc::OffsetFetch { group, tps, .. } => {
                    group.len() + tps.iter().map(|tp| tp.topic.len() + 4).sum::<usize>()
                }
                ClientRpc::OffsetFetchResponse { offsets, .. } => {
                    offsets
                        .iter()
                        .map(|(tp, _)| tp.topic.len() + 13)
                        .sum::<usize>()
                        + 4
                }
                ClientRpc::EndTxn { .. } => 21,
                ClientRpc::EndTxnResponse { .. } => 6,
                ClientRpc::TxnRecover { .. } => 24,
                ClientRpc::TxnRecoverResponse { .. } => 4,
                ClientRpc::JoinGroup {
                    group,
                    member,
                    topics,
                    ..
                } => group.len() + member.len() + topics.iter().map(|t| t.len() + 2).sum::<usize>(),
                ClientRpc::JoinGroupResponse { assigned, .. } => {
                    14 + assigned.iter().map(|tp| tp.topic.len() + 4).sum::<usize>()
                }
                ClientRpc::GroupHeartbeat { group, member, .. } => group.len() + member.len() + 12,
                ClientRpc::GroupHeartbeatResponse { .. } => 6,
            }
    }
}

/// Broker ↔ broker replication RPCs (follower-driven fetch, like Kafka).
#[derive(Debug, Clone)]
pub enum ReplicaRpc {
    /// Follower asks the leader for records after its log end.
    Fetch {
        /// Correlation id.
        corr: CorrelationId,
        /// Partition replicated.
        tp: TopicPartition,
        /// The requesting follower.
        from: BrokerId,
        /// Follower's current log end offset.
        log_end: Offset,
        /// Follower's view of the leader epoch.
        epoch: LeaderEpoch,
    },
    /// Leader's reply to a replica fetch.
    FetchResponse {
        /// Correlation id.
        corr: CorrelationId,
        /// Partition replicated.
        tp: TopicPartition,
        /// Records after the follower's log end.
        batch: RecordBatch,
        /// Leader epoch of each record in `batch` (aligned by index), so the
        /// follower can tag its log entries for later divergence checks.
        epochs: Vec<LeaderEpoch>,
        /// Log offset of each record in `batch` (aligned by index). A
        /// compacted leader log has holes, and replication must preserve
        /// offsets so replicas stay byte-identical — followers append at
        /// these explicit positions instead of assuming contiguity.
        offsets: Vec<Offset>,
        /// Leader's high watermark.
        high_watermark: Offset,
        /// Leader epoch (so stale followers learn they diverged).
        epoch: LeaderEpoch,
        /// When set, the follower must truncate its log to this offset
        /// before appending — the divergence-reconciliation path.
        truncate_to: Option<Offset>,
        /// Ongoing (unresolved) transaction ranges on the leader, as
        /// `(producer, txn, first_offset, end_offset, producer_epoch)`
        /// tuples. Followers mirror these so that on promotion the new
        /// leader can serve read-committed fetches and resolve or fence
        /// the in-flight transactions itself — transactional state moves
        /// with leadership instead of dying with the old leader.
        txn_ongoing: Vec<(u32, u64, Offset, Offset, u32)>,
        /// Aborted transaction ranges `(first_offset, end_offset)` still
        /// inside the leader's log, mirrored for read-committed filtering
        /// after promotion.
        txn_aborted: Vec<(Offset, Offset)>,
        /// Producer idempotence state `(producer, epoch, last_seq)`,
        /// mirrored so a promoted follower keeps filtering duplicate
        /// produce retries exactly where the old leader left off.
        producer_seqs: Vec<(u32, u32, u64)>,
        /// Outcome.
        error: ErrorCode,
    },
}

impl Message for ReplicaRpc {
    fn wire_size(&self) -> usize {
        RPC_OVERHEAD
            + match self {
                ReplicaRpc::Fetch { tp, .. } => tp.topic.len() + 24,
                ReplicaRpc::FetchResponse {
                    tp,
                    batch,
                    txn_ongoing,
                    txn_aborted,
                    producer_seqs,
                    ..
                } => {
                    tp.topic.len()
                        + 32
                        + batch.len() * 8
                        + batch.wire_len()
                        + txn_ongoing.len() * 32
                        + txn_aborted.len() * 16
                        + producer_seqs.len() * 16
                }
            }
    }
}

/// A record in the cluster metadata log (KRaft) or ZooKeeper znode update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetadataRecord {
    /// A topic was created.
    TopicCreated {
        /// Topic name.
        topic: String,
        /// Number of partitions.
        partitions: u32,
        /// Replication factor.
        replication: u32,
    },
    /// Partition leadership or ISR changed.
    PartitionChange {
        /// The partition.
        tp: TopicPartition,
        /// New leader (None while a new election is pending).
        leader: Option<BrokerId>,
        /// New ISR.
        isr: Vec<BrokerId>,
        /// New epoch.
        epoch: LeaderEpoch,
    },
    /// A broker registered (or re-registered) with the controller.
    BrokerRegistered {
        /// The broker.
        broker: BrokerId,
    },
    /// A broker was fenced (session expired / heartbeats lost).
    BrokerFenced {
        /// The broker.
        broker: BrokerId,
    },
}

impl MetadataRecord {
    fn encoded_len(&self) -> usize {
        match self {
            MetadataRecord::TopicCreated { topic, .. } => topic.len() + 16,
            MetadataRecord::PartitionChange { tp, isr, .. } => tp.topic.len() + 20 + 6 * isr.len(),
            MetadataRecord::BrokerRegistered { .. } | MetadataRecord::BrokerFenced { .. } => 8,
        }
    }
}

/// Broker ↔ controller RPCs (sessions, ISR changes, metadata propagation).
#[derive(Debug, Clone)]
pub enum ControllerRpc {
    /// Periodic broker liveness heartbeat (ZooKeeper session touch / KRaft
    /// broker heartbeat).
    Heartbeat {
        /// The broker.
        broker: BrokerId,
        /// The broker process's incarnation, bumped on every respawn. A
        /// jump tells the controller the broker bounced — even within its
        /// session timeout — so it re-teaches partition roles and metadata
        /// (Kafka's broker epoch).
        incarnation: u64,
    },
    /// Heartbeat acknowledgement; carries the controller's metadata version
    /// so brokers notice staleness.
    HeartbeatAck {
        /// Controller metadata version.
        metadata_version: u64,
        /// Whether the broker is fenced and must stop serving.
        fenced: bool,
    },
    /// Leader asks the controller to record an ISR change.
    AlterIsr {
        /// The partition.
        tp: TopicPartition,
        /// Requesting leader.
        from: BrokerId,
        /// Leader's epoch (stale requests are rejected).
        epoch: LeaderEpoch,
        /// Proposed new ISR.
        new_isr: Vec<BrokerId>,
    },
    /// Controller instructs a broker about partition leadership.
    LeaderAndIsr {
        /// The partition.
        tp: TopicPartition,
        /// The leader (None = leaderless, awaiting election).
        leader: Option<BrokerId>,
        /// In-sync replicas.
        isr: Vec<BrokerId>,
        /// Leadership epoch.
        epoch: LeaderEpoch,
        /// Full replica set (first = preferred leader).
        replicas: Vec<BrokerId>,
    },
    /// Controller pushes a metadata delta to brokers/clients.
    MetadataUpdate {
        /// Changed records.
        records: Vec<MetadataRecord>,
        /// Metadata version after applying.
        metadata_version: u64,
    },
}

impl Message for ControllerRpc {
    fn wire_size(&self) -> usize {
        RPC_OVERHEAD
            + match self {
                ControllerRpc::Heartbeat { .. } => 16,
                ControllerRpc::HeartbeatAck { .. } => 12,
                ControllerRpc::AlterIsr { tp, new_isr, .. } => {
                    tp.topic.len() + 20 + 6 * new_isr.len()
                }
                ControllerRpc::LeaderAndIsr {
                    tp, isr, replicas, ..
                } => tp.topic.len() + 20 + 6 * (isr.len() + replicas.len()),
                ControllerRpc::MetadataUpdate { records, .. } => {
                    records
                        .iter()
                        .map(MetadataRecord::encoded_len)
                        .sum::<usize>()
                        + 12
                }
            }
    }
}

/// Raft RPCs for the KRaft metadata quorum.
#[derive(Debug, Clone)]
pub enum RaftRpc {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// The candidate.
        candidate: BrokerId,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote reply.
    VoteResponse {
        /// Voter's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
        /// The voter.
        from: BrokerId,
    },
    /// Leader replicates metadata log entries.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// The leader.
        leader: BrokerId,
        /// Index of the entry preceding `entries`.
        prev_log_index: u64,
        /// Term of that entry.
        prev_log_term: u64,
        /// New entries as `(term, record)` pairs.
        entries: Vec<(u64, MetadataRecord)>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Append reply.
    AppendResponse {
        /// Follower's current term.
        term: u64,
        /// Whether the entries were appended.
        success: bool,
        /// Follower's resulting log end index (for match tracking).
        match_index: u64,
        /// The follower.
        from: BrokerId,
    },
}

impl Message for RaftRpc {
    fn wire_size(&self) -> usize {
        RPC_OVERHEAD
            + match self {
                RaftRpc::RequestVote { .. } => 28,
                RaftRpc::VoteResponse { .. } => 16,
                RaftRpc::AppendEntries { entries, .. } => {
                    32 + entries
                        .iter()
                        .map(|(_, r)| 8 + r.encoded_len())
                        .sum::<usize>()
                }
                RaftRpc::AppendResponse { .. } => 24,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use s2g_sim::SimTime;

    #[test]
    fn error_code_classification() {
        assert!(ErrorCode::None.is_ok());
        assert!(!ErrorCode::NotLeader.is_ok());
        assert!(ErrorCode::NotLeader.is_retriable());
        assert!(ErrorCode::Fenced.is_retriable());
        assert!(!ErrorCode::OffsetOutOfRange.is_retriable());
        assert!(!ErrorCode::UnknownTopicPartition.is_retriable());
    }

    #[test]
    fn produce_request_size_scales_with_batch() {
        let tp = TopicPartition::new("t", 0);
        let small = ClientRpc::ProduceRequest {
            corr: CorrelationId(1),
            tp: tp.clone(),
            batch: RecordBatch::from_records(vec![Record::keyless(vec![0u8; 10], SimTime::ZERO)]),
            acks: AckMode::Leader,
            epoch: LeaderEpoch(0),
            txn: None,
        };
        let big = ClientRpc::ProduceRequest {
            corr: CorrelationId(2),
            tp,
            batch: RecordBatch::from_records(vec![Record::keyless(vec![0u8; 1000], SimTime::ZERO)]),
            acks: AckMode::Leader,
            epoch: LeaderEpoch(0),
            txn: None,
        };
        assert_eq!(big.wire_size() - small.wire_size(), 990);
        assert!(small.wire_size() > RPC_OVERHEAD);
    }

    #[test]
    fn metadata_response_size_scales_with_partitions() {
        let one = ClientRpc::MetadataResponse {
            corr: CorrelationId(0),
            partitions: vec![PartitionMetadata {
                tp: TopicPartition::new("topic", 0),
                leader: Some(BrokerId(1)),
                epoch: LeaderEpoch(0),
                isr: vec![BrokerId(1)],
                replicas: vec![BrokerId(1), BrokerId(2)],
            }],
        };
        let none = ClientRpc::MetadataResponse {
            corr: CorrelationId(0),
            partitions: vec![],
        };
        assert!(one.wire_size() > none.wire_size());
    }

    #[test]
    fn raft_append_size_scales_with_entries() {
        let empty = RaftRpc::AppendEntries {
            term: 1,
            leader: BrokerId(0),
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        };
        let one = RaftRpc::AppendEntries {
            term: 1,
            leader: BrokerId(0),
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![(
                1,
                MetadataRecord::BrokerFenced {
                    broker: BrokerId(3),
                },
            )],
            leader_commit: 0,
        };
        assert!(one.wire_size() > empty.wire_size());
    }

    #[test]
    fn offset_rpc_sizes_scale_with_partitions() {
        let one = ClientRpc::OffsetCommit {
            corr: CorrelationId(0),
            group: "g".into(),
            offsets: vec![(TopicPartition::new("topic", 0), Offset(42))],
            member: None,
        };
        let none = ClientRpc::OffsetCommit {
            corr: CorrelationId(0),
            group: "g".into(),
            offsets: vec![],
            member: Some(("m0".into(), 3)),
        };
        assert!(one.wire_size() > none.wire_size());
        let fetch = ClientRpc::OffsetFetch {
            corr: CorrelationId(0),
            group: "g".into(),
            tps: vec![TopicPartition::new("topic", 0)],
        };
        assert!(fetch.wire_size() > RPC_OVERHEAD);
        let resp = ClientRpc::OffsetFetchResponse {
            corr: CorrelationId(0),
            offsets: vec![(TopicPartition::new("topic", 0), Some(Offset(7)))],
        };
        assert!(resp.wire_size() > RPC_OVERHEAD);
    }

    #[test]
    fn epoch_next() {
        assert_eq!(LeaderEpoch(3).next(), LeaderEpoch(4));
        assert!(LeaderEpoch(3) < LeaderEpoch(4));
    }

    #[test]
    fn ack_mode_default_is_leader() {
        assert_eq!(AckMode::default(), AckMode::Leader);
    }
}
