//! The shared batch frame — one record framing for every layer.
//!
//! Producer accumulation, broker log segments, and replica transfer all
//! frame record runs identically: a small header carrying the frame bases
//! (offset, timestamp) followed by per-record entries whose offset and
//! timestamp are varint *deltas* against those bases. Dense runs — the
//! common case — cost one or two bytes per field instead of eight, which is
//! where Kafka's batch format gets its density; compacted logs with offset
//! holes still encode exactly (a hole is just a larger delta).
//!
//! The per-record entry codec lives here ([`put_frame_record`] /
//! [`read_frame_record`]) so the broker's segment codec and the
//! [`RecordBatch`] frame stay byte-compatible by construction instead of by
//! parallel maintenance.

use bytes::Bytes;
use s2g_sim::SimTime;

use crate::codec::{put_bytes, put_svarint, put_u64, put_u8, put_uvarint, Cursor};
use crate::record::{Compression, Offset, ProducerId, Record, RecordBatch};

/// Version byte of the batch frame format.
pub const BATCH_FRAME_VERSION: u8 = 1;

/// Appends one record in the shared frame layout: offset and timestamp
/// deltas against the frame bases, then key/value and producer identity.
pub fn put_frame_record(
    out: &mut Vec<u8>,
    base_offset: Offset,
    base_ts: SimTime,
    offset: Offset,
    r: &Record,
) {
    debug_assert!(offset >= base_offset, "frame offsets never precede base");
    put_uvarint(out, offset.value() - base_offset.value());
    put_svarint(
        out,
        r.timestamp.as_nanos() as i64 - base_ts.as_nanos() as i64,
    );
    match &r.key {
        Some(k) => {
            put_u8(out, 1);
            put_bytes(out, k);
        }
        None => put_u8(out, 0),
    }
    put_bytes(out, &r.value);
    put_uvarint(out, u64::from(r.producer.0));
    put_uvarint(out, u64::from(r.producer_epoch));
    put_uvarint(out, r.producer_seq);
}

/// Reads one record written by [`put_frame_record`], returning it with its
/// absolute offset. `None` on truncated or malformed input.
pub fn read_frame_record(
    cur: &mut Cursor<'_>,
    base_offset: Offset,
    base_ts: SimTime,
) -> Option<(Offset, Record)> {
    let offset = Offset(base_offset.value().checked_add(cur.uvarint()?)?);
    let ts = (base_ts.as_nanos() as i64).checked_add(cur.svarint()?)?;
    let timestamp = SimTime::from_nanos(u64::try_from(ts).ok()?);
    let key = match cur.u8()? {
        0 => None,
        _ => Some(Bytes::copy_from_slice(cur.bytes()?)),
    };
    let value = Bytes::copy_from_slice(cur.bytes()?);
    let producer = ProducerId(u32::try_from(cur.uvarint()?).ok()?);
    let producer_epoch = u32::try_from(cur.uvarint()?).ok()?;
    let producer_seq = cur.uvarint()?;
    Some((
        offset,
        Record {
            key,
            value,
            timestamp,
            producer,
            producer_epoch,
            producer_seq,
        },
    ))
}

impl RecordBatch {
    /// Encodes the batch as one frame based at `base_offset` (records take
    /// consecutive offsets from it, the producer-side convention before the
    /// broker assigns real ones).
    pub fn encode_frame(&self, base_offset: Offset) -> Vec<u8> {
        let base_ts = self
            .records()
            .first()
            .map(|r| r.timestamp)
            .unwrap_or(SimTime::ZERO);
        let mut out = Vec::with_capacity(32 + self.record_bytes());
        put_u8(&mut out, BATCH_FRAME_VERSION);
        put_u8(
            &mut out,
            match self.compression() {
                Compression::None => 0,
                Compression::Lz4 => 1,
            },
        );
        put_uvarint(&mut out, base_offset.value());
        put_u64(&mut out, base_ts.as_nanos());
        put_uvarint(&mut out, self.len() as u64);
        for (i, r) in self.iter().enumerate() {
            put_frame_record(
                &mut out,
                base_offset,
                base_ts,
                Offset(base_offset.value() + i as u64),
                r,
            );
        }
        out
    }

    /// Decodes a frame written by [`encode_frame`](Self::encode_frame),
    /// returning the batch and its base offset. `None` on truncated,
    /// malformed, or wrong-version input.
    pub fn decode_frame(buf: &[u8]) -> Option<(RecordBatch, Offset)> {
        let mut cur = Cursor::new(buf);
        if cur.u8()? != BATCH_FRAME_VERSION {
            return None;
        }
        let compression = match cur.u8()? {
            0 => Compression::None,
            1 => Compression::Lz4,
            _ => return None,
        };
        let base_offset = Offset(cur.uvarint()?);
        let base_ts = SimTime::from_nanos(cur.u64()?);
        let count = cur.uvarint()? as usize;
        let mut records = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let (_, r) = read_frame_record(&mut cur, base_offset, base_ts)?;
            records.push(r);
        }
        Some((
            RecordBatch::from_records(records).with_compression(compression),
            base_offset,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> Record {
        Record::new(
            format!("k{i}"),
            vec![i as u8; 8 + i as usize],
            SimTime::from_millis(1_000 + i),
        )
        .from_producer(ProducerId(7), i)
        .with_producer_epoch(2)
    }

    #[test]
    fn frame_round_trips() {
        let batch = RecordBatch::from_records((0..5).map(rec).collect());
        let buf = batch.encode_frame(Offset(40));
        let (back, base) = RecordBatch::decode_frame(&buf).expect("valid frame");
        assert_eq!(base, Offset(40));
        assert_eq!(back, batch);
    }

    #[test]
    fn empty_frame_round_trips() {
        let batch = RecordBatch::new();
        let (back, base) = RecordBatch::decode_frame(&batch.encode_frame(Offset::ZERO)).unwrap();
        assert_eq!(base, Offset::ZERO);
        assert!(back.is_empty());
    }

    #[test]
    fn compression_flag_survives() {
        let batch = RecordBatch::from_records(vec![rec(0)]).with_compression(Compression::Lz4);
        let (back, _) = RecordBatch::decode_frame(&batch.encode_frame(Offset(3))).unwrap();
        assert_eq!(back.compression(), Compression::Lz4);
        assert_eq!(back, batch);
    }

    #[test]
    fn delta_encoding_beats_absolute_fields() {
        // A dense 100-record run near offset 1e9: deltas are 1-byte, the
        // absolute offset appears once in the header.
        let batch = RecordBatch::from_records((0..100).map(rec).collect());
        let framed = batch.encode_frame(Offset(1_000_000_000)).len();
        // Absolute framing would spend 16 bytes per record on offset+ts.
        assert!(
            framed < batch.encoded_len(),
            "frame {framed} vs encoded_len {}",
            batch.encoded_len()
        );
    }

    #[test]
    fn truncated_and_malformed_frames_are_rejected() {
        let batch = RecordBatch::from_records((0..3).map(rec).collect());
        let buf = batch.encode_frame(Offset::ZERO);
        assert!(RecordBatch::decode_frame(&buf[..buf.len() - 2]).is_none());
        let mut wrong_version = buf.clone();
        wrong_version[0] = 99;
        assert!(RecordBatch::decode_frame(&wrong_version).is_none());
        let mut wrong_codec = buf;
        wrong_codec[1] = 9;
        assert!(RecordBatch::decode_frame(&wrong_codec).is_none());
    }

    #[test]
    fn offset_holes_encode_exactly() {
        let mut out = Vec::new();
        let base = Offset(10);
        let base_ts = SimTime::from_millis(5);
        put_frame_record(&mut out, base, base_ts, Offset(10), &rec(0));
        put_frame_record(&mut out, base, base_ts, Offset(17), &rec(1)); // hole
        let mut cur = Cursor::new(&out);
        let (o1, r1) = read_frame_record(&mut cur, base, base_ts).unwrap();
        let (o2, r2) = read_frame_record(&mut cur, base, base_ts).unwrap();
        assert_eq!((o1, o2), (Offset(10), Offset(17)));
        assert_eq!((r1, r2), (rec(0), rec(1)));
    }
}
