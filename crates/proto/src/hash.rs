//! Stable record-key hashing, shared by every layer that must agree on
//! where a key lives.
//!
//! One FNV-1a implementation backs three decisions that have to be
//! mutually consistent for keyed parallelism to be correct:
//!
//! * the producer's keyed partitioner ([`partition_for_key`]) — which
//!   partition a keyed record is appended to;
//! * key-group assignment ([`key_group`]) — which of the job's fixed
//!   `key_groups` a record key belongs to (state is sliced along these
//!   groups, so a rescale redistributes groups, never single keys);
//! * key-group → operator-instance ownership ([`owner_of_group`],
//!   Flink's `operator_index = group * parallelism / max_parallelism`
//!   formula) — which parallel instance owns a group at a given
//!   parallelism.
//!
//! Because intermediate shuffle topics are declared with exactly
//! `key_groups` partitions, the keyed partitioner *is* the shuffle router:
//! `partition == key_group`, and the downstream instance that owns the
//! group is the one consuming the partition.

/// 64-bit FNV-1a over a byte string. Deterministic across runs and
/// platforms — the stability contract every keyed route depends on.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The key group a record key hashes into, out of `groups` fixed groups.
///
/// # Panics
///
/// Panics if `groups` is zero.
pub fn key_group(key: &[u8], groups: u32) -> u32 {
    assert!(groups > 0, "key_groups must be positive");
    (fnv1a(key) % groups as u64) as u32
}

/// The partition a keyed record routes to on a topic with `partitions`
/// partitions (the keyed half of the producer's partitioner; keyless
/// records stay round-robin).
///
/// # Panics
///
/// Panics if `partitions` is zero.
pub fn partition_for_key(key: &[u8], partitions: u32) -> u32 {
    assert!(partitions > 0, "a topic has at least one partition");
    (fnv1a(key) % partitions as u64) as u32
}

/// The parallel instance that owns key group (or partition) `group` when
/// `total` groups are split across `parallelism` instances — contiguous
/// ranges, so a rescale moves whole group ranges between instances.
///
/// # Panics
///
/// Panics if `parallelism` or `total` is zero, or `group >= total`.
pub fn owner_of_group(group: u32, parallelism: u32, total: u32) -> u32 {
    assert!(parallelism > 0, "parallelism must be positive");
    assert!(total > 0, "group count must be positive");
    assert!(group < total, "group {group} out of range {total}");
    ((group as u64 * parallelism as u64) / total as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn key_group_and_partition_agree_when_counts_match() {
        for key in ["alpha", "beta", "gamma", "delta", ""] {
            assert_eq!(
                key_group(key.as_bytes(), 16),
                partition_for_key(key.as_bytes(), 16),
                "shuffle routing must equal key-group assignment"
            );
        }
    }

    #[test]
    fn ownership_is_a_partition_of_the_group_space() {
        for parallelism in 1..=8u32 {
            let mut counts = vec![0u32; parallelism as usize];
            for g in 0..32 {
                let o = owner_of_group(g, parallelism, 32);
                assert!(o < parallelism);
                counts[o as usize] += 1;
            }
            // Contiguous-range assignment is balanced to within one range
            // quantum.
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(max - min <= 32 / parallelism + 1);
        }
    }

    #[test]
    fn ownership_ranges_are_contiguous() {
        let owners: Vec<u32> = (0..32).map(|g| owner_of_group(g, 3, 32)).collect();
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        assert_eq!(owners, sorted, "owners must be monotone in the group id");
    }
}
