//! Shared little-endian framing primitives.
//!
//! The durable-blob formats scattered across the workspace (broker log
//! segments and meta blobs, checkpoint chain manifests) all speak the same
//! trivial wire dialect: fixed-width little-endian integers and
//! length-prefixed byte strings. This module is the single home for that
//! dialect so every codec truncates, rejects, and frames identically.

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` length prefix followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(
        out,
        u32::try_from(b.len()).expect("frame exceeds u32 length prefix"),
    );
    out.extend_from_slice(b);
}

/// Appends a LEB128 unsigned varint (7 bits per byte, high bit continues).
/// Small values — the offset and timestamp deltas batch frames are built
/// from — take one byte instead of eight.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        // s2g-lint: allow(unchecked-narrowing) — masked to 7 bits, cannot truncate
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint (small magnitudes of either sign
/// stay short).
pub fn put_svarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked reader over an encoded buffer. Every accessor returns
/// `None` on truncated input instead of panicking, so decoders degrade to
/// "malformed blob" rather than crashing a recovery path.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Current read position (bytes consumed).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a LEB128 unsigned varint (rejects encodings past 10 bytes).
    pub fn uvarint(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn svarint(&mut self) -> Option<i64> {
        let z = self.uvarint()?;
        Some(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xdead_beef);
        put_u64(&mut out, u64::MAX - 3);
        put_bytes(&mut out, b"abc");
        put_str(&mut out, "topic-a");
        let mut cur = Cursor::new(&out);
        assert_eq!(cur.u8(), Some(7));
        assert_eq!(cur.u32(), Some(0xdead_beef));
        assert_eq!(cur.u64(), Some(u64::MAX - 3));
        assert_eq!(cur.bytes(), Some(&b"abc"[..]));
        assert_eq!(cur.str().as_deref(), Some("topic-a"));
        assert_eq!(cur.position(), out.len());
        assert_eq!(cur.u8(), None, "exhausted cursor yields None");
    }

    #[test]
    fn varints_round_trip() {
        let cases: [u64; 7] = [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut out = Vec::new();
        for v in cases {
            put_uvarint(&mut out, v);
        }
        let scases: [i64; 6] = [0, -1, 1, -64, 1 << 40, i64::MIN];
        for v in scases {
            put_svarint(&mut out, v);
        }
        let mut cur = Cursor::new(&out);
        for v in cases {
            assert_eq!(cur.uvarint(), Some(v));
        }
        for v in scases {
            assert_eq!(cur.svarint(), Some(v));
        }
        assert_eq!(cur.position(), out.len());
        // Small values really are small on the wire.
        let mut one = Vec::new();
        put_uvarint(&mut one, 100);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let mut cur = Cursor::new(&[0xff; 11]);
        assert_eq!(cur.uvarint(), None);
    }

    #[test]
    fn truncation_yields_none_not_panic() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        let mut cur = Cursor::new(&out[..out.len() - 1]);
        assert!(cur.bytes().is_none());
        let mut cur = Cursor::new(&[0xff, 0xff, 0xff, 0xff]);
        assert!(cur.bytes().is_none(), "absurd length prefix is rejected");
    }
}
