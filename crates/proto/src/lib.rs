//! # s2g-proto — shared wire types
//!
//! Records, batches, and the RPC vocabulary spoken between producers,
//! consumers, brokers, and the cluster controller. Every RPC implements
//! [`s2g_sim::Message`] with a realistic [`wire_size`](s2g_sim::Message::wire_size)
//! so the emulated network charges link bandwidth for actual payload bytes,
//! mirroring how real Kafka frames occupy stream2gym's `tc`-shaped links.

#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod hash;
mod record;
mod rpc;

pub use batch::{put_frame_record, read_frame_record, BATCH_FRAME_VERSION};
pub use hash::{fnv1a, key_group, owner_of_group, partition_for_key};
pub use record::{
    shared_batch_copies, Compression, Offset, ProducerId, Record, RecordBatch, TopicPartition,
};
pub use rpc::{
    AckMode, BrokerId, ClientRpc, ControllerRpc, CorrelationId, ErrorCode, LeaderEpoch,
    MetadataRecord, PartitionMetadata, RaftRpc, ReplicaRpc, RPC_OVERHEAD,
};
