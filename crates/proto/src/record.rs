//! Records, offsets, and batches — the data plane vocabulary.

use std::fmt;

use bytes::Bytes;
use s2g_sim::SimTime;

/// A log offset within one topic partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Offset(pub u64);

impl Offset {
    /// The first offset of every partition log.
    pub const ZERO: Offset = Offset(0);

    /// The next offset after this one.
    pub fn next(self) -> Offset {
        Offset(self.0 + 1)
    }

    /// Raw numeric value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifies a producer client for idempotence/ordering bookkeeping and for
/// the delivery-matrix monitoring of the Fig. 6b experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProducerId(pub u32);

impl fmt::Display for ProducerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prod{}", self.0)
    }
}

/// A `(topic, partition)` pair — the unit of log replication and leadership.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicPartition {
    /// Topic name.
    pub topic: String,
    /// Partition index within the topic.
    pub partition: u32,
}

impl TopicPartition {
    /// Convenience constructor.
    pub fn new(topic: impl Into<String>, partition: u32) -> Self {
        TopicPartition {
            topic: topic.into(),
            partition,
        }
    }
}

impl fmt::Display for TopicPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.topic, self.partition)
    }
}

/// A single event record.
///
/// # Examples
///
/// ```
/// use s2g_proto::Record;
/// use s2g_sim::SimTime;
///
/// let r = Record::new("key-1", "some payload", SimTime::from_millis(10));
/// assert_eq!(r.key.as_deref(), Some(b"key-1".as_slice()));
/// assert!(r.encoded_len() > r.value.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Optional partitioning key.
    pub key: Option<Bytes>,
    /// Payload bytes.
    pub value: Bytes,
    /// Producer-side creation timestamp (event time).
    pub timestamp: SimTime,
    /// The producer that created the record.
    pub producer: ProducerId,
    /// The producer's incarnation (Kafka's producer epoch): bumped when a
    /// crashed client restarts, so broker-side idempotence can tell a
    /// retried old batch from a fresh one that restarts at sequence zero.
    pub producer_epoch: u32,
    /// Producer-assigned sequence number (monotonic per producer
    /// incarnation), used by idempotent dedup and by monitoring to build
    /// the message-order axis of delivery matrices.
    pub producer_seq: u64,
}

/// Per-record framing overhead (length prefixes, attributes, timestamps),
/// approximating Kafka's record wire format.
pub const RECORD_OVERHEAD: usize = 24;

impl Record {
    /// Builds a record with a key.
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>, timestamp: SimTime) -> Self {
        Record {
            key: Some(key.into()),
            value: value.into(),
            timestamp,
            producer: ProducerId(0),
            producer_epoch: 0,
            producer_seq: 0,
        }
    }

    /// Builds a keyless record.
    pub fn keyless(value: impl Into<Bytes>, timestamp: SimTime) -> Self {
        Record {
            key: None,
            value: value.into(),
            timestamp,
            producer: ProducerId(0),
            producer_epoch: 0,
            producer_seq: 0,
        }
    }

    /// Stamps producer identity and sequence (builder style).
    pub fn from_producer(mut self, producer: ProducerId, seq: u64) -> Self {
        self.producer = producer;
        self.producer_seq = seq;
        self
    }

    /// Stamps the producer incarnation (builder style).
    pub fn with_producer_epoch(mut self, epoch: u32) -> Self {
        self.producer_epoch = epoch;
        self
    }

    /// The record's size on the wire, framing included.
    pub fn encoded_len(&self) -> usize {
        RECORD_OVERHEAD + self.key.as_ref().map_or(0, |k| k.len()) + self.value.len()
    }

    /// The payload interpreted as UTF-8 (lossy) — convenient in stream jobs.
    pub fn value_utf8(&self) -> String {
        String::from_utf8_lossy(&self.value).into_owned()
    }
}

/// A batch of records bound for (or fetched from) one partition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecordBatch {
    /// The records, in append order.
    pub records: Vec<Record>,
}

/// Per-batch framing overhead, approximating Kafka's batch header.
pub const BATCH_OVERHEAD: usize = 61;

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a record list.
    pub fn from_records(records: Vec<Record>) -> Self {
        RecordBatch { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total size on the wire, framing included.
    pub fn encoded_len(&self) -> usize {
        BATCH_OVERHEAD + self.records.iter().map(Record::encoded_len).sum::<usize>()
    }
}

impl FromIterator<Record> for RecordBatch {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        RecordBatch {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<Record> for RecordBatch {
    fn extend<I: IntoIterator<Item = Record>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl IntoIterator for RecordBatch {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_advance() {
        assert_eq!(Offset::ZERO.next(), Offset(1));
        assert_eq!(Offset(41).next().value(), 42);
        assert_eq!(Offset(7).to_string(), "@7");
    }

    #[test]
    fn record_sizes_account_framing() {
        let r = Record::new("k", "vvvv", SimTime::ZERO);
        assert_eq!(r.encoded_len(), RECORD_OVERHEAD + 1 + 4);
        let r = Record::keyless("vvvv", SimTime::ZERO);
        assert_eq!(r.encoded_len(), RECORD_OVERHEAD + 4);
    }

    #[test]
    fn batch_sizes_sum_records() {
        let b: RecordBatch = (0..3)
            .map(|i| Record::keyless(vec![0u8; 10 * (i + 1)], SimTime::ZERO))
            .collect();
        assert_eq!(b.len(), 3);
        assert_eq!(b.encoded_len(), BATCH_OVERHEAD + 3 * RECORD_OVERHEAD + 60);
    }

    #[test]
    fn producer_stamping() {
        let r = Record::keyless("x", SimTime::ZERO).from_producer(ProducerId(3), 99);
        assert_eq!(r.producer, ProducerId(3));
        assert_eq!(r.producer_seq, 99);
    }

    #[test]
    fn value_utf8_lossy() {
        let r = Record::keyless("héllo", SimTime::ZERO);
        assert_eq!(r.value_utf8(), "héllo");
    }

    #[test]
    fn topic_partition_display() {
        assert_eq!(TopicPartition::new("events", 2).to_string(), "events-2");
    }

    #[test]
    fn batch_extend_and_iter() {
        let mut b = RecordBatch::new();
        assert!(b.is_empty());
        b.extend([
            Record::keyless("a", SimTime::ZERO),
            Record::keyless("b", SimTime::ZERO),
        ]);
        let values: Vec<String> = b.into_iter().map(|r| r.value_utf8()).collect();
        assert_eq!(values, vec!["a", "b"]);
    }
}
