//! Records, offsets, and batches — the data plane vocabulary.

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use s2g_sim::SimTime;

/// A log offset within one topic partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Offset(pub u64);

impl Offset {
    /// The first offset of every partition log.
    pub const ZERO: Offset = Offset(0);

    /// The next offset after this one.
    pub fn next(self) -> Offset {
        Offset(self.0 + 1)
    }

    /// Raw numeric value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifies a producer client for idempotence/ordering bookkeeping and for
/// the delivery-matrix monitoring of the Fig. 6b experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProducerId(pub u32);

impl fmt::Display for ProducerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prod{}", self.0)
    }
}

/// A `(topic, partition)` pair — the unit of log replication and leadership.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicPartition {
    /// Topic name.
    pub topic: String,
    /// Partition index within the topic.
    pub partition: u32,
}

impl TopicPartition {
    /// Convenience constructor.
    pub fn new(topic: impl Into<String>, partition: u32) -> Self {
        TopicPartition {
            topic: topic.into(),
            partition,
        }
    }
}

impl fmt::Display for TopicPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.topic, self.partition)
    }
}

/// A single event record.
///
/// # Examples
///
/// ```
/// use s2g_proto::Record;
/// use s2g_sim::SimTime;
///
/// let r = Record::new("key-1", "some payload", SimTime::from_millis(10));
/// assert_eq!(r.key.as_deref(), Some(b"key-1".as_slice()));
/// assert!(r.encoded_len() > r.value.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Optional partitioning key.
    pub key: Option<Bytes>,
    /// Payload bytes.
    pub value: Bytes,
    /// Producer-side creation timestamp (event time).
    pub timestamp: SimTime,
    /// The producer that created the record.
    pub producer: ProducerId,
    /// The producer's incarnation (Kafka's producer epoch): bumped when a
    /// crashed client restarts, so broker-side idempotence can tell a
    /// retried old batch from a fresh one that restarts at sequence zero.
    pub producer_epoch: u32,
    /// Producer-assigned sequence number (monotonic per producer
    /// incarnation), used by idempotent dedup and by monitoring to build
    /// the message-order axis of delivery matrices.
    pub producer_seq: u64,
}

/// Per-record framing overhead (length prefixes, attributes, timestamps),
/// approximating Kafka's record wire format.
pub const RECORD_OVERHEAD: usize = 24;

impl Record {
    /// Builds a record with a key.
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>, timestamp: SimTime) -> Self {
        Record {
            key: Some(key.into()),
            value: value.into(),
            timestamp,
            producer: ProducerId(0),
            producer_epoch: 0,
            producer_seq: 0,
        }
    }

    /// Builds a keyless record.
    pub fn keyless(value: impl Into<Bytes>, timestamp: SimTime) -> Self {
        Record {
            key: None,
            value: value.into(),
            timestamp,
            producer: ProducerId(0),
            producer_epoch: 0,
            producer_seq: 0,
        }
    }

    /// Stamps producer identity and sequence (builder style).
    pub fn from_producer(mut self, producer: ProducerId, seq: u64) -> Self {
        self.producer = producer;
        self.producer_seq = seq;
        self
    }

    /// Stamps the producer incarnation (builder style).
    pub fn with_producer_epoch(mut self, epoch: u32) -> Self {
        self.producer_epoch = epoch;
        self
    }

    /// The record's size on the wire, framing included.
    pub fn encoded_len(&self) -> usize {
        RECORD_OVERHEAD + self.key.as_ref().map_or(0, |k| k.len()) + self.value.len()
    }

    /// The payload interpreted as UTF-8 (lossy) — convenient in stream jobs.
    pub fn value_utf8(&self) -> String {
        String::from_utf8_lossy(&self.value).into_owned()
    }
}

/// The batch compression codec. The simulator never mutates payload bytes;
/// a codec is a deterministic cost model: the batch shrinks on the wire by
/// the codec's ratio and the compressing/decompressing ends pay CPU per
/// payload byte (configured on the producer/consumer). That preserves
/// byte-exact record delivery while exposing the real trade — fewer network
/// bytes against more endpoint CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// Records travel at their raw encoded size.
    #[default]
    None,
    /// An LZ4-class codec: payload bytes shrink to ~60% on the wire, at a
    /// few ns of CPU per byte on each end.
    Lz4,
}

impl Compression {
    /// True for [`Compression::None`].
    pub fn is_none(self) -> bool {
        self == Compression::None
    }

    /// Simulated on-the-wire size of `n` record bytes under this codec.
    pub fn compressed_len(self, n: usize) -> usize {
        match self {
            Compression::None => n,
            Compression::Lz4 => {
                if n == 0 {
                    0
                } else {
                    n * 60 / 100 + 1
                }
            }
        }
    }
}

impl fmt::Display for Compression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Compression::None => write!(f, "none"),
            Compression::Lz4 => write!(f, "lz4"),
        }
    }
}

thread_local! {
    /// Deep copies of *shared* batches (see
    /// [`RecordBatch::into_records`]). The data plane is designed so this
    /// never fires: senders keep an `Arc` clone for retries, receivers
    /// iterate in place or inherit sole ownership. `tests/batching.rs`
    /// asserts the count stays zero across monitored runs, so a reintroduced
    /// per-consumer copy fails CI instead of silently costing memory.
    static SHARED_BATCH_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative count of deep copies made from shared batches on this thread.
pub fn shared_batch_copies() -> u64 {
    SHARED_BATCH_COPIES.with(Cell::get)
}

/// A batch of records bound for (or fetched from) one partition.
///
/// The record set is reference counted: cloning a batch (a producer keeping
/// its retry copy next to the in-flight request, a broker handing the same
/// fetched run to many consumers) bumps an `Arc` instead of duplicating
/// records, and the payloads inside are [`Bytes`] — themselves shared — so
/// a record travels producer→broker→consumer→operator as one allocation.
///
/// # Examples
///
/// ```
/// use s2g_proto::{Record, RecordBatch};
/// use s2g_sim::SimTime;
///
/// let batch = RecordBatch::from_records(vec![
///     Record::keyless("a", SimTime::ZERO),
///     Record::keyless("b", SimTime::ZERO),
/// ]);
/// let retry_copy = batch.clone(); // refcount bump, not a record copy
/// assert_eq!(batch.share_count(), 2);
/// assert_eq!(retry_copy.records().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecordBatch {
    records: Arc<Vec<Record>>,
    compression: Compression,
}

/// Per-batch framing overhead, approximating Kafka's batch header.
pub const BATCH_OVERHEAD: usize = 61;

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seals a record list into a shareable batch.
    pub fn from_records(records: Vec<Record>) -> Self {
        RecordBatch {
            records: Arc::new(records),
            compression: Compression::None,
        }
    }

    /// Marks the batch as compressed under `codec` (builder style). The
    /// records themselves are untouched — compression is a wire-size and
    /// CPU cost model, not a byte transform.
    pub fn with_compression(mut self, codec: Compression) -> Self {
        self.compression = codec;
        self
    }

    /// The codec this batch travels under.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// The records, in append order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Iterates the records in place.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total uncompressed size, framing included.
    pub fn encoded_len(&self) -> usize {
        BATCH_OVERHEAD + self.record_bytes()
    }

    /// Size on the wire: the batch header plus the record bytes after the
    /// codec's ratio. Equal to [`encoded_len`](Self::encoded_len) for
    /// uncompressed batches.
    pub fn wire_len(&self) -> usize {
        BATCH_OVERHEAD + self.compression.compressed_len(self.record_bytes())
    }

    /// Record bytes without the batch header.
    pub fn record_bytes(&self) -> usize {
        self.records.iter().map(Record::encoded_len).sum()
    }

    /// How many handles share this batch's record set (1 = sole owner).
    pub fn share_count(&self) -> usize {
        Arc::strong_count(&self.records)
    }

    /// Takes the records out. Free when this handle is the sole owner (the
    /// usual case: a freshly built batch moved through one channel);
    /// otherwise falls back to a deep copy and counts it in
    /// [`shared_batch_copies`] so hot paths that regress to copying are
    /// caught by tests.
    pub fn into_records(self) -> Vec<Record> {
        match Arc::try_unwrap(self.records) {
            Ok(v) => v,
            Err(shared) => {
                SHARED_BATCH_COPIES.with(|c| c.set(c.get() + 1));
                (*shared).clone()
            }
        }
    }
}

impl FromIterator<Record> for RecordBatch {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        RecordBatch::from_records(iter.into_iter().collect())
    }
}

impl IntoIterator for RecordBatch {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_records().into_iter()
    }
}

impl<'a> IntoIterator for &'a RecordBatch {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_advance() {
        assert_eq!(Offset::ZERO.next(), Offset(1));
        assert_eq!(Offset(41).next().value(), 42);
        assert_eq!(Offset(7).to_string(), "@7");
    }

    #[test]
    fn record_sizes_account_framing() {
        let r = Record::new("k", "vvvv", SimTime::ZERO);
        assert_eq!(r.encoded_len(), RECORD_OVERHEAD + 1 + 4);
        let r = Record::keyless("vvvv", SimTime::ZERO);
        assert_eq!(r.encoded_len(), RECORD_OVERHEAD + 4);
    }

    #[test]
    fn batch_sizes_sum_records() {
        let b: RecordBatch = (0..3)
            .map(|i| Record::keyless(vec![0u8; 10 * (i + 1)], SimTime::ZERO))
            .collect();
        assert_eq!(b.len(), 3);
        assert_eq!(b.encoded_len(), BATCH_OVERHEAD + 3 * RECORD_OVERHEAD + 60);
    }

    #[test]
    fn producer_stamping() {
        let r = Record::keyless("x", SimTime::ZERO).from_producer(ProducerId(3), 99);
        assert_eq!(r.producer, ProducerId(3));
        assert_eq!(r.producer_seq, 99);
    }

    #[test]
    fn value_utf8_lossy() {
        let r = Record::keyless("héllo", SimTime::ZERO);
        assert_eq!(r.value_utf8(), "héllo");
    }

    #[test]
    fn topic_partition_display() {
        assert_eq!(TopicPartition::new("events", 2).to_string(), "events-2");
    }

    #[test]
    fn batch_collect_and_iter() {
        let b: RecordBatch = [
            Record::keyless("a", SimTime::ZERO),
            Record::keyless("b", SimTime::ZERO),
        ]
        .into_iter()
        .collect();
        assert!(!b.is_empty());
        let values: Vec<String> = b.into_iter().map(|r| r.value_utf8()).collect();
        assert_eq!(values, vec!["a", "b"]);
    }

    #[test]
    fn batch_clone_shares_instead_of_copying() {
        let b = RecordBatch::from_records(vec![Record::keyless(vec![0u8; 1024], SimTime::ZERO)]);
        assert_eq!(b.share_count(), 1);
        let c = b.clone();
        assert_eq!(b.share_count(), 2);
        assert!(std::ptr::eq(b.records().as_ptr(), c.records().as_ptr()));
        // Sole-owner unwrap is free and uncounted.
        drop(b);
        let before = shared_batch_copies();
        let v = c.into_records();
        assert_eq!(v.len(), 1);
        assert_eq!(shared_batch_copies(), before);
    }

    #[test]
    fn shared_unwrap_is_counted() {
        let b = RecordBatch::from_records(vec![Record::keyless("x", SimTime::ZERO)]);
        let keep = b.clone();
        let before = shared_batch_copies();
        let _ = b.into_records();
        assert_eq!(shared_batch_copies(), before + 1);
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn compression_shrinks_wire_size_only() {
        let b = RecordBatch::from_records(vec![Record::keyless(vec![7u8; 1000], SimTime::ZERO)]);
        let plain = b.clone();
        let zipped = b.with_compression(Compression::Lz4);
        assert_eq!(zipped.encoded_len(), plain.encoded_len());
        assert!(zipped.wire_len() < plain.wire_len());
        assert_eq!(plain.wire_len(), plain.encoded_len());
        // The records themselves are untouched.
        assert_eq!(zipped.records(), plain.records());
        assert_eq!(Compression::Lz4.compressed_len(0), 0);
        assert_eq!(Compression::None.compressed_len(500), 500);
    }
}
