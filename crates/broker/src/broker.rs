//! The broker process: partition leadership, replication, and client serving.
//!
//! One [`Broker`] runs per broker host. It serves produce/fetch/metadata
//! requests from clients, replicates partitions follower-fetch style (like
//! Kafka), tracks in-sync replicas, heartbeats the controller, and charges
//! CPU for every request so co-located components contend realistically.
//!
//! The two coordination modes differ in exactly the ways the paper's Fig. 6
//! experiment exposes:
//!
//! * **ZooKeeper mode** — an isolated leader keeps serving `acks=1` writes,
//!   *locally* shrinks its ISR after `replica.lag.time.max`, advances its
//!   high watermark, and serves the doomed records to co-located consumers.
//!   When the partition heals it truncates to the new leader's log and the
//!   acknowledged suffix silently disappears (Fig. 6b's dark cells).
//! * **KRaft mode** — a broker whose controller heartbeats lapse considers
//!   itself fenced and rejects produce/fetch, and ISR changes only apply
//!   once the controller quorum confirms them, so the high watermark never
//!   advances past truly-replicated records.

use std::collections::{BTreeMap, HashMap};

use s2g_proto::{
    AckMode, BrokerId, ClientRpc, ControllerRpc, CorrelationId, ErrorCode, LeaderEpoch, Offset,
    RecordBatch, ReplicaRpc, TopicPartition,
};
use s2g_sim::{
    downcast, Ctx, LedgerHandle, MemSlot, Message, Process, ProcessId, SimDuration, SimTime,
};

use crate::config::{BrokerConfig, CoordinationMode};
use crate::log::PartitionLog;
use crate::metadata::MetadataCache;

/// Timer tags used by the broker.
mod tags {
    pub const STARTUP_DONE: u64 = 0;
    pub const REPLICA_TICK: u64 = 1;
    pub const ISR_TICK: u64 = 2;
    pub const HEARTBEAT_TICK: u64 = 3;
    pub const BACKGROUND_TICK: u64 = 4;
    pub const BACKGROUND_DONE: u64 = 5;
    pub const CPU_BASE: u64 = 1 << 50;
}

#[derive(Debug)]
enum OutMsg {
    Client(ClientRpc),
    Replica(ReplicaRpc),
}

#[derive(Debug)]
struct PendingProduce {
    client: ProcessId,
    corr: CorrelationId,
    tp: TopicPartition,
    /// High watermark needed before acknowledging.
    need: Offset,
    base: Offset,
    records: usize,
}

#[derive(Debug)]
struct LeaderState {
    epoch: LeaderEpoch,
    isr: Vec<BrokerId>,
    replicas: Vec<BrokerId>,
    follower_end: HashMap<BrokerId, Offset>,
    caught_up_at: HashMap<BrokerId, SimTime>,
    pending: Vec<PendingProduce>,
}

#[derive(Debug)]
struct FollowerState {
    leader: Option<BrokerId>,
    epoch: LeaderEpoch,
    inflight: bool,
}

#[derive(Debug)]
enum Role {
    Leader(LeaderState),
    Follower(FollowerState),
}

/// Counters exposed for tests and monitoring.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrokerStats {
    /// Produce requests handled.
    pub produces: u64,
    /// Consumer fetch requests handled.
    pub fetches: u64,
    /// Replica fetch requests handled (as leader).
    pub replica_fetches: u64,
    /// Records appended (as leader or follower).
    pub records_appended: u64,
    /// Records discarded by divergence truncation.
    pub records_truncated: u64,
    /// Requests rejected because the broker was fenced.
    pub rejected_fenced: u64,
    /// Requests rejected because this broker was not the leader.
    pub rejected_not_leader: u64,
    /// ISR shrink events initiated by this broker.
    pub isr_shrinks: u64,
    /// ISR expand proposals initiated by this broker.
    pub isr_expands: u64,
    /// Consumer-group offset commits recorded.
    pub offset_commits: u64,
    /// Consumer-group offset fetches served.
    pub offset_fetches: u64,
}

/// A message broker process (the Kafka-broker stand-in).
pub struct Broker {
    id: BrokerId,
    cfg: BrokerConfig,
    mode: CoordinationMode,
    controllers: Vec<ProcessId>,
    peers: HashMap<BrokerId, ProcessId>,
    logs: BTreeMap<TopicPartition, PartitionLog>,
    /// Committed consumer-group positions, keyed by `(group, partition)` —
    /// the broker-side half of checkpoint/recovery. Commits survive client
    /// crashes because they live here, not in the consumer.
    group_offsets: BTreeMap<(String, TopicPartition), Offset>,
    roles: BTreeMap<TopicPartition, Role>,
    known_epoch: HashMap<TopicPartition, LeaderEpoch>,
    metadata: MetadataCache,
    last_hb_ack: SimTime,
    next_corr: u64,
    next_cpu_tag: u64,
    pending_out: HashMap<u64, Vec<(ProcessId, OutMsg)>>,
    mem: Option<(LedgerHandle, MemSlot)>,
    retained_bytes: u64,
    stats: BrokerStats,
    name: String,
    /// Leadership-change log for the Fig. 6d event markers: (time, partition,
    /// became_leader).
    leadership_events: Vec<(SimTime, TopicPartition, bool)>,
}

impl Broker {
    /// Creates a broker.
    ///
    /// `controllers` lists the controller process(es): one for ZooKeeper
    /// mode, the Raft quorum members for KRaft mode (requests are sent to
    /// all; only the active controller answers). `peers` maps every broker
    /// id in the cluster (including this one) to its process id.
    pub fn new(
        id: BrokerId,
        cfg: BrokerConfig,
        mode: CoordinationMode,
        controllers: Vec<ProcessId>,
        peers: HashMap<BrokerId, ProcessId>,
    ) -> Self {
        assert!(
            !controllers.is_empty(),
            "a broker needs at least one controller endpoint"
        );
        let name = format!("broker-{}", id.0);
        Broker {
            id,
            cfg,
            mode,
            controllers,
            peers,
            logs: BTreeMap::new(),
            group_offsets: BTreeMap::new(),
            roles: BTreeMap::new(),
            known_epoch: HashMap::new(),
            metadata: MetadataCache::new(),
            last_hb_ack: SimTime::ZERO,
            next_corr: 0,
            next_cpu_tag: 0,
            pending_out: HashMap::new(),
            mem: None,
            retained_bytes: 0,
            stats: BrokerStats::default(),
            name,
            leadership_events: Vec::new(),
        }
    }

    /// Attaches a memory-ledger slot for the resource model.
    pub fn set_mem_slot(&mut self, ledger: LedgerHandle, slot: MemSlot) {
        self.mem = Some((ledger, slot));
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Counters.
    pub fn stats(&self) -> BrokerStats {
        self.stats
    }

    /// Read access to a partition log (tests, monitors).
    pub fn log(&self, tp: &TopicPartition) -> Option<&PartitionLog> {
        self.logs.get(tp)
    }

    /// The committed position of a consumer group on a partition, if any.
    pub fn committed_offset(&self, group: &str, tp: &TopicPartition) -> Option<Offset> {
        self.group_offsets
            .get(&(group.to_string(), tp.clone()))
            .copied()
    }

    /// True if this broker currently leads `tp`.
    pub fn is_leader(&self, tp: &TopicPartition) -> bool {
        matches!(self.roles.get(tp), Some(Role::Leader(_)))
    }

    /// The ISR as this broker (when leader) sees it.
    pub fn isr(&self, tp: &TopicPartition) -> Option<Vec<BrokerId>> {
        match self.roles.get(tp) {
            Some(Role::Leader(ls)) => Some(ls.isr.clone()),
            _ => None,
        }
    }

    /// Leadership transitions observed, for event-marker plots (Fig. 6d).
    pub fn leadership_events(&self) -> &[(SimTime, TopicPartition, bool)] {
        &self.leadership_events
    }

    /// Total record bytes retained across partition logs.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    fn is_fenced(&self, now: SimTime) -> bool {
        self.mode == CoordinationMode::Kraft
            && now.saturating_since(self.last_hb_ack) > self.cfg.session_timeout
    }

    fn next_corr(&mut self) -> CorrelationId {
        self.next_corr += 1;
        CorrelationId(self.next_corr)
    }

    fn send_controllers(&mut self, ctx: &mut Ctx<'_>, rpc: ControllerRpc) {
        for pid in self.controllers.clone() {
            ctx.send(pid, rpc.clone());
        }
    }

    fn respond_after_cpu(
        &mut self,
        ctx: &mut Ctx<'_>,
        cost: SimDuration,
        to: ProcessId,
        msg: OutMsg,
    ) {
        let tag = tags::CPU_BASE + self.next_cpu_tag;
        self.next_cpu_tag += 1;
        self.pending_out.insert(tag, vec![(to, msg)]);
        ctx.exec(cost, tag);
    }

    fn request_cost(&self, records: usize) -> SimDuration {
        self.cfg.cpu_per_request + self.cfg.cpu_per_record * records as u64
    }

    fn update_mem(&mut self) {
        if let Some((ledger, slot)) = &self.mem {
            ledger.borrow_mut().set_dynamic(*slot, self.retained_bytes);
        }
    }

    /// Advances the high watermark of a led partition from follower state and
    /// acknowledges satisfied `acks=all` produces.
    fn advance_hw(&mut self, ctx: &mut Ctx<'_>, tp: &TopicPartition) {
        let Some(Role::Leader(ls)) = self.roles.get_mut(tp) else {
            return;
        };
        let log = self.logs.entry(tp.clone()).or_default();
        let mut hw = log.log_end();
        for b in &ls.isr {
            if *b == self.id {
                continue;
            }
            let end = ls.follower_end.get(b).copied().unwrap_or(Offset::ZERO);
            hw = hw.min(end);
        }
        log.advance_high_watermark(hw);
        let hw = log.high_watermark();
        // Acknowledge pending produces now covered by the HW.
        let mut still_pending = Vec::new();
        let mut to_send = Vec::new();
        for p in ls.pending.drain(..) {
            if p.need <= hw {
                to_send.push((
                    p.client,
                    OutMsg::Client(ClientRpc::ProduceResponse {
                        corr: p.corr,
                        tp: p.tp.clone(),
                        base_offset: p.base,
                        error: ErrorCode::None,
                    }),
                    p.records,
                ));
            } else {
                still_pending.push(p);
            }
        }
        ls.pending = still_pending;
        for (to, msg, records) in to_send {
            let cost = self.request_cost(records);
            self.respond_after_cpu(ctx, cost, to, msg);
        }
    }

    fn fail_pending(&mut self, ctx: &mut Ctx<'_>, tp: &TopicPartition, error: ErrorCode) {
        let Some(Role::Leader(ls)) = self.roles.get_mut(tp) else {
            return;
        };
        let drained: Vec<PendingProduce> = ls.pending.drain(..).collect();
        for p in drained {
            let msg = OutMsg::Client(ClientRpc::ProduceResponse {
                corr: p.corr,
                tp: p.tp.clone(),
                base_offset: p.base,
                error,
            });
            let cost = self.cfg.cpu_per_request;
            self.respond_after_cpu(ctx, cost, p.client, msg);
        }
    }

    fn handle_client(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, rpc: ClientRpc) {
        let now = ctx.now();
        match rpc {
            ClientRpc::ProduceRequest {
                corr,
                tp,
                batch,
                acks,
            } => {
                self.stats.produces += 1;
                if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    let cost = self.cfg.cpu_per_request;
                    self.respond_after_cpu(
                        ctx,
                        cost,
                        from,
                        OutMsg::Client(ClientRpc::ProduceResponse {
                            corr,
                            tp,
                            base_offset: Offset::ZERO,
                            error: ErrorCode::Fenced,
                        }),
                    );
                    return;
                }
                let is_leader = matches!(self.roles.get(&tp), Some(Role::Leader(_)));
                if !is_leader {
                    self.stats.rejected_not_leader += 1;
                    let cost = self.cfg.cpu_per_request;
                    self.respond_after_cpu(
                        ctx,
                        cost,
                        from,
                        OutMsg::Client(ClientRpc::ProduceResponse {
                            corr,
                            tp,
                            base_offset: Offset::ZERO,
                            error: ErrorCode::NotLeader,
                        }),
                    );
                    return;
                }
                let n = batch.len();
                let bytes: u64 = batch.records.iter().map(|r| r.encoded_len() as u64).sum();
                let epoch = match self.roles.get(&tp) {
                    Some(Role::Leader(ls)) => ls.epoch,
                    _ => unreachable!("checked leader above"),
                };
                let log = self.logs.entry(tp.clone()).or_default();
                let base = log.append_batch(epoch, batch.records);
                self.retained_bytes += bytes;
                self.update_mem();
                self.stats.records_appended += n as u64;
                let need = Offset(base.value() + n as u64);
                match acks {
                    AckMode::Leader => {
                        // Ack immediately; HW may advance later via replication.
                        let cost = self.request_cost(n);
                        self.respond_after_cpu(
                            ctx,
                            cost,
                            from,
                            OutMsg::Client(ClientRpc::ProduceResponse {
                                corr,
                                tp: tp.clone(),
                                base_offset: base,
                                error: ErrorCode::None,
                            }),
                        );
                        self.advance_hw(ctx, &tp);
                    }
                    AckMode::All => {
                        if let Some(Role::Leader(ls)) = self.roles.get_mut(&tp) {
                            ls.pending.push(PendingProduce {
                                client: from,
                                corr,
                                tp: tp.clone(),
                                need,
                                base,
                                records: n,
                            });
                        }
                        self.advance_hw(ctx, &tp);
                    }
                }
            }
            ClientRpc::FetchRequest {
                corr,
                tp,
                offset,
                max_records,
            } => {
                self.stats.fetches += 1;
                let (batch, hw, error) = if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    (RecordBatch::new(), Offset::ZERO, ErrorCode::Fenced)
                } else {
                    match self.roles.get(&tp) {
                        Some(Role::Leader(_)) => {
                            let log = self.logs.entry(tp.clone()).or_default();
                            let hw = log.high_watermark();
                            if offset > hw {
                                (RecordBatch::new(), hw, ErrorCode::OffsetOutOfRange)
                            } else {
                                let recs = log.read(
                                    offset,
                                    max_records.min(self.cfg.fetch_max_records),
                                    true,
                                );
                                (RecordBatch::from_records(recs), hw, ErrorCode::None)
                            }
                        }
                        _ => {
                            self.stats.rejected_not_leader += 1;
                            (RecordBatch::new(), Offset::ZERO, ErrorCode::NotLeader)
                        }
                    }
                };
                let n = batch.len();
                let cost = self.request_cost(n);
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::FetchResponse {
                        corr,
                        tp,
                        batch,
                        high_watermark: hw,
                        error,
                    }),
                );
            }
            ClientRpc::MetadataRequest { corr } => {
                let cost = self.cfg.cpu_per_request;
                let partitions = self.metadata.snapshot();
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::MetadataResponse { corr, partitions }),
                );
            }
            ClientRpc::OffsetCommit {
                corr,
                group,
                offsets,
            } => {
                self.stats.offset_commits += 1;
                let error = if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    ErrorCode::Fenced
                } else {
                    for (tp, off) in offsets {
                        self.group_offsets.insert((group.clone(), tp), off);
                    }
                    ErrorCode::None
                };
                let cost = self.cfg.cpu_per_request;
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::OffsetCommitResponse { corr, error }),
                );
            }
            ClientRpc::OffsetFetch { corr, group, tps } => {
                self.stats.offset_fetches += 1;
                let offsets: Vec<(TopicPartition, Option<Offset>)> = tps
                    .into_iter()
                    .map(|tp| {
                        let committed = self
                            .group_offsets
                            .get(&(group.clone(), tp.clone()))
                            .copied();
                        (tp, committed)
                    })
                    .collect();
                let cost = self.cfg.cpu_per_request;
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::OffsetFetchResponse { corr, offsets }),
                );
            }
            // Responses are not expected here; brokers only serve.
            ClientRpc::ProduceResponse { .. }
            | ClientRpc::FetchResponse { .. }
            | ClientRpc::MetadataResponse { .. }
            | ClientRpc::OffsetCommitResponse { .. }
            | ClientRpc::OffsetFetchResponse { .. } => {}
        }
    }

    fn handle_replica(&mut self, ctx: &mut Ctx<'_>, from_pid: ProcessId, rpc: ReplicaRpc) {
        let now = ctx.now();
        match rpc {
            ReplicaRpc::Fetch {
                corr,
                tp,
                from,
                log_end,
                epoch,
            } => {
                self.stats.replica_fetches += 1;
                if self.is_fenced(now) || !matches!(self.roles.get(&tp), Some(Role::Leader(_))) {
                    let err = if self.is_fenced(now) {
                        ErrorCode::Fenced
                    } else {
                        ErrorCode::NotLeader
                    };
                    let cost = self.cfg.cpu_per_request;
                    self.respond_after_cpu(
                        ctx,
                        cost,
                        from_pid,
                        OutMsg::Replica(ReplicaRpc::FetchResponse {
                            corr,
                            tp,
                            batch: RecordBatch::new(),
                            epochs: Vec::new(),
                            high_watermark: Offset::ZERO,
                            epoch: LeaderEpoch(0),
                            truncate_to: None,
                            error: err,
                        }),
                    );
                    return;
                }
                let my_epoch = match self.roles.get(&tp) {
                    Some(Role::Leader(ls)) => ls.epoch,
                    _ => unreachable!(),
                };
                let log = self.logs.entry(tp.clone()).or_default();
                // Divergence reconciliation: a follower on an older epoch may
                // hold a conflicting suffix and must truncate first.
                let mut truncate_to = None;
                let mut start = log_end;
                if epoch < my_epoch {
                    let boundary = log.end_offset_for_epoch(epoch);
                    if boundary < log_end {
                        truncate_to = Some(boundary);
                        start = boundary;
                    }
                }
                let records = log.read(start, self.cfg.replica_fetch_max_records, false);
                let epochs: Vec<LeaderEpoch> = (0..records.len())
                    .map(|i| {
                        log.epoch_at(Offset(start.value() + i as u64))
                            .expect("read entries exist")
                    })
                    .collect();
                let hw = log.high_watermark();
                let leader_end = log.log_end();
                let n = records.len();
                // Update follower progress from its claimed log end.
                let mode = self.mode;
                let mut expand: Option<(LeaderEpoch, Vec<BrokerId>)> = None;
                if let Some(Role::Leader(ls)) = self.roles.get_mut(&tp) {
                    ls.follower_end.insert(from, start);
                    if start >= leader_end {
                        ls.caught_up_at.insert(from, now);
                        // Propose ISR expansion for recovered followers. In
                        // ZooKeeper mode the leader applies it locally first;
                        // in KRaft mode it waits for quorum confirmation.
                        if !ls.isr.contains(&from) && ls.replicas.contains(&from) {
                            let mut new_isr = ls.isr.clone();
                            new_isr.push(from);
                            if mode == CoordinationMode::Zk {
                                ls.isr = new_isr.clone();
                            }
                            expand = Some((ls.epoch, new_isr));
                        }
                    }
                }
                if let Some((epoch, new_isr)) = expand {
                    self.stats.isr_expands += 1;
                    self.send_controllers(
                        ctx,
                        ControllerRpc::AlterIsr {
                            tp: tp.clone(),
                            from: self.id,
                            epoch,
                            new_isr,
                        },
                    );
                }
                self.advance_hw(ctx, &tp);
                let cost = self.request_cost(n);
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from_pid,
                    OutMsg::Replica(ReplicaRpc::FetchResponse {
                        corr,
                        tp,
                        batch: RecordBatch::from_records(records),
                        epochs,
                        high_watermark: hw,
                        epoch: my_epoch,
                        truncate_to,
                        error: ErrorCode::None,
                    }),
                );
            }
            ReplicaRpc::FetchResponse {
                tp,
                batch,
                epochs,
                high_watermark,
                epoch,
                truncate_to,
                error,
                ..
            } => {
                let Some(Role::Follower(fs)) = self.roles.get_mut(&tp) else {
                    return;
                };
                fs.inflight = false;
                if !error.is_ok() {
                    return; // wait for fresh LeaderAndIsr from the controller
                }
                fs.epoch = epoch;
                let full_batch = batch.len() >= self.cfg.replica_fetch_max_records;
                let log = self.logs.entry(tp.clone()).or_default();
                if let Some(t) = truncate_to {
                    let before = log.retained_bytes() as u64;
                    let n = log.truncate_to(t);
                    self.stats.records_truncated += n as u64;
                    let after = log.retained_bytes() as u64;
                    self.retained_bytes = self.retained_bytes + after - before;
                }
                let bytes: u64 = batch.records.iter().map(|r| r.encoded_len() as u64).sum();
                let n = batch.len();
                for (i, rec) in batch.records.into_iter().enumerate() {
                    let e = epochs.get(i).copied().unwrap_or(epoch);
                    log.append(e, rec);
                }
                self.retained_bytes += bytes;
                self.stats.records_appended += n as u64;
                let end = log.log_end();
                log.advance_high_watermark(high_watermark.min(end));
                self.update_mem();
                // Catch-up mode: keep fetching immediately while full batches
                // arrive.
                if full_batch {
                    self.replica_fetch_one(ctx, &tp);
                }
            }
        }
    }

    fn replica_fetch_one(&mut self, ctx: &mut Ctx<'_>, tp: &TopicPartition) {
        let corr = self.next_corr();
        let id = self.id;
        let Some(Role::Follower(fs)) = self.roles.get_mut(tp) else {
            return;
        };
        let Some(leader) = fs.leader else { return };
        if fs.inflight || leader == id {
            return;
        }
        let Some(&leader_pid) = self.peers.get(&leader) else {
            return;
        };
        fs.inflight = true;
        let fallback_epoch = fs.epoch;
        let log = self.logs.entry(tp.clone()).or_default();
        // Report the epoch of our log tail, not the announced leader epoch:
        // that is what lets the leader detect a divergent suffix appended
        // while we were isolated and tell us to truncate it.
        let epoch = log.last_epoch().unwrap_or(fallback_epoch);
        let log_end = log.log_end();
        ctx.send(
            leader_pid,
            ReplicaRpc::Fetch {
                corr,
                tp: tp.clone(),
                from: id,
                log_end,
                epoch,
            },
        );
    }

    fn replica_tick(&mut self, ctx: &mut Ctx<'_>) {
        let tps: Vec<TopicPartition> = self
            .roles
            .iter()
            .filter(|(_, r)| matches!(r, Role::Follower(_)))
            .map(|(tp, _)| tp.clone())
            .collect();
        for tp in tps {
            // A follower that cannot reach its leader keeps an RPC inflight
            // forever (the response was dropped). Reset staleness by allowing
            // a new fetch each tick; duplicate responses are idempotent
            // because appends start from our log end.
            if let Some(Role::Follower(fs)) = self.roles.get_mut(&tp) {
                fs.inflight = false;
            }
            self.replica_fetch_one(ctx, &tp);
        }
    }

    fn isr_tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let lag_max = self.cfg.replica_lag_max;
        let mode = self.mode;
        let id = self.id;
        let mut shrinks: Vec<(TopicPartition, LeaderEpoch, Vec<BrokerId>)> = Vec::new();
        for (tp, role) in self.roles.iter_mut() {
            let Role::Leader(ls) = role else { continue };
            let lagging: Vec<BrokerId> = ls
                .isr
                .iter()
                .copied()
                .filter(|b| {
                    *b != id
                        && now.saturating_since(
                            ls.caught_up_at.get(b).copied().unwrap_or(SimTime::ZERO),
                        ) > lag_max
                })
                .collect();
            if lagging.is_empty() {
                continue;
            }
            let new_isr: Vec<BrokerId> = ls
                .isr
                .iter()
                .copied()
                .filter(|b| !lagging.contains(b))
                .collect();
            if mode == CoordinationMode::Zk {
                // ZooKeeper-era behavior: apply locally first — this is what
                // lets an isolated leader advance its HW over unreplicated
                // records (the silent-loss precondition).
                ls.isr = new_isr.clone();
            }
            shrinks.push((tp.clone(), ls.epoch, new_isr));
        }
        for (tp, epoch, new_isr) in shrinks {
            self.stats.isr_shrinks += 1;
            self.send_controllers(
                ctx,
                ControllerRpc::AlterIsr {
                    tp: tp.clone(),
                    from: id,
                    epoch,
                    new_isr,
                },
            );
            if self.mode == CoordinationMode::Zk {
                self.advance_hw(ctx, &tp);
            }
        }
    }

    fn handle_controller(&mut self, ctx: &mut Ctx<'_>, rpc: ControllerRpc) {
        match rpc {
            ControllerRpc::HeartbeatAck { .. } => {
                self.last_hb_ack = ctx.now();
            }
            ControllerRpc::MetadataUpdate {
                records,
                metadata_version,
            } => {
                self.metadata.apply(&records, metadata_version);
            }
            ControllerRpc::LeaderAndIsr {
                tp,
                leader,
                isr,
                epoch,
                replicas,
            } => {
                let known = self.known_epoch.get(&tp).copied().unwrap_or_default();
                if epoch < known {
                    return; // stale instruction
                }
                self.known_epoch.insert(tp.clone(), epoch);
                let now = ctx.now();
                let same_epoch_update = epoch == known;
                if leader == Some(self.id) {
                    match self.roles.get_mut(&tp) {
                        Some(Role::Leader(ls)) if same_epoch_update => {
                            // ISR confirmation/adjustment from the controller.
                            ls.isr = isr;
                            self.advance_hw(ctx, &tp);
                        }
                        _ => {
                            let mut caught_up_at = HashMap::new();
                            for b in &isr {
                                caught_up_at.insert(*b, now);
                            }
                            self.roles.insert(
                                tp.clone(),
                                Role::Leader(LeaderState {
                                    epoch,
                                    isr,
                                    replicas,
                                    follower_end: HashMap::new(),
                                    caught_up_at,
                                    pending: Vec::new(),
                                }),
                            );
                            self.logs.entry(tp.clone()).or_default();
                            self.leadership_events.push((now, tp.clone(), true));
                            ctx.trace("broker", format!("{} became leader of {tp}", self.name));
                        }
                    }
                } else if replicas.contains(&self.id) {
                    let was_leader = matches!(self.roles.get(&tp), Some(Role::Leader(_)));
                    if was_leader {
                        self.fail_pending(ctx, &tp, ErrorCode::NotLeader);
                        self.leadership_events.push((now, tp.clone(), false));
                        ctx.trace("broker", format!("{} stepped down from {tp}", self.name));
                    }
                    self.roles.insert(
                        tp.clone(),
                        Role::Follower(FollowerState {
                            leader,
                            epoch,
                            inflight: false,
                        }),
                    );
                    self.logs.entry(tp.clone()).or_default();
                } else {
                    self.roles.remove(&tp);
                }
            }
            // Requests brokers never receive.
            ControllerRpc::Heartbeat { .. } | ControllerRpc::AlterIsr { .. } => {}
        }
    }
}

impl Process for Broker {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.last_hb_ack = ctx.now();
        ctx.exec(self.cfg.startup_cpu, tags::STARTUP_DONE);
        ctx.set_timer(self.cfg.replica_fetch_interval, tags::REPLICA_TICK);
        ctx.set_timer(self.cfg.isr_check_interval, tags::ISR_TICK);
        self.send_controllers(ctx, ControllerRpc::Heartbeat { broker: self.id });
        ctx.set_timer(self.cfg.heartbeat_interval, tags::HEARTBEAT_TICK);
        ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
        let msg = match downcast::<ClientRpc>(msg) {
            Ok(rpc) => return self.handle_client(ctx, from, *rpc),
            Err(m) => m,
        };
        let msg = match downcast::<ReplicaRpc>(msg) {
            Ok(rpc) => return self.handle_replica(ctx, from, *rpc),
            Err(m) => m,
        };
        if let Ok(rpc) = downcast::<ControllerRpc>(msg) {
            self.handle_controller(ctx, *rpc);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            tags::REPLICA_TICK => {
                self.replica_tick(ctx);
                ctx.set_timer(self.cfg.replica_fetch_interval, tags::REPLICA_TICK);
            }
            tags::ISR_TICK => {
                self.isr_tick(ctx);
                ctx.set_timer(self.cfg.isr_check_interval, tags::ISR_TICK);
            }
            tags::HEARTBEAT_TICK => {
                self.send_controllers(ctx, ControllerRpc::Heartbeat { broker: self.id });
                ctx.set_timer(self.cfg.heartbeat_interval, tags::HEARTBEAT_TICK);
            }
            tags::BACKGROUND_TICK => {
                if !self.cfg.background_cpu.is_zero() {
                    ctx.exec(self.cfg.background_cpu, tags::BACKGROUND_DONE);
                }
                ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag >= tags::CPU_BASE {
            if let Some(out) = self.pending_out.remove(&tag) {
                for (to, msg) in out {
                    match msg {
                        OutMsg::Client(rpc) => ctx.send(to, rpc),
                        OutMsg::Replica(rpc) => ctx.send(to, rpc),
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("id", &self.id)
            .field("partitions", &self.roles.len())
            .field("stats", &self.stats)
            .finish()
    }
}
