//! The broker process: partition leadership, replication, and client serving.
//!
//! One [`Broker`] runs per broker host. It serves produce/fetch/metadata
//! requests from clients, replicates partitions follower-fetch style (like
//! Kafka), tracks in-sync replicas, heartbeats the controller, and charges
//! CPU for every request so co-located components contend realistically.
//!
//! The two coordination modes differ in exactly the ways the paper's Fig. 6
//! experiment exposes:
//!
//! * **ZooKeeper mode** — an isolated leader keeps serving `acks=1` writes,
//!   *locally* shrinks its ISR after `replica.lag.time.max`, advances its
//!   high watermark, and serves the doomed records to co-located consumers.
//!   When the partition heals it truncates to the new leader's log and the
//!   acknowledged suffix silently disappears (Fig. 6b's dark cells).
//! * **KRaft mode** — a broker whose controller heartbeats lapse considers
//!   itself fenced and rejects produce/fetch, and ISR changes only apply
//!   once the controller quorum confirms them, so the high watermark never
//!   advances past truly-replicated records.
//!
//! # Durability and restart
//!
//! With a [`LogBackend`] attached ([`Broker::set_durability`]) the broker
//! flushes dirty log segments and a [`BrokerLogMeta`] blob (high
//! watermarks, consumer-group offsets, segment manifest) through the
//! backend; produce acknowledgements are withheld until the covering flush
//! is durable, so an acknowledged record can never be lost to a broker
//! crash. A broker respawned with `recover = true` replays the manifest —
//! meta first, then every live segment — before serving again; client and
//! replica requests arriving during replay are dropped (the process is
//! "booting"), and the controller re-teaches roles when the restarted
//! broker's heartbeat arrives with a bumped incarnation number.

use std::collections::{BTreeMap, HashMap};

use s2g_proto::{
    AckMode, BrokerId, ClientRpc, Compression, ControllerRpc, CorrelationId, ErrorCode,
    LeaderEpoch, Offset, Record, RecordBatch, ReplicaRpc, TopicPartition,
};
use s2g_sim::{
    downcast, Ctx, LedgerHandle, MemSlot, Message, Process, ProcessId, SimDuration, SimTime,
};
use s2g_store::StoreRpc;
use s2g_telemetry::Telemetry;

use crate::config::{BrokerConfig, CoordinationMode};
use crate::groups::GroupCoordinator;
use crate::log::{
    BrokerLogMeta, CleanOutcome, LogBackend, LogPersist, LogRecover, LogSegment, PartitionLog,
};
use crate::metadata::MetadataCache;

/// Timer tags used by the broker.
mod tags {
    pub const STARTUP_DONE: u64 = 0;
    pub const REPLICA_TICK: u64 = 1;
    pub const ISR_TICK: u64 = 2;
    pub const HEARTBEAT_TICK: u64 = 3;
    pub const BACKGROUND_TICK: u64 = 4;
    pub const BACKGROUND_DONE: u64 = 5;
    pub const LOG_FLUSH_TICK: u64 = 6;
    pub const DURABILITY_RETRY: u64 = 7;
    pub const LOG_CLEANUP_TICK: u64 = 8;
    pub const CPU_BASE: u64 = 1 << 50;
}

/// How long the broker waits for a store response to a flush or recovery
/// RPC before re-issuing it (a lossy network can drop either direction).
const DURABILITY_RETRY_INTERVAL: SimDuration = SimDuration::from_secs(2);

#[derive(Debug)]
enum OutMsg {
    Client(ClientRpc),
    Replica(ReplicaRpc),
}

#[derive(Debug)]
struct PendingProduce {
    client: ProcessId,
    corr: CorrelationId,
    tp: TopicPartition,
    /// High watermark needed before acknowledging (`Offset::ZERO` when the
    /// ack mode does not wait for replication).
    need: Offset,
    /// Durable log end needed before acknowledging (`Offset::ZERO` when no
    /// log backend is attached).
    need_durable: Offset,
    base: Offset,
    records: usize,
}

/// What a pending durability RPC was carrying, kept so a lost request or
/// response can be re-issued verbatim under a fresh correlation id.
enum DurabilityIo {
    SegmentPut { key: String, bytes: Vec<u8> },
    MetaPut { key: String, bytes: Vec<u8> },
    MetaGet { key: String },
    SegmentGet { key: String, tp: TopicPartition },
}

/// Recovery metrics for one restarted broker incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerRecoveryInfo {
    /// When the respawned broker started.
    pub restarted_at: SimTime,
    /// When log replay completed and the broker resumed serving (`None`
    /// while replay is still in flight, or when nothing was recoverable).
    pub recovered_at: Option<SimTime>,
    /// Records rebuilt from persisted segments.
    pub replayed_records: u64,
    /// Encoded segment bytes read back during replay.
    pub replayed_bytes: u64,
    /// Segments read back during replay.
    pub replayed_segments: u64,
    /// Bytes compaction/retention reclaimed before the crash — replay work
    /// the restarted broker was spared (from the recovered meta blob).
    pub replay_saved_bytes: u64,
}

impl BrokerRecoveryInfo {
    fn new(restarted_at: SimTime) -> Self {
        BrokerRecoveryInfo {
            restarted_at,
            recovered_at: None,
            replayed_records: 0,
            replayed_bytes: 0,
            replayed_segments: 0,
            replay_saved_bytes: 0,
        }
    }

    /// Restart-to-serving latency: what log replay costs.
    pub fn replay_latency(&self) -> Option<SimDuration> {
        self.recovered_at
            .map(|t| t.saturating_since(self.restarted_at))
    }
}

/// The broker's durability driver: the pluggable backend plus flush and
/// recovery bookkeeping.
struct Durability {
    backend: Box<dyn LogBackend>,
    /// Key prefix for this broker's blobs.
    prefix: String,
    /// Whether un-flushed mutations exist (segments, watermarks, offsets).
    dirty: bool,
    /// A flush is awaiting store acks.
    flush_inflight: bool,
    /// A mutation arrived while a flush was in flight; flush again after.
    flush_again: bool,
    /// Log ends captured when the in-flight flush was issued; applied to
    /// `durable_end` on completion.
    flush_ends: BTreeMap<TopicPartition, Offset>,
    /// Per-partition durable log end — produce acks wait for this.
    durable_end: BTreeMap<TopicPartition, Offset>,
    /// Outstanding store RPCs by correlation id (ordered so retry
    /// re-issues them deterministically).
    pending: BTreeMap<u64, DurabilityIo>,
    /// The retry timer is armed.
    retry_armed: bool,
    /// Dead segment blobs awaiting deletion. The cleaner stages keys here
    /// and they are only deleted once the flush carrying the *cleaned*
    /// manifest is durable — deleting first would let a crash recover a
    /// stale manifest that still lists the blob, truncating the log at the
    /// artificial gap.
    pending_deletes: Vec<String>,
    /// Segments staged during recovery, per partition.
    staged: BTreeMap<TopicPartition, Vec<LogSegment>>,
    /// The recovered meta blob (manifest applied once segments arrive).
    staged_meta: Option<BrokerLogMeta>,
}

impl Durability {
    fn meta_key(&self) -> String {
        format!("{}/meta", self.prefix)
    }

    fn segment_key(&self, tp: &TopicPartition, base: u64) -> String {
        format!("{}/{}/{}", self.prefix, tp, base)
    }

    fn durable_floor(&self, tp: &TopicPartition) -> Offset {
        self.durable_end.get(tp).copied().unwrap_or(Offset::ZERO)
    }
}

#[derive(Debug)]
struct LeaderState {
    epoch: LeaderEpoch,
    isr: Vec<BrokerId>,
    replicas: Vec<BrokerId>,
    follower_end: HashMap<BrokerId, Offset>,
    caught_up_at: HashMap<BrokerId, SimTime>,
    pending: Vec<PendingProduce>,
}

#[derive(Debug)]
struct FollowerState {
    leader: Option<BrokerId>,
    epoch: LeaderEpoch,
    inflight: bool,
}

#[derive(Debug)]
enum Role {
    Leader(LeaderState),
    Follower(FollowerState),
}

/// Transaction bookkeeping for one partition: open transactions (their
/// records are withheld from read-committed consumers) and aborted offset
/// ranges (skipped forever). Persisted in the meta blob so isolation
/// survives a broker bounce.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct PartitionTxns {
    /// `(producer, txn)` → `(first, end, producer_epoch)` offset range
    /// staged so far, tagged with the staging incarnation's epoch so a
    /// recover from a newer incarnation can fence older leftovers without
    /// ever touching its own transactions.
    ongoing: BTreeMap<(u32, u64), (u64, u64, u32)>,
    /// Aborted `[start, end)` offset ranges.
    aborted: Vec<(u64, u64)>,
}

impl PartitionTxns {
    /// The last stable offset: no record at or above it belongs to an open
    /// transaction. `None` when no transaction is open.
    fn lso(&self) -> Option<u64> {
        self.ongoing.values().map(|(first, _, _)| *first).min()
    }

    fn is_aborted(&self, offset: u64) -> bool {
        // `aborted` is kept sorted and merged, so a binary search suffices.
        let i = self.aborted.partition_point(|(s, _)| *s <= offset);
        i > 0 && offset < self.aborted[i - 1].1
    }

    /// Inserts an aborted `[start, end)` range, keeping the list sorted and
    /// coalescing overlapping/adjacent ranges so fetch-path lookups stay
    /// logarithmic and the meta blob stays small.
    fn add_aborted(&mut self, start: u64, end: u64) {
        let i = self.aborted.partition_point(|(s, _)| *s < start);
        self.aborted.insert(i, (start, end));
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.aborted.len());
        for &(s, e) in &self.aborted {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.aborted = merged;
    }

    /// Drops aborted ranges wholly below the retention-advanced log start:
    /// their records no longer exist, so nothing can fetch them.
    fn prune_aborted_below(&mut self, log_start: u64) {
        self.aborted.retain(|(_, e)| *e > log_start);
    }
}

/// Counters exposed for tests and monitoring.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrokerStats {
    /// Produce requests handled.
    pub produces: u64,
    /// Consumer fetch requests handled.
    pub fetches: u64,
    /// Replica fetch requests handled (as leader).
    pub replica_fetches: u64,
    /// Records appended (as leader or follower).
    pub records_appended: u64,
    /// Records discarded by divergence truncation.
    pub records_truncated: u64,
    /// Requests rejected because the broker was fenced.
    pub rejected_fenced: u64,
    /// Requests rejected because this broker was not the leader.
    pub rejected_not_leader: u64,
    /// Produce requests bounced by leader-epoch fencing: the request was
    /// stamped with an epoch older than this leader's reign (a zombie
    /// client, or traffic delayed across an election).
    pub rejected_stale_epoch: u64,
    /// `acks=all` produce requests rejected because the ISR had shrunk
    /// below `min.insync.replicas`.
    pub rejected_not_enough_replicas: u64,
    /// Records dropped by idempotent-producer dedup: a retried batch whose
    /// `(producer, seq)` the log already holds (e.g. the ack was lost to a
    /// broker crash) is acknowledged without a second append.
    pub duplicates_filtered: u64,
    /// ISR shrink events initiated by this broker.
    pub isr_shrinks: u64,
    /// ISR expand proposals initiated by this broker.
    pub isr_expands: u64,
    /// Consumer-group offset commits recorded.
    pub offset_commits: u64,
    /// Consumer-group offset fetches served.
    pub offset_fetches: u64,
    /// Log flushes completed through the attached [`LogBackend`].
    pub log_flushes: u64,
    /// Encoded segment bytes handed to the log backend.
    pub log_flushed_bytes: u64,
    /// Client/replica requests dropped because the broker was still
    /// replaying its log after a restart.
    pub dropped_recovering: u64,
    /// Log-cleaner passes that removed anything.
    pub cleaner_runs: u64,
    /// Records removed by keyed compaction.
    pub records_compacted: u64,
    /// Record bytes reclaimed by keyed compaction.
    pub compacted_bytes: u64,
    /// Whole segments dropped by time/size retention.
    pub segments_retired: u64,
    /// Record bytes reclaimed by retention.
    pub retired_bytes: u64,
    /// Transactions committed (markers flipped to visible).
    pub txns_committed: u64,
    /// Transactions aborted (their records hidden from read-committed
    /// consumers forever).
    pub txns_aborted: u64,
}

/// A message broker process (the Kafka-broker stand-in).
pub struct Broker {
    id: BrokerId,
    cfg: BrokerConfig,
    mode: CoordinationMode,
    controllers: Vec<ProcessId>,
    peers: BTreeMap<BrokerId, ProcessId>,
    logs: BTreeMap<TopicPartition, PartitionLog>,
    /// Committed consumer-group positions, keyed by `(group, partition)` —
    /// the broker-side half of checkpoint/recovery. Commits survive client
    /// crashes because they live here, not in the consumer.
    group_offsets: BTreeMap<(String, TopicPartition), Offset>,
    /// Consumer-group membership + partition assignment for the groups this
    /// broker coordinates (clients route group RPCs by `fnv1a(group) %
    /// brokers`, so exactly one broker coordinates each group).
    groups: GroupCoordinator,
    /// Highest `(producer_epoch, seq)` appended per `(partition, producer)`
    /// — the idempotent-producer dedup state. Rebuilt from the log on
    /// restart replay and after divergence truncation, so a batch retried
    /// across a broker bounce is acknowledged without duplicating records,
    /// while a respawned client (bumped epoch, sequence restarting at zero)
    /// is accepted as fresh.
    last_producer_seq: BTreeMap<(TopicPartition, u32), (u32, u64)>,
    /// Per-partition transaction markers (transactional sinks).
    txns: BTreeMap<TopicPartition, PartitionTxns>,
    /// Producer dedup state mirrored from the leader while following,
    /// merged into `last_producer_seq` on promotion. This carries the
    /// in-memory-only knowledge a bare log replay cannot rebuild (e.g. a
    /// producer's highest sequence whose record compaction since removed),
    /// so a failover never re-admits a duplicate the old leader had
    /// filtered. Only populated from fetches made while fully caught up,
    /// so every mirrored stamp is covered by the local log.
    mirrored_seqs: BTreeMap<(TopicPartition, u32), (u32, u64)>,
    /// Sticky per-partition compression: the codec of the last produced (or
    /// replicated) batch, stamped onto fetch responses so consumers pay the
    /// decompress cost — the broker itself never re-codes batches, exactly
    /// like Kafka's zero-copy fetch path.
    batch_compression: HashMap<TopicPartition, Compression>,
    roles: BTreeMap<TopicPartition, Role>,
    known_epoch: HashMap<TopicPartition, LeaderEpoch>,
    metadata: MetadataCache,
    last_hb_ack: SimTime,
    next_corr: u64,
    next_cpu_tag: u64,
    pending_out: HashMap<u64, Vec<(ProcessId, OutMsg)>>,
    mem: Option<(LedgerHandle, MemSlot)>,
    retained_bytes: u64,
    /// Cleaning savings recovered from the pre-crash meta blob; per-log
    /// counters restart at zero after a replay, so this preserves the
    /// lifetime total.
    reclaimed_baseline: u64,
    stats: BrokerStats,
    name: String,
    /// Leadership-change log for the Fig. 6d event markers: (time, partition,
    /// became_leader).
    leadership_events: Vec<(SimTime, TopicPartition, bool)>,
    /// Durable-log driver, when a backend is attached.
    durability: Option<Durability>,
    /// The respawned broker must replay its persisted log before serving.
    recover: bool,
    /// Replay is in flight; client/replica requests are dropped meanwhile.
    recovering: bool,
    /// Process incarnation, bumped by the orchestrator on every respawn and
    /// carried in heartbeats so the controller re-teaches roles to a broker
    /// that bounced within its session timeout.
    incarnation: u64,
    /// Restart/replay metrics for the current incarnation.
    recovery: Option<BrokerRecoveryInfo>,
    /// Telemetry sink (an unshared default until the orchestrator attaches
    /// the run-wide one).
    tele: Telemetry,
}

impl Broker {
    /// Creates a broker.
    ///
    /// `controllers` lists the controller process(es): one for ZooKeeper
    /// mode, the Raft quorum members for KRaft mode (requests are sent to
    /// all; only the active controller answers). `peers` maps every broker
    /// id in the cluster (including this one) to its process id.
    pub fn new(
        id: BrokerId,
        cfg: BrokerConfig,
        mode: CoordinationMode,
        controllers: Vec<ProcessId>,
        peers: BTreeMap<BrokerId, ProcessId>,
    ) -> Self {
        assert!(
            !controllers.is_empty(),
            "a broker needs at least one controller endpoint"
        );
        let name = format!("broker-{}", id.0);
        Broker {
            id,
            cfg,
            mode,
            controllers,
            peers,
            logs: BTreeMap::new(),
            group_offsets: BTreeMap::new(),
            groups: GroupCoordinator::new(),
            last_producer_seq: BTreeMap::new(),
            txns: BTreeMap::new(),
            mirrored_seqs: BTreeMap::new(),
            batch_compression: HashMap::new(),
            roles: BTreeMap::new(),
            known_epoch: HashMap::new(),
            metadata: MetadataCache::new(),
            last_hb_ack: SimTime::ZERO,
            next_corr: 0,
            next_cpu_tag: 0,
            pending_out: HashMap::new(),
            mem: None,
            retained_bytes: 0,
            reclaimed_baseline: 0,
            stats: BrokerStats::default(),
            name,
            leadership_events: Vec::new(),
            durability: None,
            recover: false,
            recovering: false,
            incarnation: 0,
            recovery: None,
            tele: Telemetry::new(),
        }
    }

    /// Attaches a memory-ledger slot for the resource model.
    pub fn set_mem_slot(&mut self, ledger: LedgerHandle, slot: MemSlot) {
        self.mem = Some((ledger, slot));
    }

    /// Attaches the run-wide telemetry sink. The broker records produce /
    /// fetch / append counters, log-size and watermark-gap gauges, and
    /// append trace events under its own name (`broker-<id>`).
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.tele = tele;
    }

    /// Refreshes this partition's watermark-gap gauges: `hw_gap` is the
    /// unreplicated suffix (log end minus high watermark) and `lso_gap` is
    /// the open-transaction window (high watermark minus last stable
    /// offset) that read-committed consumers cannot see yet.
    fn telemetry_partition_gauges(&mut self, tp: &TopicPartition) {
        let Some(log) = self.logs.get(tp) else {
            return;
        };
        let hw = log.high_watermark().value();
        let hw_gap = log.log_end().value().saturating_sub(hw);
        let lso = self
            .txns
            .get(tp)
            .and_then(PartitionTxns::lso)
            .map_or(hw, |l| l.min(hw));
        self.tele
            .gauge_set(&self.name, &format!("hw_gap/{tp}"), hw_gap as f64);
        self.tele
            .gauge_set(&self.name, &format!("lso_gap/{tp}"), (hw - lso) as f64);
    }

    /// Attaches a durable-log backend. Dirty segments and the meta blob are
    /// flushed through it, and produce acknowledgements wait for the
    /// covering flush (instant for [`InMemoryLogBackend`], a store round
    /// trip for [`DurableLogBackend`]). With `recover` set the broker
    /// replays the persisted manifest before serving — the respawn path.
    ///
    /// [`InMemoryLogBackend`]: crate::InMemoryLogBackend
    /// [`DurableLogBackend`]: crate::DurableLogBackend
    pub fn set_durability(&mut self, backend: Box<dyn LogBackend>, recover: bool) {
        let prefix = format!("brokerlog/b{}", self.id.0);
        self.durability = Some(Durability {
            backend,
            prefix,
            dirty: false,
            flush_inflight: false,
            flush_again: false,
            flush_ends: BTreeMap::new(),
            durable_end: BTreeMap::new(),
            pending: BTreeMap::new(),
            retry_armed: false,
            pending_deletes: Vec::new(),
            staged: BTreeMap::new(),
            staged_meta: None,
        });
        self.recover = recover;
    }

    /// Sets the process incarnation carried in controller heartbeats. The
    /// orchestrator bumps it on every respawn so the controller can detect a
    /// bounce that happened within the session timeout.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        self.incarnation = incarnation;
    }

    /// Marks this broker instance as a post-crash respawn, so restart
    /// metrics are reported even when no log backend is attached.
    pub fn mark_restarted(&mut self) {
        self.recovery = Some(BrokerRecoveryInfo::new(SimTime::ZERO));
    }

    /// Restart/replay metrics when this incarnation was respawned.
    pub fn recovery_info(&self) -> Option<BrokerRecoveryInfo> {
        self.recovery
    }

    /// True while the broker is replaying its persisted log after a restart
    /// (client and replica requests are dropped meanwhile).
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Counters.
    pub fn stats(&self) -> BrokerStats {
        self.stats
    }

    /// The consumer-group coordinator hosted on this broker (generation,
    /// membership, and assignment introspection for tests and monitors).
    pub fn group_coordinator(&self) -> &GroupCoordinator {
        &self.groups
    }

    /// Read access to a partition log (tests, monitors).
    pub fn log(&self, tp: &TopicPartition) -> Option<&PartitionLog> {
        self.logs.get(tp)
    }

    /// The committed position of a consumer group on a partition, if any.
    pub fn committed_offset(&self, group: &str, tp: &TopicPartition) -> Option<Offset> {
        self.group_offsets
            .get(&(group.to_string(), tp.clone()))
            .copied()
    }

    /// True if this broker currently leads `tp`.
    pub fn is_leader(&self, tp: &TopicPartition) -> bool {
        matches!(self.roles.get(tp), Some(Role::Leader(_)))
    }

    /// The leadership epoch under which this broker currently leads `tp`,
    /// or `None` if it is not the leader. Tests use this to stamp a
    /// deliberately stale produce and pin the fencing behaviour.
    pub fn leader_epoch(&self, tp: &TopicPartition) -> Option<LeaderEpoch> {
        match self.roles.get(tp) {
            Some(Role::Leader(ls)) => Some(ls.epoch),
            _ => None,
        }
    }

    /// The ISR as this broker (when leader) sees it.
    pub fn isr(&self, tp: &TopicPartition) -> Option<Vec<BrokerId>> {
        match self.roles.get(tp) {
            Some(Role::Leader(ls)) => Some(ls.isr.clone()),
            _ => None,
        }
    }

    /// Leadership transitions observed, for event-marker plots (Fig. 6d).
    pub fn leadership_events(&self) -> &[(SimTime, TopicPartition, bool)] {
        &self.leadership_events
    }

    /// A byte-level fingerprint of one partition log — every entry's
    /// offset, leader epoch, and full record — for replica-identity
    /// assertions: two brokers whose fingerprints match hold
    /// byte-identical logs for the partition.
    pub fn log_fingerprint(&self, tp: &TopicPartition) -> String {
        use std::fmt::Write;
        let Some(log) = self.logs.get(tp) else {
            return String::new();
        };
        let mut s = String::new();
        for seg in log.segments() {
            for e in seg.entries() {
                let _ = write!(s, "{}:{}:{:?};", e.offset.value(), e.epoch.0, e.record);
            }
        }
        s
    }

    /// Total record bytes retained across partition logs.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    fn is_fenced(&self, now: SimTime) -> bool {
        self.mode == CoordinationMode::Kraft
            && now.saturating_since(self.last_hb_ack) > self.cfg.session_timeout
    }

    fn next_corr(&mut self) -> CorrelationId {
        self.next_corr += 1;
        CorrelationId(self.next_corr)
    }

    fn send_controllers(&mut self, ctx: &mut Ctx<'_>, rpc: ControllerRpc) {
        for pid in self.controllers.clone() {
            ctx.send(pid, rpc.clone());
        }
    }

    fn respond_after_cpu(
        &mut self,
        ctx: &mut Ctx<'_>,
        cost: SimDuration,
        to: ProcessId,
        msg: OutMsg,
    ) {
        let tag = tags::CPU_BASE + self.next_cpu_tag;
        self.next_cpu_tag += 1;
        self.pending_out.insert(tag, vec![(to, msg)]);
        ctx.exec(cost, tag);
    }

    fn request_cost(&self, records: usize) -> SimDuration {
        self.cfg.cpu_per_request + self.cfg.cpu_per_record * records as u64
    }

    fn update_mem(&mut self) {
        if let Some((ledger, slot)) = &self.mem {
            ledger.borrow_mut().set_dynamic(*slot, self.retained_bytes);
        }
    }

    /// Rebuilds the idempotent-producer dedup state of one partition from
    /// its log (after truncation or restart replay).
    fn rebuild_producer_seq(&mut self, tp: &TopicPartition) {
        self.last_producer_seq.retain(|(t, _), _| t != tp);
        let Some(log) = self.logs.get(tp) else {
            return;
        };
        for seg in log.segments() {
            for e in seg.entries() {
                let key = (tp.clone(), e.record.producer.0);
                let stamp = (e.record.producer_epoch, e.record.producer_seq);
                let entry = self.last_producer_seq.entry(key).or_insert(stamp);
                *entry = (*entry).max(stamp);
            }
        }
    }

    /// The partition's log, created with the configured segment size on
    /// first touch. An associated function so call sites can hold other
    /// `self` borrows.
    fn log_mut<'l>(
        logs: &'l mut BTreeMap<TopicPartition, PartitionLog>,
        cfg: &BrokerConfig,
        tp: &TopicPartition,
    ) -> &'l mut PartitionLog {
        logs.entry(tp.clone())
            .or_insert_with(|| PartitionLog::with_segment_max(cfg.log_segment_max_records))
    }

    /// Advances the high watermark of a led partition from follower state
    /// and acknowledges pending produces whose replication and durability
    /// requirements are both met.
    fn advance_hw(&mut self, ctx: &mut Ctx<'_>, tp: &TopicPartition) {
        let Some(Role::Leader(ls)) = self.roles.get_mut(tp) else {
            return;
        };
        let log = Self::log_mut(&mut self.logs, &self.cfg, tp);
        let prev_hw = log.high_watermark();
        // The watermark is the highest offset held by "enough" of the ISR:
        // all of it with the strict default, all-but-`acks_all_slack`
        // members when slack tolerates stragglers. Equivalently, the k-th
        // highest log end where k = |ISR| - slack (at least one — the
        // leader itself). Never past the leader's own end.
        let mut ends: Vec<Offset> = ls
            .isr
            .iter()
            .map(|b| {
                if *b == self.id {
                    log.log_end()
                } else {
                    ls.follower_end.get(b).copied().unwrap_or(Offset::ZERO)
                }
            })
            .collect();
        if ends.is_empty() {
            ends.push(log.log_end());
        }
        ends.sort_unstable_by(|a, b| b.cmp(a));
        let needed = ends
            .len()
            .saturating_sub(self.cfg.acks_all_slack as usize)
            .max(1);
        let hw = ends[needed - 1].min(log.log_end());
        log.advance_high_watermark(hw);
        let hw = log.high_watermark();
        if hw != prev_hw {
            // Watermark moves are metadata; the interval flush persists them.
            if let Some(d) = &mut self.durability {
                d.dirty = true;
            }
        }
        let durable = match &self.durability {
            Some(d) => d.durable_floor(tp),
            None => Offset(u64::MAX),
        };
        // Acknowledge pending produces now covered by the HW and the
        // durable end.
        let mut still_pending = Vec::new();
        let mut to_send = Vec::new();
        for p in ls.pending.drain(..) {
            if p.need <= hw && p.need_durable <= durable {
                to_send.push((
                    p.client,
                    OutMsg::Client(ClientRpc::ProduceResponse {
                        corr: p.corr,
                        tp: p.tp.clone(),
                        base_offset: p.base,
                        error: ErrorCode::None,
                    }),
                    p.records,
                ));
            } else {
                still_pending.push(p);
            }
        }
        ls.pending = still_pending;
        for (to, msg, records) in to_send {
            let cost = self.request_cost(records);
            self.respond_after_cpu(ctx, cost, to, msg);
        }
        self.telemetry_partition_gauges(tp);
    }

    fn fail_pending(&mut self, ctx: &mut Ctx<'_>, tp: &TopicPartition, error: ErrorCode) {
        let Some(Role::Leader(ls)) = self.roles.get_mut(tp) else {
            return;
        };
        let drained: Vec<PendingProduce> = ls.pending.drain(..).collect();
        for p in drained {
            let msg = OutMsg::Client(ClientRpc::ProduceResponse {
                corr: p.corr,
                tp: p.tp.clone(),
                base_offset: p.base,
                error,
            });
            let cost = self.cfg.cpu_per_request;
            self.respond_after_cpu(ctx, cost, p.client, msg);
        }
    }

    fn handle_client(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, rpc: ClientRpc) {
        let now = ctx.now();
        match rpc {
            ClientRpc::ProduceRequest {
                corr,
                tp,
                batch,
                acks,
                epoch: req_epoch,
                txn,
            } => {
                self.stats.produces += 1;
                if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    let cost = self.cfg.cpu_per_request;
                    self.respond_after_cpu(
                        ctx,
                        cost,
                        from,
                        OutMsg::Client(ClientRpc::ProduceResponse {
                            corr,
                            tp,
                            base_offset: Offset::ZERO,
                            error: ErrorCode::Fenced,
                        }),
                    );
                    return;
                }
                let is_leader = matches!(self.roles.get(&tp), Some(Role::Leader(_)));
                if !is_leader {
                    self.stats.rejected_not_leader += 1;
                    let cost = self.cfg.cpu_per_request;
                    self.respond_after_cpu(
                        ctx,
                        cost,
                        from,
                        OutMsg::Client(ClientRpc::ProduceResponse {
                            corr,
                            tp,
                            base_offset: Offset::ZERO,
                            error: ErrorCode::NotLeader,
                        }),
                    );
                    return;
                }
                // Leader-epoch fencing. A request stamped with an *older*
                // epoch is aimed at a deposed leader's reign — a delayed
                // produce released after an election, or a zombie client
                // that never refreshed — and must bounce (StaleEpoch is
                // retriable, so a live client refreshes metadata and
                // retries against the new reign). A *newer* epoch means
                // this broker is the deposed one still serving on stale
                // state: NotLeader sends the client to the real leader.
                // (Note an isolated ZK-mode leader and its co-located
                // clients share the same stale epoch, so the Fig. 6b
                // silent-loss pathology is untouched by this fence.)
                let my_epoch = match self.roles.get(&tp) {
                    Some(Role::Leader(ls)) => ls.epoch,
                    _ => unreachable!("checked leader above"),
                };
                if req_epoch != my_epoch {
                    let error = if req_epoch < my_epoch {
                        self.stats.rejected_stale_epoch += 1;
                        ErrorCode::StaleEpoch
                    } else {
                        self.stats.rejected_not_leader += 1;
                        ErrorCode::NotLeader
                    };
                    let cost = self.cfg.cpu_per_request;
                    self.respond_after_cpu(
                        ctx,
                        cost,
                        from,
                        OutMsg::Client(ClientRpc::ProduceResponse {
                            corr,
                            tp,
                            base_offset: Offset::ZERO,
                            error,
                        }),
                    );
                    return;
                }
                // acks=all needs a healthy quorum: with the ISR shrunk
                // below min.insync.replicas, reject rather than accept
                // records only a rump of the replica set would hold.
                if acks == AckMode::All {
                    let isr_len = match self.roles.get(&tp) {
                        Some(Role::Leader(ls)) => ls.isr.len(),
                        _ => 0,
                    };
                    if isr_len < self.cfg.min_insync_replicas as usize {
                        self.stats.rejected_not_enough_replicas += 1;
                        let cost = self.cfg.cpu_per_request;
                        self.respond_after_cpu(
                            ctx,
                            cost,
                            from,
                            OutMsg::Client(ClientRpc::ProduceResponse {
                                corr,
                                tp,
                                base_offset: Offset::ZERO,
                                error: ErrorCode::NotEnoughReplicas,
                            }),
                        );
                        return;
                    }
                }
                // The sticky per-partition codec: fetches of this partition
                // are served with whatever the last producer sealed.
                self.batch_compression
                    .insert(tp.clone(), batch.compression());
                self.tele
                    .observe_count(&self.name, "batch_records", batch.len() as u64);
                self.tele
                    .observe_bytes(&self.name, "batch_bytes", batch.record_bytes() as u64);
                // Idempotent-producer dedup: a record whose `(producer,
                // seq)` this partition already appended is a retry whose
                // ack was lost (timeout, broker bounce) — acknowledge it
                // without appending a second copy. The batch is borrowed,
                // not consumed: the producer still holds it for retries, so
                // taking ownership here would force a deep copy. Cloning a
                // `Record` only bumps the payload refcounts.
                let mut fresh: Vec<Record> = Vec::with_capacity(batch.len());
                for r in batch.iter() {
                    let key = (tp.clone(), r.producer.0);
                    // Same-or-older (epoch, seq) is a stale retry; a bumped
                    // epoch is a respawned client restarting at seq zero.
                    let dup = self
                        .last_producer_seq
                        .get(&key)
                        .is_some_and(|last| (r.producer_epoch, r.producer_seq) <= *last);
                    if dup {
                        self.stats.duplicates_filtered += 1;
                    } else {
                        self.last_producer_seq
                            .insert(key, (r.producer_epoch, r.producer_seq));
                        fresh.push(r.clone());
                    }
                }
                let n = fresh.len();
                let bytes: u64 = fresh.iter().map(|r| r.encoded_len() as u64).sum();
                let epoch = match self.roles.get(&tp) {
                    Some(Role::Leader(ls)) => ls.epoch,
                    _ => unreachable!("checked leader above"),
                };
                let producer_of_batch = fresh.first().map(|r| (r.producer.0, r.producer_epoch));
                let log = Self::log_mut(&mut self.logs, &self.cfg, &tp);
                let base = log.append_batch(epoch, fresh);
                self.retained_bytes += bytes;
                self.update_mem();
                self.stats.records_appended += n as u64;
                self.tele.counter_add(&self.name, "produces", 1);
                self.tele
                    .counter_add(&self.name, "records_appended", n as u64);
                self.tele
                    .gauge_set(&self.name, "log_bytes", self.retained_bytes as f64);
                if self.tele.trace_enabled() && n > 0 {
                    self.tele
                        .trace_instant(now, &self.name, &format!("append:{tp}"), "broker");
                }
                let end = Offset(base.value() + n as u64);
                // A transactional batch stays invisible to read-committed
                // consumers until its EndTxn marker: record (or extend) the
                // open transaction's staged offset range. A leftover entry
                // from an older producer epoch (the crashed incarnation
                // reused the txn sequence) is fenced — its range aborts and
                // the fresh epoch starts a new one.
                if let (Some(t), Some((pid, rec_epoch)), true) = (txn, producer_of_batch, n > 0) {
                    let ptx = self.txns.entry(tp.clone()).or_default();
                    let key = (pid, t);
                    match ptx.ongoing.get(&key).copied() {
                        Some((f, l, e)) if e == rec_epoch => {
                            ptx.ongoing.insert(key, (f, l.max(end.value()), e));
                        }
                        Some((f, l, _)) => {
                            ptx.ongoing
                                .insert(key, (base.value(), end.value(), rec_epoch));
                            if l > f {
                                ptx.add_aborted(f, l);
                            }
                            self.stats.txns_aborted += 1;
                        }
                        None => {
                            ptx.ongoing
                                .insert(key, (base.value(), end.value(), rec_epoch));
                        }
                    }
                    if let Some(d) = &mut self.durability {
                        d.dirty = true;
                    }
                }
                let need = match acks {
                    AckMode::All => end,
                    AckMode::Leader => Offset::ZERO,
                };
                // With a log backend attached, the ack additionally waits
                // for the covering flush (fsync-before-ack semantics), so an
                // acknowledged record can never be lost to a broker crash.
                let need_durable = if self.durability.is_some() {
                    end
                } else {
                    Offset::ZERO
                };
                if need == Offset::ZERO && need_durable == Offset::ZERO {
                    // acks=1, no durable log: acknowledge immediately; the
                    // HW may advance later via replication.
                    let cost = self.request_cost(n);
                    self.respond_after_cpu(
                        ctx,
                        cost,
                        from,
                        OutMsg::Client(ClientRpc::ProduceResponse {
                            corr,
                            tp: tp.clone(),
                            base_offset: base,
                            error: ErrorCode::None,
                        }),
                    );
                    self.advance_hw(ctx, &tp);
                } else {
                    if let Some(Role::Leader(ls)) = self.roles.get_mut(&tp) {
                        ls.pending.push(PendingProduce {
                            client: from,
                            corr,
                            tp: tp.clone(),
                            need,
                            need_durable,
                            base,
                            records: n,
                        });
                    }
                    if let Some(d) = &mut self.durability {
                        d.dirty = true;
                    }
                    // Watermark first so the flush persists the fresh one;
                    // the ack stays pending until the flush is durable.
                    self.advance_hw(ctx, &tp);
                    self.flush_logs(ctx);
                }
            }
            ClientRpc::FetchRequest {
                corr,
                tp,
                offset,
                max_records,
                read_committed,
            } => {
                self.stats.fetches += 1;
                let codec = self.batch_compression.get(&tp).copied().unwrap_or_default();
                let (batch, hw, next, error) = if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    (RecordBatch::new(), Offset::ZERO, offset, ErrorCode::Fenced)
                } else {
                    match self.roles.get(&tp) {
                        Some(Role::Leader(_)) => {
                            let txns = self.txns.get(&tp);
                            let log = Self::log_mut(&mut self.logs, &self.cfg, &tp);
                            let hw = log.high_watermark();
                            let start = log.log_start();
                            // Read-committed isolation caps the read at the
                            // last stable offset: nothing of an open
                            // transaction leaks out before its marker flips.
                            let visible_end = if read_committed {
                                txns.and_then(PartitionTxns::lso)
                                    .map(Offset)
                                    .unwrap_or(hw)
                                    .min(hw)
                            } else {
                                hw
                            };
                            if offset < start {
                                // Retention dropped the requested range:
                                // reset the reader to the earliest record.
                                (RecordBatch::new(), hw, start, ErrorCode::OffsetOutOfRange)
                            } else if offset > hw {
                                (RecordBatch::new(), hw, hw, ErrorCode::OffsetOutOfRange)
                            } else {
                                let scanned = log.read_entries(
                                    offset,
                                    max_records.min(self.cfg.fetch_max_records),
                                    true,
                                );
                                let scanned: Vec<_> = scanned
                                    .into_iter()
                                    .filter(|e| e.offset < visible_end)
                                    .collect();
                                // Aborted transactions' records are holes to
                                // a read-committed reader, exactly like
                                // compacted entries.
                                let served: Vec<_> = scanned
                                    .iter()
                                    .filter(|e| {
                                        !read_committed
                                            || !txns.is_some_and(|t| t.is_aborted(e.offset.value()))
                                    })
                                    .collect();
                                // Advance past the last scanned record (so
                                // aborted suffixes are skipped), or, on an
                                // empty read below the visible end, over a
                                // fully compacted tail hole. A reader parked
                                // at the LSO simply re-polls.
                                let next = served
                                    .last()
                                    .map(|e| Offset(e.offset.value() + 1))
                                    .or_else(|| {
                                        scanned.last().map(|e| Offset(e.offset.value() + 1))
                                    })
                                    .unwrap_or(if offset < visible_end {
                                        visible_end
                                    } else {
                                        offset
                                    });
                                let recs: Vec<Record> =
                                    served.iter().map(|e| e.record.clone()).collect();
                                (
                                    RecordBatch::from_records(recs).with_compression(codec),
                                    hw,
                                    next,
                                    ErrorCode::None,
                                )
                            }
                        }
                        _ => {
                            self.stats.rejected_not_leader += 1;
                            (
                                RecordBatch::new(),
                                Offset::ZERO,
                                offset,
                                ErrorCode::NotLeader,
                            )
                        }
                    }
                };
                let n = batch.len();
                self.tele.counter_add(&self.name, "fetches", 1);
                self.tele
                    .counter_add(&self.name, "records_fetched", n as u64);
                if self.tele.trace_enabled() && n > 0 {
                    self.tele
                        .trace_instant(now, &self.name, &format!("fetch:{tp}"), "broker");
                }
                let cost = self.request_cost(n);
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::FetchResponse {
                        corr,
                        tp,
                        batch,
                        high_watermark: hw,
                        next_offset: next,
                        error,
                    }),
                );
            }
            ClientRpc::MetadataRequest { corr } => {
                let cost = self.cfg.cpu_per_request;
                let partitions = self.metadata.snapshot();
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::MetadataResponse { corr, partitions }),
                );
            }
            ClientRpc::OffsetCommit {
                corr,
                group,
                offsets,
                member,
            } => {
                self.stats.offset_commits += 1;
                let error = if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    ErrorCode::Fenced
                } else {
                    // Generation fencing: a commit stamped with a member id
                    // must come from a member current at exactly that
                    // generation — an evicted zombie's commit is rejected
                    // instead of clobbering its successor's positions.
                    let fence = match &member {
                        Some((m, generation)) => self.groups.check_commit(&group, m, *generation),
                        None => ErrorCode::None,
                    };
                    if fence.is_ok() {
                        for (tp, off) in offsets {
                            self.group_offsets.insert((group.clone(), tp), off);
                        }
                        if let Some(d) = &mut self.durability {
                            d.dirty = true;
                        }
                        self.flush_logs(ctx);
                    }
                    fence
                };
                let cost = self.cfg.cpu_per_request;
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::OffsetCommitResponse { corr, error }),
                );
            }
            ClientRpc::OffsetFetch { corr, group, tps } => {
                self.stats.offset_fetches += 1;
                let offsets: Vec<(TopicPartition, Option<Offset>)> = tps
                    .into_iter()
                    .map(|tp| {
                        let committed = self
                            .group_offsets
                            .get(&(group.clone(), tp.clone()))
                            .copied();
                        (tp, committed)
                    })
                    .collect();
                let cost = self.cfg.cpu_per_request;
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::OffsetFetchResponse { corr, offsets }),
                );
            }
            ClientRpc::EndTxn {
                corr,
                producer,
                txn,
                commit,
            } => {
                let error = if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    ErrorCode::Fenced
                } else {
                    self.resolve_txns(ctx, producer.0, |t| t == txn, None, commit);
                    ErrorCode::None
                };
                let cost = self.cfg.cpu_per_request;
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::EndTxnResponse { corr, error }),
                );
            }
            ClientRpc::TxnRecover {
                corr,
                producer,
                commit_upto,
                epoch,
            } => {
                // Roll forward every prepared transaction of the crashed
                // incarnation, abort the rest: replay re-stages them. Only
                // pre-`epoch` transactions are touched, so a retried or
                // delayed recover never aborts the new incarnation's own
                // staged output.
                self.resolve_txns(ctx, producer.0, |t| t <= commit_upto, Some(epoch), true);
                self.resolve_txns(ctx, producer.0, |t| t > commit_upto, Some(epoch), false);
                let cost = self.cfg.cpu_per_request;
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::TxnRecoverResponse { corr }),
                );
            }
            ClientRpc::JoinGroup {
                corr,
                group,
                member,
                topics,
            } => {
                let (generation, assigned, error) = if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    (0, Vec::new(), ErrorCode::Fenced)
                } else {
                    let metadata = &self.metadata;
                    let partitions_of = |t: &str| metadata.partitions_of(t);
                    let (generation, assigned) =
                        self.groups
                            .join(now, &group, &member, topics, &partitions_of);
                    (generation, assigned, ErrorCode::None)
                };
                let cost = self.cfg.cpu_per_request;
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::JoinGroupResponse {
                        corr,
                        generation,
                        assigned,
                        error,
                    }),
                );
            }
            ClientRpc::GroupHeartbeat {
                corr,
                group,
                member,
                generation,
            } => {
                let error = if self.is_fenced(now) {
                    self.stats.rejected_fenced += 1;
                    ErrorCode::Fenced
                } else {
                    self.groups.heartbeat(now, &group, &member, generation)
                };
                let cost = self.cfg.cpu_per_request;
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from,
                    OutMsg::Client(ClientRpc::GroupHeartbeatResponse { corr, error }),
                );
            }
            // Responses are not expected here; brokers only serve.
            ClientRpc::ProduceResponse { .. }
            | ClientRpc::FetchResponse { .. }
            | ClientRpc::MetadataResponse { .. }
            | ClientRpc::OffsetCommitResponse { .. }
            | ClientRpc::OffsetFetchResponse { .. }
            | ClientRpc::EndTxnResponse { .. }
            | ClientRpc::TxnRecoverResponse { .. }
            | ClientRpc::JoinGroupResponse { .. }
            | ClientRpc::GroupHeartbeatResponse { .. } => {}
        }
    }

    /// Resolves every open transaction of `producer` whose sequence matches
    /// `which` — and, when `below_epoch` is set, whose staging producer
    /// epoch is older than it (the fencing rule) — committing or aborting,
    /// across all hosted partitions. The updated marker state rides the
    /// next meta flush.
    fn resolve_txns(
        &mut self,
        ctx: &mut Ctx<'_>,
        producer: u32,
        which: impl Fn(u64) -> bool,
        below_epoch: Option<u32>,
        commit: bool,
    ) {
        let mut changed = false;
        for ptx in self.txns.values_mut() {
            let keys: Vec<(u32, u64)> = ptx
                .ongoing
                .iter()
                .filter(|((p, t), (_, _, e))| {
                    *p == producer && which(*t) && below_epoch.is_none_or(|fence| *e < fence)
                })
                .map(|(k, _)| *k)
                .collect();
            for k in keys {
                let (first, end, _) = ptx.ongoing.remove(&k).expect("just listed");
                changed = true;
                if commit {
                    self.stats.txns_committed += 1;
                } else {
                    self.stats.txns_aborted += 1;
                    if end > first {
                        ptx.add_aborted(first, end);
                    }
                }
            }
        }
        if changed {
            self.tele.counter_add(
                &self.name,
                if commit {
                    "txns_committed"
                } else {
                    "txns_aborted"
                },
                1,
            );
            if self.tele.trace_enabled() {
                self.tele.trace_instant(
                    ctx.now(),
                    &self.name,
                    if commit { "txn:commit" } else { "txn:abort" },
                    "txn",
                );
            }
        }
        if changed {
            if let Some(d) = &mut self.durability {
                d.dirty = true;
            }
            self.flush_logs(ctx);
        }
    }

    fn handle_replica(&mut self, ctx: &mut Ctx<'_>, from_pid: ProcessId, rpc: ReplicaRpc) {
        let now = ctx.now();
        match rpc {
            ReplicaRpc::Fetch {
                corr,
                tp,
                from,
                log_end,
                epoch,
            } => {
                self.stats.replica_fetches += 1;
                if self.is_fenced(now) || !matches!(self.roles.get(&tp), Some(Role::Leader(_))) {
                    let err = if self.is_fenced(now) {
                        ErrorCode::Fenced
                    } else {
                        ErrorCode::NotLeader
                    };
                    let cost = self.cfg.cpu_per_request;
                    self.respond_after_cpu(
                        ctx,
                        cost,
                        from_pid,
                        OutMsg::Replica(ReplicaRpc::FetchResponse {
                            corr,
                            tp,
                            batch: RecordBatch::new(),
                            epochs: Vec::new(),
                            offsets: Vec::new(),
                            high_watermark: Offset::ZERO,
                            epoch: LeaderEpoch(0),
                            truncate_to: None,
                            txn_ongoing: Vec::new(),
                            txn_aborted: Vec::new(),
                            producer_seqs: Vec::new(),
                            error: err,
                        }),
                    );
                    return;
                }
                let my_epoch = match self.roles.get(&tp) {
                    Some(Role::Leader(ls)) => ls.epoch,
                    _ => unreachable!(),
                };
                let log = Self::log_mut(&mut self.logs, &self.cfg, &tp);
                // Divergence reconciliation: a follower on an older epoch may
                // hold a conflicting suffix and must truncate first.
                let mut truncate_to = None;
                let mut start = log_end;
                if epoch < my_epoch {
                    let boundary = log.end_offset_for_epoch(epoch);
                    if boundary < log_end {
                        truncate_to = Some(boundary);
                        start = boundary;
                    }
                }
                let entries = log.read_entries(start, self.cfg.replica_fetch_max_records, false);
                let epochs: Vec<LeaderEpoch> = entries.iter().map(|e| e.epoch).collect();
                let offsets: Vec<Offset> = entries.iter().map(|e| e.offset).collect();
                let records: Vec<Record> = entries.iter().map(|e| e.record.clone()).collect();
                let hw = log.high_watermark();
                let leader_end = log.log_end();
                let n = records.len();
                // Update follower progress from its claimed log end.
                let mode = self.mode;
                let mut expand: Option<(LeaderEpoch, Vec<BrokerId>)> = None;
                if let Some(Role::Leader(ls)) = self.roles.get_mut(&tp) {
                    ls.follower_end.insert(from, start);
                    if start >= leader_end {
                        ls.caught_up_at.insert(from, now);
                        // Propose ISR expansion for recovered followers. In
                        // ZooKeeper mode the leader applies it locally first;
                        // in KRaft mode it waits for quorum confirmation.
                        if !ls.isr.contains(&from) && ls.replicas.contains(&from) {
                            let mut new_isr = ls.isr.clone();
                            new_isr.push(from);
                            if mode == CoordinationMode::Zk {
                                ls.isr = new_isr.clone();
                            }
                            expand = Some((ls.epoch, new_isr));
                        }
                    }
                }
                if let Some((epoch, new_isr)) = expand {
                    self.stats.isr_expands += 1;
                    self.send_controllers(
                        ctx,
                        ControllerRpc::AlterIsr {
                            tp: tp.clone(),
                            from: self.id,
                            epoch,
                            new_isr,
                        },
                    );
                }
                self.advance_hw(ctx, &tp);
                // Transactional-state handover: every reply mirrors the
                // leader's open/aborted transaction ranges so a promoted
                // follower can keep read-committed isolation and resolve
                // in-flight transactions itself. Producer dedup stamps ride
                // along only when the follower is fully caught up (then
                // every stamp is covered by its log and can never phantom-
                // ack a record the follower does not hold).
                let txn_ongoing: Vec<(u32, u64, Offset, Offset, u32)> = self
                    .txns
                    .get(&tp)
                    .map(|t| {
                        t.ongoing
                            .iter()
                            .map(|((p, x), (f, e, pe))| (*p, *x, Offset(*f), Offset(*e), *pe))
                            .collect()
                    })
                    .unwrap_or_default();
                let txn_aborted: Vec<(Offset, Offset)> = self
                    .txns
                    .get(&tp)
                    .map(|t| {
                        t.aborted
                            .iter()
                            .map(|(s, e)| (Offset(*s), Offset(*e)))
                            .collect()
                    })
                    .unwrap_or_default();
                let producer_seqs: Vec<(u32, u32, u64)> = if start >= leader_end {
                    self.last_producer_seq
                        .iter()
                        .filter(|((t, _), _)| *t == tp)
                        .map(|((_, p), (e, s))| (*p, *e, *s))
                        .collect()
                } else {
                    Vec::new()
                };
                let cost = self.request_cost(n);
                self.respond_after_cpu(
                    ctx,
                    cost,
                    from_pid,
                    OutMsg::Replica(ReplicaRpc::FetchResponse {
                        corr,
                        tp: tp.clone(),
                        batch: RecordBatch::from_records(records).with_compression(
                            self.batch_compression.get(&tp).copied().unwrap_or_default(),
                        ),
                        epochs,
                        offsets,
                        high_watermark: hw,
                        epoch: my_epoch,
                        truncate_to,
                        txn_ongoing,
                        txn_aborted,
                        producer_seqs,
                        error: ErrorCode::None,
                    }),
                );
            }
            ReplicaRpc::FetchResponse {
                tp,
                batch,
                epochs,
                offsets,
                high_watermark,
                epoch,
                truncate_to,
                txn_ongoing,
                txn_aborted,
                producer_seqs,
                error,
                ..
            } => {
                let Some(Role::Follower(fs)) = self.roles.get_mut(&tp) else {
                    return;
                };
                fs.inflight = false;
                if !error.is_ok() {
                    return; // wait for fresh LeaderAndIsr from the controller
                }
                fs.epoch = epoch;
                let full_batch = batch.len() >= self.cfg.replica_fetch_max_records;
                let mut truncated = false;
                {
                    let log = Self::log_mut(&mut self.logs, &self.cfg, &tp);
                    if let Some(t) = truncate_to {
                        let before = log.retained_bytes() as u64;
                        let n = log.truncate_to(t);
                        self.stats.records_truncated += n as u64;
                        let after = log.retained_bytes() as u64;
                        self.retained_bytes = self.retained_bytes + after - before;
                        truncated = true;
                    }
                }
                if truncated {
                    // Discarded entries may hold the highest seqs; rebuild
                    // the dedup state from what remains. Mirrored stamps
                    // predate the truncation and may cover discarded
                    // records — drop them; the next caught-up fetch
                    // repopulates from the new reign's leader.
                    self.rebuild_producer_seq(&tp);
                    self.mirrored_seqs.retain(|(t, _), _| *t != tp);
                    // The durable floor must shrink with the log: offsets
                    // beyond the truncation point are no longer covered by
                    // a valid flush, and future appends there must wait for
                    // their own flush before being acknowledged. An
                    // in-flight flush's claim is clamped too — its blobs
                    // hold the discarded divergent suffix, not the live log.
                    let new_end = self.logs.get(&tp).map_or(Offset::ZERO, |l| l.log_end());
                    if let Some(d) = &mut self.durability {
                        if let Some(e) = d.durable_end.get_mut(&tp) {
                            *e = (*e).min(new_end);
                        }
                        if let Some(e) = d.flush_ends.get_mut(&tp) {
                            *e = (*e).min(new_end);
                        }
                    }
                }
                // Remember the leader's codec so a promotion keeps serving
                // fetches with the right compression flag.
                if !batch.is_empty() {
                    self.batch_compression
                        .insert(tp.clone(), batch.compression());
                }
                let log = Self::log_mut(&mut self.logs, &self.cfg, &tp);
                let mut appended = 0u64;
                // The follower is the batch's sole owner (the leader built
                // it for this reply), so this unwraps the Arc in place.
                for (i, rec) in batch.into_records().into_iter().enumerate() {
                    let e = epochs.get(i).copied().unwrap_or(epoch);
                    // Append at the leader's explicit offset: a compacted
                    // leader log serves holes, and replicas must preserve
                    // offsets to stay byte-identical.
                    let off = offsets.get(i).copied().unwrap_or_else(|| log.log_end());
                    let key = (tp.clone(), rec.producer.0);
                    let stamp = (rec.producer_epoch, rec.producer_seq);
                    let entry = self.last_producer_seq.entry(key).or_insert(stamp);
                    *entry = (*entry).max(stamp);
                    let bytes = rec.encoded_len() as u64;
                    if log.append_at(off, e, rec) {
                        appended += 1;
                        self.retained_bytes += bytes;
                    }
                }
                let n = appended as usize;
                self.stats.records_appended += appended;
                let end = log.log_end();
                log.advance_high_watermark(high_watermark.min(end));
                // Mirror the leader's transactional state, clamped to the
                // records this follower actually holds: ranges wholly past
                // our log end describe records that never replicated here
                // and must not be resurrected after a promotion.
                let log_end = end.value();
                let mut mirrored = PartitionTxns::default();
                for (p, x, first, range_end, pe) in txn_ongoing {
                    if first.value() < log_end {
                        mirrored
                            .ongoing
                            .insert((p, x), (first.value(), range_end.value().min(log_end), pe));
                    }
                }
                for (s, e) in txn_aborted {
                    if s.value() < log_end {
                        mirrored.add_aborted(s.value(), e.value().min(log_end));
                    }
                }
                let txns_changed = self.txns.get(&tp).cloned().unwrap_or_default() != mirrored;
                if txns_changed {
                    self.txns.insert(tp.clone(), mirrored);
                }
                // Caught-up fetches carry the leader's dedup stamps (all
                // covered by our log); stash them for promotion time.
                for (p, e, s) in producer_seqs {
                    let entry = self.mirrored_seqs.entry((tp.clone(), p)).or_insert((e, s));
                    *entry = (*entry).max((e, s));
                }
                self.update_mem();
                if (n > 0 || truncate_to.is_some() || txns_changed) && self.durability.is_some() {
                    // Follower-side log changes ride the interval flush; no
                    // client ack is waiting on them.
                    if let Some(d) = &mut self.durability {
                        d.dirty = true;
                    }
                }
                // Catch-up mode: keep fetching immediately while full batches
                // arrive.
                if full_batch {
                    self.replica_fetch_one(ctx, &tp);
                }
            }
        }
    }

    fn replica_fetch_one(&mut self, ctx: &mut Ctx<'_>, tp: &TopicPartition) {
        let corr = self.next_corr();
        let id = self.id;
        let Some(Role::Follower(fs)) = self.roles.get_mut(tp) else {
            return;
        };
        let Some(leader) = fs.leader else { return };
        if fs.inflight || leader == id {
            return;
        }
        let Some(&leader_pid) = self.peers.get(&leader) else {
            return;
        };
        fs.inflight = true;
        let fallback_epoch = fs.epoch;
        let log = Self::log_mut(&mut self.logs, &self.cfg, tp);
        // Report the epoch of our log tail, not the announced leader epoch:
        // that is what lets the leader detect a divergent suffix appended
        // while we were isolated and tell us to truncate it.
        let epoch = log.last_epoch().unwrap_or(fallback_epoch);
        let log_end = log.log_end();
        ctx.send(
            leader_pid,
            ReplicaRpc::Fetch {
                corr,
                tp: tp.clone(),
                from: id,
                log_end,
                epoch,
            },
        );
    }

    fn replica_tick(&mut self, ctx: &mut Ctx<'_>) {
        let tps: Vec<TopicPartition> = self
            .roles
            .iter()
            .filter(|(_, r)| matches!(r, Role::Follower(_)))
            .map(|(tp, _)| tp.clone())
            .collect();
        for tp in tps {
            // A follower that cannot reach its leader keeps an RPC inflight
            // forever (the response was dropped). Reset staleness by allowing
            // a new fetch each tick; duplicate responses are idempotent
            // because appends start from our log end.
            if let Some(Role::Follower(fs)) = self.roles.get_mut(&tp) {
                fs.inflight = false;
            }
            self.replica_fetch_one(ctx, &tp);
        }
    }

    fn isr_tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let lag_max = self.cfg.replica_lag_max;
        let mode = self.mode;
        let id = self.id;
        let mut shrinks: Vec<(TopicPartition, LeaderEpoch, Vec<BrokerId>)> = Vec::new();
        for (tp, role) in self.roles.iter_mut() {
            let Role::Leader(ls) = role else { continue };
            let lagging: Vec<BrokerId> = ls
                .isr
                .iter()
                .copied()
                .filter(|b| {
                    *b != id
                        && now.saturating_since(
                            ls.caught_up_at.get(b).copied().unwrap_or(SimTime::ZERO),
                        ) > lag_max
                })
                .collect();
            if lagging.is_empty() {
                continue;
            }
            let new_isr: Vec<BrokerId> = ls
                .isr
                .iter()
                .copied()
                .filter(|b| !lagging.contains(b))
                .collect();
            if mode == CoordinationMode::Zk {
                // ZooKeeper-era behavior: apply locally first — this is what
                // lets an isolated leader advance its HW over unreplicated
                // records (the silent-loss precondition).
                ls.isr = new_isr.clone();
            }
            shrinks.push((tp.clone(), ls.epoch, new_isr));
        }
        for (tp, epoch, new_isr) in shrinks {
            self.stats.isr_shrinks += 1;
            self.send_controllers(
                ctx,
                ControllerRpc::AlterIsr {
                    tp: tp.clone(),
                    from: id,
                    epoch,
                    new_isr,
                },
            );
            if self.mode == CoordinationMode::Zk {
                self.advance_hw(ctx, &tp);
            }
        }
    }

    /// Total bytes compaction/retention reclaimed so far (including the
    /// pre-crash total recovered from the meta blob).
    pub fn reclaimed_bytes(&self) -> u64 {
        self.reclaimed_baseline
            + self
                .logs
                .values()
                .map(PartitionLog::reclaimed_bytes)
                .sum::<u64>()
    }

    /// The durable meta blob describing the broker's current state: per-
    /// partition high watermarks, log starts, and segment manifests plus
    /// group offsets and the cumulative cleaning savings.
    fn build_meta(&self) -> BrokerLogMeta {
        let partitions = self
            .logs
            .iter()
            .map(|(tp, log)| {
                let bases = log
                    .segments()
                    .iter()
                    .filter(|s| !s.is_empty())
                    .map(|s| s.base_offset().value())
                    .collect();
                (tp.clone(), log.high_watermark(), log.log_start(), bases)
            })
            .collect();
        let group_offsets = self
            .group_offsets
            .iter()
            .map(|((g, tp), off)| (g.clone(), tp.clone(), *off))
            .collect();
        let txns = self
            .txns
            .iter()
            .filter(|(_, t)| !t.ongoing.is_empty() || !t.aborted.is_empty())
            .map(|(tp, t)| {
                let ongoing = t
                    .ongoing
                    .iter()
                    .map(|((p, x), (first, end, e))| (*p, *x, *first, *end, *e))
                    .collect();
                (tp.clone(), ongoing, t.aborted.clone())
            })
            .collect();
        BrokerLogMeta {
            partitions,
            group_offsets,
            reclaimed_bytes: self.reclaimed_bytes(),
            txns,
        }
    }

    /// One log-cleaner pass: retention first (whole segments are cheapest),
    /// then keyed compaction, over every hosted partition. Dead segment
    /// blobs are deleted through the backend and the manifest is re-flushed
    /// so a post-clean restart replays only live data.
    fn run_log_cleaner(&mut self, ctx: &mut Ctx<'_>) {
        if self.recovering || !self.cfg.cleaning_enabled() {
            return;
        }
        let now = ctx.now();
        let mut total = CleanOutcome::default();
        let mut dead_keys: Vec<String> = Vec::new();
        for (tp, log) in self.logs.iter_mut() {
            let retained = log.apply_retention(
                now,
                self.cfg.log_retention_age,
                self.cfg.log_retention_bytes,
            );
            self.stats.segments_retired += retained.dropped_segment_bases.len() as u64;
            self.stats.retired_bytes += retained.reclaimed_bytes;
            let compacted = if self.cfg.log_compaction {
                log.compact()
            } else {
                CleanOutcome::default()
            };
            self.stats.records_compacted += compacted.removed_records;
            self.stats.compacted_bytes += compacted.reclaimed_bytes;
            if let Some(d) = &self.durability {
                for base in retained
                    .dropped_segment_bases
                    .iter()
                    .chain(&compacted.dropped_segment_bases)
                {
                    dead_keys.push(d.segment_key(tp, *base));
                }
            }
            total.merge(retained);
            total.merge(compacted);
        }
        // Aborted ranges wholly below the advanced log starts reference
        // vanished records; drop them so the list (and the meta blob) stays
        // bounded by live history.
        for (tp, ptx) in self.txns.iter_mut() {
            if let Some(log) = self.logs.get(tp) {
                ptx.prune_aborted_below(log.log_start().value());
            }
        }
        if total.is_noop() {
            return;
        }
        self.stats.cleaner_runs += 1;
        self.retained_bytes = self.logs.values().map(|l| l.retained_bytes() as u64).sum();
        self.update_mem();
        if let Some(d) = &mut self.durability {
            // Stage the dead blobs; they are deleted only after the flush
            // that persists the cleaned manifest completes, so a crash in
            // between still recovers a manifest whose blobs all exist.
            d.pending_deletes.extend(dead_keys);
            d.dirty = true;
        }
        self.flush_logs(ctx);
        ctx.trace_with("broker", || {
            format!(
                "{} cleaned {} records ({} B) from its logs",
                self.name, total.removed_records, total.reclaimed_bytes
            )
        });
    }

    fn arm_retry(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(d) = self.durability.as_mut() {
            if !d.retry_armed && !d.pending.is_empty() {
                d.retry_armed = true;
                ctx.set_timer(DURABILITY_RETRY_INTERVAL, tags::DURABILITY_RETRY);
            }
        }
    }

    /// Persists every dirty segment plus the meta blob through the attached
    /// backend. Overlapping calls coalesce: a flush requested while one is
    /// in flight runs right after it completes.
    fn flush_logs(&mut self, ctx: &mut Ctx<'_>) {
        if self.recovering || self.durability.is_none() {
            return;
        }
        {
            let d = self.durability.as_mut().expect("checked above");
            if d.flush_inflight {
                d.flush_again = true;
                return;
            }
            if !d.dirty && !self.logs.values().any(PartitionLog::has_dirty_segments) {
                return;
            }
            d.dirty = false;
        }
        let meta_bytes = self.build_meta().encode();
        let ends: BTreeMap<TopicPartition, Offset> = self
            .logs
            .iter()
            .map(|(tp, l)| (tp.clone(), l.log_end()))
            .collect();
        let mut seg_blobs: Vec<(TopicPartition, u64, Vec<u8>)> = Vec::new();
        for (tp, log) in self.logs.iter_mut() {
            for (base, bytes) in log.take_dirty_segments() {
                seg_blobs.push((tp.clone(), base, bytes));
            }
        }
        let d = self.durability.as_mut().expect("checked above");
        let mut pending: Vec<(u64, DurabilityIo)> = Vec::new();
        let mut flushed_bytes = 0u64;
        for (tp, base, bytes) in seg_blobs {
            let key = d.segment_key(&tp, base);
            flushed_bytes += bytes.len() as u64;
            match d.backend.persist(ctx, &key, bytes.clone()) {
                LogPersist::Done => {}
                LogPersist::Pending(corr) => {
                    pending.push((corr, DurabilityIo::SegmentPut { key, bytes }));
                }
            }
        }
        let mkey = d.meta_key();
        match d.backend.persist(ctx, &mkey, meta_bytes.clone()) {
            LogPersist::Done => {}
            LogPersist::Pending(corr) => {
                pending.push((
                    corr,
                    DurabilityIo::MetaPut {
                        key: mkey,
                        bytes: meta_bytes,
                    },
                ));
            }
        }
        self.stats.log_flushed_bytes += flushed_bytes;
        if pending.is_empty() {
            self.complete_flush(ctx, ends);
        } else {
            d.flush_inflight = true;
            d.flush_ends = ends;
            d.pending.extend(pending);
            self.arm_retry(ctx);
        }
    }

    /// A flush (all its store writes) became durable: advance the durable
    /// ends, release produce acks that were waiting, and flush again if
    /// mutations piled up meanwhile.
    fn complete_flush(&mut self, ctx: &mut Ctx<'_>, ends: BTreeMap<TopicPartition, Offset>) {
        self.stats.log_flushes += 1;
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        d.flush_inflight = false;
        let again = std::mem::take(&mut d.flush_again) || d.dirty;
        if !again {
            // No newer mutations are waiting, so the manifest that just
            // became durable reflects the cleaned state: the blobs it no
            // longer references are safe to drop. (When `again` is set the
            // completed flush may predate the clean — a coalesced flush was
            // in flight when the cleaner ran — so the deletes wait for the
            // follow-up flush's completion.)
            for key in std::mem::take(&mut d.pending_deletes) {
                d.backend.remove(ctx, &key);
            }
        }
        for (tp, end) in ends {
            let e = d.durable_end.entry(tp).or_insert(Offset::ZERO);
            *e = (*e).max(end);
        }
        let led: Vec<TopicPartition> = self
            .roles
            .iter()
            .filter(|(_, r)| matches!(r, Role::Leader(_)))
            .map(|(tp, _)| tp.clone())
            .collect();
        for tp in led {
            self.advance_hw(ctx, &tp);
        }
        if again || self.logs.values().any(PartitionLog::has_dirty_segments) {
            self.flush_logs(ctx);
        }
    }

    /// Starts the restart replay: read the meta blob, then every live
    /// segment it lists. Client and replica requests are dropped until
    /// replay completes.
    fn begin_recovery(&mut self, ctx: &mut Ctx<'_>) {
        self.recovering = true;
        self.recovery = Some(BrokerRecoveryInfo::new(ctx.now()));
        self.tele
            .trace_begin(ctx.now(), &self.name, "recovery:replay", "recovery");
        let d = self
            .durability
            .as_mut()
            .expect("recovery requires a log backend");
        let key = d.meta_key();
        match d.backend.recover(ctx, &key) {
            LogRecover::Done(value) => self.on_meta_recovered(ctx, value),
            LogRecover::Pending(corr) => {
                d.pending.insert(corr, DurabilityIo::MetaGet { key });
                self.arm_retry(ctx);
            }
        }
    }

    fn on_meta_recovered(&mut self, ctx: &mut Ctx<'_>, value: Option<Vec<u8>>) {
        let meta = value.as_deref().and_then(BrokerLogMeta::decode);
        let Some(meta) = meta else {
            // Cold start (or unreadable blob): nothing to replay.
            self.finish_recovery(ctx);
            return;
        };
        let d = self.durability.as_mut().expect("recovering");
        let mut gets: Vec<(String, TopicPartition)> = Vec::new();
        for (tp, _hw, _start, bases) in &meta.partitions {
            for base in bases {
                gets.push((d.segment_key(tp, *base), tp.clone()));
            }
        }
        d.staged_meta = Some(meta);
        let mut done_now: Vec<(TopicPartition, Option<Vec<u8>>)> = Vec::new();
        for (key, tp) in gets {
            match d.backend.recover(ctx, &key) {
                LogRecover::Done(v) => done_now.push((tp, v)),
                LogRecover::Pending(corr) => {
                    d.pending.insert(corr, DurabilityIo::SegmentGet { key, tp });
                }
            }
        }
        for (tp, v) in done_now {
            self.stage_segment(tp, v);
        }
        self.arm_retry(ctx);
        self.maybe_finish_recovery(ctx);
    }

    fn stage_segment(&mut self, tp: TopicPartition, value: Option<Vec<u8>>) {
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        if let Some(bytes) = value {
            if let Some(r) = self.recovery.as_mut() {
                r.replayed_bytes += bytes.len() as u64;
            }
            if let Some(seg) = LogSegment::decode(&bytes) {
                d.staged.entry(tp).or_default().push(seg);
            }
        }
    }

    fn maybe_finish_recovery(&mut self, ctx: &mut Ctx<'_>) {
        let Some(d) = &self.durability else {
            return;
        };
        let reads_left = d.pending.values().any(|io| {
            matches!(
                io,
                DurabilityIo::MetaGet { .. } | DurabilityIo::SegmentGet { .. }
            )
        });
        if !reads_left {
            self.finish_recovery(ctx);
        }
    }

    /// Rebuilds the partition logs and group offsets from the staged
    /// segments + meta, then resumes serving.
    fn finish_recovery(&mut self, ctx: &mut Ctx<'_>) {
        let cfg_max = self.cfg.log_segment_max_records;
        if let Some(d) = self.durability.as_mut() {
            if let Some(meta) = d.staged_meta.take() {
                let mut staged = std::mem::take(&mut d.staged);
                self.reclaimed_baseline = meta.reclaimed_bytes;
                if let Some(r) = self.recovery.as_mut() {
                    r.replay_saved_bytes = meta.reclaimed_bytes;
                }
                for (tp, hw, start, bases) in meta.partitions {
                    let segs = staged.remove(&tp).unwrap_or_default();
                    let log =
                        PartitionLog::from_recovered_segments(segs, hw, start, &bases, cfg_max);
                    if let Some(r) = self.recovery.as_mut() {
                        r.replayed_records += log.len() as u64;
                        r.replayed_segments +=
                            log.segments().iter().filter(|s| !s.is_empty()).count() as u64;
                    }
                    d.durable_end.insert(tp.clone(), log.log_end());
                    self.retained_bytes += log.retained_bytes() as u64;
                    self.logs.insert(tp, log);
                }
                for (group, tp, off) in meta.group_offsets {
                    self.group_offsets.insert((group, tp), off);
                }
                for (tp, ongoing, aborted) in meta.txns {
                    let ptx = self.txns.entry(tp).or_default();
                    for (p, x, first, end, e) in ongoing {
                        ptx.ongoing.insert((p, x), (first, end, e));
                    }
                    ptx.aborted = aborted;
                }
            }
        }
        // Rebuild idempotent-producer dedup state from the replayed logs so
        // batches retried across the bounce are not appended twice.
        let tps: Vec<TopicPartition> = self.logs.keys().cloned().collect();
        for tp in &tps {
            self.rebuild_producer_seq(tp);
        }
        self.update_mem();
        self.recovering = false;
        if let Some(r) = self.recovery.as_mut() {
            r.recovered_at = Some(ctx.now());
        }
        self.tele
            .trace_end(ctx.now(), &self.name, "recovery:replay", "recovery");
        ctx.trace_with("broker", || {
            format!("{} replayed its durable log", self.name)
        });
    }

    fn handle_store(&mut self, ctx: &mut Ctx<'_>, rpc: StoreRpc) {
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        match rpc {
            StoreRpc::PutAck { corr } => {
                // Only complete an entry of the matching kind: a delayed
                // PutAck from a previous broker incarnation must not cancel
                // a recovery read that reused the correlation id.
                let is_put = matches!(
                    d.pending.get(&corr),
                    Some(DurabilityIo::SegmentPut { .. } | DurabilityIo::MetaPut { .. })
                );
                if !is_put {
                    return; // stale or superseded (retried) write
                }
                d.pending.remove(&corr);
                let writes_left = d.pending.values().any(|io| {
                    matches!(
                        io,
                        DurabilityIo::SegmentPut { .. } | DurabilityIo::MetaPut { .. }
                    )
                });
                if d.flush_inflight && !writes_left {
                    let ends = std::mem::take(&mut d.flush_ends);
                    self.complete_flush(ctx, ends);
                }
            }
            StoreRpc::GetResult { corr, value } => {
                let is_get = matches!(
                    d.pending.get(&corr),
                    Some(DurabilityIo::MetaGet { .. } | DurabilityIo::SegmentGet { .. })
                );
                if !is_get {
                    return; // stale or superseded (retried) read
                }
                let io = d.pending.remove(&corr).expect("just matched");
                match io {
                    DurabilityIo::MetaGet { .. } => self.on_meta_recovered(ctx, value),
                    DurabilityIo::SegmentGet { tp, .. } => {
                        self.stage_segment(tp, value);
                        self.maybe_finish_recovery(ctx);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    /// Re-issues every outstanding durability RPC (the request or its
    /// response was lost in the network) under fresh correlation ids.
    fn retry_durability(&mut self, ctx: &mut Ctx<'_>) {
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        d.retry_armed = false;
        if d.pending.is_empty() {
            return;
        }
        // The store endpoint may be the reason nothing answered: a backend
        // over a replicated store group rotates to the next member first.
        d.backend.rotate_endpoint();
        let items: Vec<DurabilityIo> = std::mem::take(&mut d.pending).into_values().collect();
        for io in items {
            match io {
                DurabilityIo::SegmentPut { key, bytes } => {
                    if let LogPersist::Pending(corr) = d.backend.persist(ctx, &key, bytes.clone()) {
                        d.pending
                            .insert(corr, DurabilityIo::SegmentPut { key, bytes });
                    }
                }
                DurabilityIo::MetaPut { key, bytes } => {
                    if let LogPersist::Pending(corr) = d.backend.persist(ctx, &key, bytes.clone()) {
                        d.pending.insert(corr, DurabilityIo::MetaPut { key, bytes });
                    }
                }
                DurabilityIo::MetaGet { key } => {
                    if let LogRecover::Pending(corr) = d.backend.recover(ctx, &key) {
                        d.pending.insert(corr, DurabilityIo::MetaGet { key });
                    }
                }
                DurabilityIo::SegmentGet { key, tp } => {
                    if let LogRecover::Pending(corr) = d.backend.recover(ctx, &key) {
                        d.pending.insert(corr, DurabilityIo::SegmentGet { key, tp });
                    }
                }
            }
        }
        self.arm_retry(ctx);
    }

    fn handle_controller(&mut self, ctx: &mut Ctx<'_>, rpc: ControllerRpc) {
        match rpc {
            ControllerRpc::HeartbeatAck { .. } => {
                self.last_hb_ack = ctx.now();
            }
            ControllerRpc::MetadataUpdate {
                records,
                metadata_version,
            } => {
                self.metadata.apply(&records, metadata_version);
            }
            ControllerRpc::LeaderAndIsr {
                tp,
                leader,
                isr,
                epoch,
                replicas,
            } => {
                let known = self.known_epoch.get(&tp).copied().unwrap_or_default();
                if epoch < known {
                    return; // stale instruction
                }
                self.known_epoch.insert(tp.clone(), epoch);
                let now = ctx.now();
                let same_epoch_update = epoch == known;
                if leader == Some(self.id) {
                    match self.roles.get_mut(&tp) {
                        Some(Role::Leader(ls)) if same_epoch_update => {
                            // ISR confirmation/adjustment from the controller.
                            ls.isr = isr;
                            self.advance_hw(ctx, &tp);
                        }
                        _ => {
                            let mut caught_up_at = HashMap::new();
                            for b in &isr {
                                caught_up_at.insert(*b, now);
                            }
                            self.roles.insert(
                                tp.clone(),
                                Role::Leader(LeaderState {
                                    epoch,
                                    isr,
                                    replicas,
                                    follower_end: HashMap::new(),
                                    caught_up_at,
                                    pending: Vec::new(),
                                }),
                            );
                            Self::log_mut(&mut self.logs, &self.cfg, &tp);
                            // Promotion: fold the dedup stamps mirrored from
                            // the old leader into the live filter, so the new
                            // reign rejects exactly the duplicates the old
                            // one would have. (The mirrored transaction
                            // ranges are already installed in `txns` and
                            // carry over as-is.)
                            let mirrored: Vec<(u32, (u32, u64))> = self
                                .mirrored_seqs
                                .iter()
                                .filter(|((t, _), _)| *t == tp)
                                .map(|((_, p), stamp)| (*p, *stamp))
                                .collect();
                            for (p, stamp) in mirrored {
                                let entry = self
                                    .last_producer_seq
                                    .entry((tp.clone(), p))
                                    .or_insert(stamp);
                                *entry = (*entry).max(stamp);
                            }
                            self.mirrored_seqs.retain(|(t, _), _| *t != tp);
                            self.leadership_events.push((now, tp.clone(), true));
                            ctx.trace_with("broker", || {
                                format!("{} became leader of {tp}", self.name)
                            });
                            // A recovered log may carry a watermark below its
                            // end; as fresh leader, re-evaluate immediately.
                            self.advance_hw(ctx, &tp);
                        }
                    }
                } else if replicas.contains(&self.id) {
                    let was_leader = matches!(self.roles.get(&tp), Some(Role::Leader(_)));
                    if was_leader {
                        self.fail_pending(ctx, &tp, ErrorCode::NotLeader);
                        self.leadership_events.push((now, tp.clone(), false));
                        ctx.trace_with("broker", || {
                            format!("{} stepped down from {tp}", self.name)
                        });
                    }
                    self.roles.insert(
                        tp.clone(),
                        Role::Follower(FollowerState {
                            leader,
                            epoch,
                            inflight: false,
                        }),
                    );
                    Self::log_mut(&mut self.logs, &self.cfg, &tp);
                } else {
                    self.roles.remove(&tp);
                }
            }
            // Requests brokers never receive.
            ControllerRpc::Heartbeat { .. } | ControllerRpc::AlterIsr { .. } => {}
        }
    }
}

impl Process for Broker {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.last_hb_ack = ctx.now();
        if let Some(r) = self.recovery.as_mut() {
            // A respawn without a log backend still records restart time.
            r.restarted_at = ctx.now();
        }
        ctx.exec(self.cfg.startup_cpu, tags::STARTUP_DONE);
        ctx.set_timer(self.cfg.replica_fetch_interval, tags::REPLICA_TICK);
        ctx.set_timer(self.cfg.isr_check_interval, tags::ISR_TICK);
        let hb = ControllerRpc::Heartbeat {
            broker: self.id,
            incarnation: self.incarnation,
        };
        self.send_controllers(ctx, hb);
        ctx.set_timer(self.cfg.heartbeat_interval, tags::HEARTBEAT_TICK);
        ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
        if self.durability.is_some() {
            ctx.set_timer(self.cfg.log_flush_interval, tags::LOG_FLUSH_TICK);
            if self.recover {
                self.begin_recovery(ctx);
            }
        }
        if self.cfg.cleaning_enabled() {
            ctx.set_timer(self.cfg.log_cleanup_interval, tags::LOG_CLEANUP_TICK);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
        let msg = match downcast::<StoreRpc>(msg) {
            Ok(rpc) => return self.handle_store(ctx, *rpc),
            Err(m) => m,
        };
        let msg = match downcast::<ClientRpc>(msg) {
            Ok(rpc) => {
                if self.recovering {
                    // Still replaying the durable log: the process is not
                    // serving yet, exactly like a booting broker with no
                    // listener. Client timeouts and retries cover the gap.
                    self.stats.dropped_recovering += 1;
                    return;
                }
                return self.handle_client(ctx, from, *rpc);
            }
            Err(m) => m,
        };
        let msg = match downcast::<ReplicaRpc>(msg) {
            Ok(rpc) => {
                if self.recovering {
                    self.stats.dropped_recovering += 1;
                    return;
                }
                return self.handle_replica(ctx, from, *rpc);
            }
            Err(m) => m,
        };
        if let Ok(rpc) = downcast::<ControllerRpc>(msg) {
            self.handle_controller(ctx, *rpc);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            tags::REPLICA_TICK => {
                if !self.recovering {
                    self.replica_tick(ctx);
                }
                ctx.set_timer(self.cfg.replica_fetch_interval, tags::REPLICA_TICK);
            }
            tags::ISR_TICK => {
                if !self.recovering {
                    self.isr_tick(ctx);
                }
                ctx.set_timer(self.cfg.isr_check_interval, tags::ISR_TICK);
            }
            tags::HEARTBEAT_TICK => {
                let hb = ControllerRpc::Heartbeat {
                    broker: self.id,
                    incarnation: self.incarnation,
                };
                self.send_controllers(ctx, hb);
                // Consumer-group session sweep rides the broker heartbeat:
                // members silent past the group session timeout are evicted
                // and their partitions reassigned to the survivors.
                let now = ctx.now();
                let metadata = &self.metadata;
                let partitions_of = |t: &str| metadata.partitions_of(t);
                self.groups
                    .sweep_sessions(now, self.cfg.group_session_timeout, &partitions_of);
                ctx.set_timer(self.cfg.heartbeat_interval, tags::HEARTBEAT_TICK);
            }
            tags::LOG_FLUSH_TICK => {
                self.flush_logs(ctx);
                ctx.set_timer(self.cfg.log_flush_interval, tags::LOG_FLUSH_TICK);
            }
            tags::DURABILITY_RETRY => {
                self.retry_durability(ctx);
            }
            tags::LOG_CLEANUP_TICK => {
                self.run_log_cleaner(ctx);
                ctx.set_timer(self.cfg.log_cleanup_interval, tags::LOG_CLEANUP_TICK);
            }
            tags::BACKGROUND_TICK => {
                if !self.cfg.background_cpu.is_zero() {
                    ctx.exec(self.cfg.background_cpu, tags::BACKGROUND_DONE);
                }
                ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag >= tags::CPU_BASE {
            if let Some(out) = self.pending_out.remove(&tag) {
                for (to, msg) in out {
                    match msg {
                        OutMsg::Client(rpc) => ctx.send(to, rpc),
                        OutMsg::Replica(rpc) => ctx.send(to, rpc),
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("id", &self.id)
            .field("partitions", &self.roles.len())
            .field("stats", &self.stats)
            .finish()
    }
}
