//! The consumer client: subscriptions, fetch loops, and CPU-gated delivery.
//!
//! [`ConsumerClient`] is embeddable (the stream processing engine uses one
//! to ingest its source topics); [`ConsumerProcess`] pairs it with a
//! [`DataSink`] to form stream2gym's standalone consumer stubs.
//!
//! Each fetched batch is charged `cpu_per_record × n` on the host CPU before
//! the next fetch for that partition is issued. That per-consumer gating is
//! what makes aggregate transfer throughput scale with consumer count only
//! up to the host's core count and then plateau — the Ichinose et al.
//! reproduction in Fig. 7a.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};

use s2g_proto::{ClientRpc, CorrelationId, ErrorCode, Offset, Record, RecordBatch, TopicPartition};
use s2g_sim::{downcast, Ctx, Message, Process, ProcessId, SimDuration, SimTime, TimerToken};
use s2g_telemetry::Telemetry;

use crate::config::ConsumerConfig;
use crate::metadata::MetadataCache;

/// Tag namespace base for consumer-owned timers and CPU work.
pub const CONSUMER_TAGS: u64 = 1 << 41;
/// End of the consumer tag namespace (exclusive).
pub const CONSUMER_TAGS_END: u64 = (1 << 41) + (1 << 40);

mod off {
    pub const POLL: u64 = 1;
    pub const META_TIMEOUT: u64 = 2;
    pub const AUTO_COMMIT: u64 = 3;
    pub const OFFSET_FETCH_TIMEOUT: u64 = 4;
    pub const GROUP_HEARTBEAT: u64 = 5;
    pub const JOIN_TIMEOUT: u64 = 6;
    pub const REQ_TIMEOUT_BASE: u64 = 1_000_000;
    pub const CPU_DELIVER_BASE: u64 = 2_000_000_000;
}

/// Where consumed records go (stream2gym's `consType` stubs implement this).
pub trait DataSink: Any {
    /// Called once per delivered batch, after the deserialization CPU cost
    /// has been paid.
    fn on_records(&mut self, now: SimTime, tp: &TopicPartition, records: &[Record]);
}

/// A sink that counts and remembers records — the "STANDARD" stub.
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// Every delivered record with its delivery time.
    pub deliveries: Vec<(SimTime, TopicPartition, Record)>,
}

impl DataSink for CollectingSink {
    fn on_records(&mut self, now: SimTime, tp: &TopicPartition, records: &[Record]) {
        for r in records {
            self.deliveries.push((now, tp.clone(), r.clone()));
        }
    }
}

/// Consumer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsumerStats {
    /// Fetch requests issued.
    pub fetches: u64,
    /// Records delivered to the sink.
    pub records: u64,
    /// Fetches that timed out.
    pub timeouts: u64,
    /// Offset resets after `OffsetOutOfRange` (evidence of truncation!).
    pub offset_resets: u64,
    /// Offset commits sent to the group coordinator.
    pub offset_commits: u64,
    /// Partitions whose position was resumed from a broker-side committed
    /// offset at startup — the recovery-worked signal.
    pub resumed_partitions: u64,
    /// Successful group joins (membership protocol only).
    pub group_joins: u64,
    /// Rebalances observed: heartbeats or commits bounced with a
    /// rejoin-required error (membership protocol only).
    pub rebalances: u64,
}

#[derive(Debug)]
struct InflightFetch {
    tp: TopicPartition,
    timer: TimerToken,
}

/// The embeddable consumer state machine.
pub struct ConsumerClient {
    cfg: ConsumerConfig,
    bootstrap: ProcessId,
    /// Every broker endpoint, in broker-id order — the rotation list used
    /// when the current bootstrap stops answering (broker crash/restart).
    bootstrap_candidates: Vec<ProcessId>,
    brokers: BTreeMap<s2g_proto::BrokerId, ProcessId>,
    subscriptions: Vec<String>,
    metadata: MetadataCache,
    meta_versions: u64,
    meta_inflight: Option<(CorrelationId, TimerToken)>,
    offsets: BTreeMap<TopicPartition, Offset>,
    inflight: HashMap<u64, InflightFetch>,
    fetching: BTreeMap<TopicPartition, bool>,
    /// Batches whose delivery CPU is in flight, by tag. Holding the
    /// refcounted [`RecordBatch`] (not a rebuilt `Vec`) means the payloads
    /// fetched from the broker are never copied on the way to the sink.
    pending_delivery: HashMap<u64, (TopicPartition, RecordBatch, Offset)>,
    next_corr: u64,
    next_deliver_tag: u64,
    stats: ConsumerStats,
    request_timeout: SimDuration,
    /// Offset-fetch state for group members: fetching is held back until the
    /// committed positions arrive, so the first fetch resumes at the commit
    /// rather than at zero.
    offsets_restored: bool,
    offset_fetch_inflight: Option<(CorrelationId, TimerToken)>,
    /// Static partition assignment `(instance, parallelism)`: only
    /// partitions whose contiguous-range owner is `instance` are fetched.
    /// The SPE's parallel stage instances use this — keyed state cannot
    /// migrate on a dynamic rebalance, so their partition split is fixed by
    /// the key-group formula instead of by the membership protocol.
    static_assignment: Option<(u32, u32)>,
    /// Membership-protocol state (when `cfg.group_membership` is on).
    membership: Option<Membership>,
    /// Telemetry sink; records nothing until a scope is attached.
    tele: Telemetry,
    /// Scope metrics are recorded under (`consumer-0`, `job/stage/i`, ...);
    /// empty means telemetry is detached.
    tele_scope: String,
}

/// Client-side state of the group-membership protocol.
#[derive(Debug)]
struct Membership {
    member: String,
    generation: u64,
    assigned: Vec<TopicPartition>,
    joined: bool,
    join_inflight: Option<(CorrelationId, TimerToken)>,
    hb_inflight: Option<CorrelationId>,
}

impl ConsumerClient {
    /// Creates a client subscribed to `topics`.
    pub fn new(
        cfg: ConsumerConfig,
        bootstrap: ProcessId,
        brokers: BTreeMap<s2g_proto::BrokerId, ProcessId>,
        topics: Vec<String>,
    ) -> Self {
        ConsumerClient {
            cfg,
            bootstrap,
            bootstrap_candidates: brokers.values().copied().collect(),
            brokers,
            subscriptions: topics,
            metadata: MetadataCache::new(),
            meta_versions: 0,
            meta_inflight: None,
            offsets: BTreeMap::new(),
            inflight: HashMap::new(),
            fetching: BTreeMap::new(),
            pending_delivery: HashMap::new(),
            next_corr: 1,
            next_deliver_tag: 0,
            stats: ConsumerStats::default(),
            request_timeout: SimDuration::from_secs(2),
            offsets_restored: false,
            offset_fetch_inflight: None,
            static_assignment: None,
            membership: None,
            tele: Telemetry::new(),
            tele_scope: String::new(),
        }
    }

    /// Attaches the run-wide telemetry sink. The client records delivered
    /// record counts and a per-partition `lag/<topic>-<part>` gauge (the
    /// broker high watermark minus the local position, from every fetch
    /// response) under `scope`.
    pub fn set_telemetry(&mut self, tele: Telemetry, scope: impl Into<String>) {
        self.tele = tele;
        self.tele_scope = scope.into();
    }

    /// Restricts fetching to the partitions instance `instance` of
    /// `parallelism` owns under the contiguous-range formula
    /// ([`s2g_proto::owner_of_group`]) — the static split parallel SPE
    /// stage instances use.
    pub fn set_static_assignment(&mut self, instance: u32, parallelism: u32) {
        assert!(parallelism > 0, "parallelism must be positive");
        assert!(instance < parallelism, "instance out of range");
        self.static_assignment = Some((instance, parallelism));
    }

    /// True when this client fetches `tp` given the partition count of its
    /// topic: statically assigned clients own a contiguous range,
    /// membership-protocol clients own what the coordinator assigned, and
    /// everyone else owns everything.
    fn owns(&self, tp: &TopicPartition, n_parts: usize) -> bool {
        if let Some((instance, parallelism)) = self.static_assignment {
            if n_parts == 0 {
                return false;
            }
            return s2g_proto::owner_of_group(tp.partition, parallelism, n_parts as u32)
                == instance;
        }
        match &self.membership {
            Some(m) => m.joined && m.assigned.contains(tp),
            None => true,
        }
    }

    /// The broker coordinating this client's group: every member hashes the
    /// group name with the shared FNV-1a helper, so they all pick the same
    /// one without any lookup round trip.
    fn coordinator(&self) -> ProcessId {
        let group = self.cfg.group.as_deref().unwrap_or("");
        if self.bootstrap_candidates.is_empty() {
            return self.bootstrap;
        }
        let idx =
            (s2g_proto::fnv1a(group.as_bytes()) % self.bootstrap_candidates.len() as u64) as usize;
        self.bootstrap_candidates[idx]
    }

    fn send_join(&mut self, ctx: &mut Ctx<'_>) {
        let Some(group) = self.cfg.group.clone() else {
            return;
        };
        if self
            .membership
            .as_ref()
            .is_none_or(|m| m.join_inflight.is_some())
        {
            return;
        }
        let corr = self.next_corr();
        let timer = ctx.set_timer(self.request_timeout, CONSUMER_TAGS + off::JOIN_TIMEOUT);
        let coordinator = self.coordinator();
        let m = self.membership.as_mut().expect("checked above");
        m.join_inflight = Some((corr, timer));
        let member = m.member.clone();
        let topics = self.subscriptions.clone();
        ctx.send(
            coordinator,
            ClientRpc::JoinGroup {
                corr,
                group,
                member,
                topics,
            },
        );
    }

    fn send_group_heartbeat(&mut self, ctx: &mut Ctx<'_>) {
        let Some(group) = self.cfg.group.clone() else {
            return;
        };
        let coordinator = self.coordinator();
        let corr = self.next_corr();
        let Some(m) = self.membership.as_mut() else {
            return;
        };
        if !m.joined {
            return;
        }
        m.hb_inflight = Some(corr);
        let member = m.member.clone();
        let generation = m.generation;
        ctx.send(
            coordinator,
            ClientRpc::GroupHeartbeat {
                corr,
                group,
                member,
                generation,
            },
        );
    }

    /// Drops membership back to "must rejoin": the next poll (and the
    /// armed join timer) re-runs the join, picking up the new generation
    /// and assignment.
    fn mark_rejoin(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.rebalances += 1;
        if let Some(m) = self.membership.as_mut() {
            m.joined = false;
        }
        self.send_join(ctx);
    }

    /// Counters.
    pub fn stats(&self) -> ConsumerStats {
        self.stats
    }

    /// Current fetch position for a partition.
    pub fn position(&self, tp: &TopicPartition) -> Offset {
        self.offsets.get(tp).copied().unwrap_or(Offset::ZERO)
    }

    /// Every known partition position, in deterministic order — the offsets
    /// half of a checkpoint snapshot.
    pub fn positions(&self) -> Vec<(TopicPartition, Offset)> {
        self.offsets
            .iter()
            .map(|(tp, off)| (tp.clone(), *off))
            .collect()
    }

    /// The consumer group, when configured.
    pub fn group(&self) -> Option<&str> {
        self.cfg.group.as_deref()
    }

    /// The partitions the coordinator currently assigns this member (empty
    /// without the membership protocol or before the first join).
    pub fn group_assignment(&self) -> Vec<TopicPartition> {
        self.membership
            .as_ref()
            .filter(|m| m.joined)
            .map(|m| m.assigned.clone())
            .unwrap_or_default()
    }

    /// The group generation this member last joined at (0 before joining).
    pub fn group_generation(&self) -> u64 {
        self.membership.as_ref().map_or(0, |m| m.generation)
    }

    /// Kicks off metadata discovery and the poll loop. Call from `on_start`.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.group.is_some() && self.cfg.group_membership && self.membership.is_none() {
            let member = if self.cfg.group_member_id.is_empty() {
                format!("m{}", ctx.self_id().0)
            } else {
                self.cfg.group_member_id.clone()
            };
            self.membership = Some(Membership {
                member,
                generation: 0,
                assigned: Vec::new(),
                joined: false,
                join_inflight: None,
                hb_inflight: None,
            });
            self.send_join(ctx);
            ctx.set_timer(
                self.cfg.group_heartbeat_interval,
                CONSUMER_TAGS + off::GROUP_HEARTBEAT,
            );
        }
        self.request_metadata(ctx);
        ctx.set_timer(self.cfg.poll_interval, CONSUMER_TAGS + off::POLL);
        if self.cfg.group.is_some() && !self.cfg.auto_commit_interval.is_zero() {
            ctx.set_timer(
                self.cfg.auto_commit_interval,
                CONSUMER_TAGS + off::AUTO_COMMIT,
            );
        }
    }

    /// Seeds partition positions from an external source of truth (an
    /// exactly-once checkpoint snapshot) and skips the broker offset fetch:
    /// the seeded positions are, by construction, consistent with the
    /// restored state.
    pub fn seed_positions(&mut self, offsets: Vec<(TopicPartition, Offset)>) {
        self.stats.resumed_partitions += offsets.len() as u64;
        for (tp, off) in offsets {
            self.offsets.insert(tp, off);
        }
        self.offsets_restored = true;
    }

    /// Sends the group coordinator an explicit offset commit (the checkpoint
    /// coordinator path). No-op without a configured group.
    pub fn commit_offsets(&mut self, ctx: &mut Ctx<'_>, offsets: Vec<(TopicPartition, Offset)>) {
        let Some(group) = self.cfg.group.clone() else {
            return;
        };
        if offsets.is_empty() {
            return;
        }
        let corr = self.next_corr();
        self.stats.offset_commits += 1;
        // Membership-protocol commits go to the coordinator stamped with
        // the (member, generation) fence; plain grouped commits keep the
        // original bootstrap path.
        let (to, member) = match &self.membership {
            Some(m) => (self.coordinator(), Some((m.member.clone(), m.generation))),
            None => (self.bootstrap, None),
        };
        ctx.send(
            to,
            ClientRpc::OffsetCommit {
                corr,
                group,
                offsets,
                member,
            },
        );
    }

    /// Commits the current positions of every partition (auto-commit path).
    pub fn commit_positions(&mut self, ctx: &mut Ctx<'_>) {
        let offsets = self.positions();
        self.commit_offsets(ctx, offsets);
    }

    fn next_corr(&mut self) -> CorrelationId {
        let c = self.next_corr;
        self.next_corr += 2;
        CorrelationId(c)
    }

    fn request_metadata(&mut self, ctx: &mut Ctx<'_>) {
        if self.meta_inflight.is_some() {
            return;
        }
        let corr = self.next_corr();
        let timer = ctx.set_timer(self.request_timeout, CONSUMER_TAGS + off::META_TIMEOUT);
        self.meta_inflight = Some((corr, timer));
        ctx.send(self.bootstrap, ClientRpc::MetadataRequest { corr });
    }

    /// Advances to the next broker endpoint for bootstrap traffic (called
    /// after a metadata or offset-fetch timeout, i.e. the current endpoint
    /// is unreachable).
    fn rotate_bootstrap(&mut self) {
        if self.bootstrap_candidates.len() < 2 {
            return;
        }
        let cur = self
            .bootstrap_candidates
            .iter()
            .position(|p| *p == self.bootstrap)
            .unwrap_or(0);
        self.bootstrap = self.bootstrap_candidates[(cur + 1) % self.bootstrap_candidates.len()];
    }

    fn poll(&mut self, ctx: &mut Ctx<'_>) {
        if self.membership.as_ref().is_some_and(|m| !m.joined) {
            // Not admitted (or bounced by a rebalance): rejoin before
            // fetching anything.
            self.send_join(ctx);
            return;
        }
        let mut tps: Vec<TopicPartition> = Vec::new();
        for topic in &self.subscriptions {
            let parts = self.metadata.partitions_of(topic);
            let n = parts.len();
            tps.extend(parts.into_iter().filter(|tp| self.owns(tp, n)));
        }
        if tps.is_empty() {
            self.request_metadata(ctx);
            return;
        }
        if self.cfg.group.is_some() && !self.offsets_restored {
            // Hold fetching until the group's committed positions arrive, so
            // the first fetch resumes at the commit instead of offset zero.
            self.request_offset_fetch(ctx, tps);
            return;
        }
        for tp in tps {
            self.fetch_one(ctx, tp);
        }
    }

    fn request_offset_fetch(&mut self, ctx: &mut Ctx<'_>, tps: Vec<TopicPartition>) {
        if self.offset_fetch_inflight.is_some() {
            return;
        }
        let corr = self.next_corr();
        let timer = ctx.set_timer(
            self.request_timeout,
            CONSUMER_TAGS + off::OFFSET_FETCH_TIMEOUT,
        );
        self.offset_fetch_inflight = Some((corr, timer));
        let group = self.cfg.group.clone().expect("caller checked group");
        // Membership commits live on the coordinator; fetch them there.
        let to = if self.membership.is_some() {
            self.coordinator()
        } else {
            self.bootstrap
        };
        ctx.send(to, ClientRpc::OffsetFetch { corr, group, tps });
    }

    fn fetch_one(&mut self, ctx: &mut Ctx<'_>, tp: TopicPartition) {
        if self.fetching.get(&tp).copied().unwrap_or(false) {
            return;
        }
        if self.cfg.group.is_some() && !self.offsets_restored {
            return;
        }
        let n_parts = self.metadata.partitions_of(&tp.topic).len();
        if !self.owns(&tp, n_parts) {
            return;
        }
        let Some(leader) = self.metadata.leader(&tp) else {
            self.request_metadata(ctx);
            return;
        };
        let Some(&pid) = self.brokers.get(&leader) else {
            return;
        };
        let corr = self.next_corr();
        let offset = self.position(&tp);
        let timer = ctx.set_timer(
            self.request_timeout,
            CONSUMER_TAGS + off::REQ_TIMEOUT_BASE + corr.0,
        );
        ctx.send(
            pid,
            ClientRpc::FetchRequest {
                corr,
                tp: tp.clone(),
                offset,
                max_records: self.cfg.max_poll_records,
                read_committed: self.cfg.read_committed,
            },
        );
        self.stats.fetches += 1;
        self.fetching.insert(tp.clone(), true);
        self.inflight.insert(corr.0, InflightFetch { tp, timer });
    }

    /// Handles an incoming message, delivering through `sink`. Returns the
    /// message back when it is not addressed to this client.
    pub fn handle_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: Box<dyn Message>,
    ) -> Option<Box<dyn Message>> {
        let rpc = match downcast::<ClientRpc>(msg) {
            Ok(r) => r,
            Err(m) => return Some(m),
        };
        match *rpc {
            ClientRpc::FetchResponse {
                corr,
                tp,
                batch,
                high_watermark,
                next_offset,
                error,
            } => {
                let inflight = self.inflight.remove(&corr.0)?;
                ctx.cancel_timer(inflight.timer);
                // Only clear the in-flight mark when nothing is pending for
                // this partition; for non-empty batches it stays set until
                // the delivery CPU completes, or the poll timer would issue
                // a duplicate fetch at the not-yet-advanced offset.
                self.fetching.insert(tp.clone(), false);
                if !self.tele_scope.is_empty() && error == ErrorCode::None {
                    // Consumer lag per partition: broker high watermark
                    // minus the position after this response.
                    let lag = high_watermark.value().saturating_sub(next_offset.value());
                    self.tele
                        .gauge_set(&self.tele_scope, &format!("lag/{tp}"), lag as f64);
                    self.tele
                        .counter_add(&self.tele_scope, "records_consumed", batch.len() as u64);
                    if self.tele.trace_enabled() && !batch.is_empty() {
                        self.tele.trace_instant(
                            ctx.now(),
                            &self.tele_scope,
                            &format!("fetch:{tp}"),
                            "consumer",
                        );
                    }
                }
                match error {
                    ErrorCode::None if !batch.is_empty() => {
                        self.fetching.insert(tp.clone(), true);
                        // Pay the per-record CPU cost, then deliver and
                        // immediately fetch again (pipelining). The position
                        // advances to the broker-computed next offset, which
                        // skips compaction holes instead of re-reading
                        // across them.
                        let tag = CONSUMER_TAGS + off::CPU_DELIVER_BASE + self.next_deliver_tag;
                        self.next_deliver_tag += 1;
                        let n = batch.len() as u64;
                        // Consumer-side half of the compression trade:
                        // decompressing the fetched batch costs CPU
                        // proportional to its raw record bytes.
                        let mut cpu = self.cfg.cpu_per_record * n;
                        if !batch.compression().is_none() {
                            cpu += self.cfg.decompress_cpu_per_byte * batch.record_bytes() as u64;
                        }
                        self.pending_delivery.insert(tag, (tp, batch, next_offset));
                        ctx.exec(cpu, tag);
                    }
                    ErrorCode::None => {
                        // Empty read: adopt the broker's next offset so a
                        // fully compacted tail hole is skipped rather than
                        // re-polled forever.
                        let pos = self.position(&tp);
                        if next_offset > pos {
                            self.offsets.insert(tp, next_offset);
                        }
                    }
                    ErrorCode::OffsetOutOfRange => {
                        // Truncation or retention happened under us: reset
                        // to the broker-provided position (the log start
                        // below retention, the high watermark above it).
                        self.stats.offset_resets += 1;
                        self.offsets.insert(tp, next_offset);
                    }
                    e if e.is_retriable() => {
                        self.request_metadata(ctx);
                    }
                    _ => {}
                }
                None
            }
            ClientRpc::MetadataResponse { corr, partitions } => {
                match self.meta_inflight {
                    Some((c, timer)) if c == corr => {
                        ctx.cancel_timer(timer);
                        self.meta_inflight = None;
                        self.meta_versions += 1;
                        self.metadata
                            .install_snapshot(partitions, self.meta_versions);
                        None
                    }
                    // Not ours — may belong to a co-embedded producer client.
                    _ => Some(Box::new(ClientRpc::MetadataResponse { corr, partitions })),
                }
            }
            ClientRpc::OffsetFetchResponse { corr, offsets } => {
                match self.offset_fetch_inflight {
                    Some((c, timer)) if c == corr => {
                        ctx.cancel_timer(timer);
                        self.offset_fetch_inflight = None;
                        self.offsets_restored = true;
                        let mut tps: Vec<TopicPartition> = Vec::new();
                        for (tp, committed) in offsets {
                            if let Some(off) = committed {
                                // Never move an already-established local
                                // position backwards: a rebalance-triggered
                                // re-fetch may race ahead of the last
                                // commit.
                                if !self.offsets.contains_key(&tp) {
                                    self.stats.resumed_partitions += 1;
                                    self.offsets.insert(tp.clone(), off);
                                }
                            }
                            tps.push(tp);
                        }
                        for tp in tps {
                            self.fetch_one(ctx, tp);
                        }
                    }
                    _ => {}
                }
                None
            }
            ClientRpc::JoinGroupResponse {
                corr,
                generation,
                assigned,
                error,
            } => {
                let matches = self
                    .membership
                    .as_ref()
                    .and_then(|m| m.join_inflight)
                    .is_some_and(|(c, _)| c == corr);
                if matches {
                    let (_, timer) = self
                        .membership
                        .as_mut()
                        .expect("checked")
                        .join_inflight
                        .take()
                        .expect("checked");
                    ctx.cancel_timer(timer);
                    if error.is_ok() {
                        self.stats.group_joins += 1;
                        let newly_assigned = {
                            let m = self.membership.as_mut().expect("checked");
                            m.generation = generation;
                            m.assigned = assigned;
                            m.joined = true;
                            m.assigned.clone()
                        };
                        // Resume newly owned partitions from their group
                        // commits before fetching them.
                        if newly_assigned
                            .iter()
                            .any(|tp| !self.offsets.contains_key(tp))
                        {
                            self.offsets_restored = false;
                        }
                        self.poll(ctx);
                    }
                }
                None
            }
            ClientRpc::GroupHeartbeatResponse { corr, error } => {
                let matches = self
                    .membership
                    .as_ref()
                    .is_some_and(|m| m.hb_inflight == Some(corr));
                if matches {
                    self.membership.as_mut().expect("checked").hb_inflight = None;
                    if error.needs_rejoin() {
                        self.mark_rejoin(ctx);
                    }
                }
                None
            }
            // Commits are mostly fire-and-forget, but a generation-fenced
            // rejection means this member was rebalanced away: rejoin.
            ClientRpc::OffsetCommitResponse { error, .. } => {
                if error.needs_rejoin() && self.membership.is_some() {
                    self.mark_rejoin(ctx);
                }
                None
            }
            other => Some(Box::new(other)),
        }
    }

    /// Handles a timer tag in the consumer namespace. Returns `true` if the
    /// tag belonged to this client.
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> bool {
        if !(CONSUMER_TAGS..CONSUMER_TAGS_END).contains(&tag) {
            return false;
        }
        let o = tag - CONSUMER_TAGS;
        if o == off::POLL {
            self.poll(ctx);
            ctx.set_timer(self.cfg.poll_interval, CONSUMER_TAGS + off::POLL);
        } else if o == off::META_TIMEOUT {
            // The bootstrap may be down (broker crash): rotate and retry.
            self.meta_inflight = None;
            self.rotate_bootstrap();
            self.request_metadata(ctx);
        } else if o == off::AUTO_COMMIT {
            self.commit_positions(ctx);
            ctx.set_timer(
                self.cfg.auto_commit_interval,
                CONSUMER_TAGS + off::AUTO_COMMIT,
            );
        } else if o == off::OFFSET_FETCH_TIMEOUT {
            // Offset fetch lost; the next poll retries it (against the next
            // endpoint, in case the group coordinator crashed).
            self.offset_fetch_inflight = None;
            self.rotate_bootstrap();
        } else if o == off::GROUP_HEARTBEAT {
            self.send_group_heartbeat(ctx);
            ctx.set_timer(
                self.cfg.group_heartbeat_interval,
                CONSUMER_TAGS + off::GROUP_HEARTBEAT,
            );
        } else if o == off::JOIN_TIMEOUT {
            // The join (or its answer) was lost — possibly a bounced
            // coordinator. Re-send; the coordinator address is a pure
            // function of the group name, so the retry finds the restarted
            // broker at the same endpoint.
            if let Some(m) = self.membership.as_mut() {
                if m.join_inflight.take().is_some() {
                    self.send_join(ctx);
                }
            }
        } else if (off::REQ_TIMEOUT_BASE..off::CPU_DELIVER_BASE).contains(&o) {
            let corr = o - off::REQ_TIMEOUT_BASE;
            if let Some(inflight) = self.inflight.remove(&corr) {
                self.stats.timeouts += 1;
                self.fetching.insert(inflight.tp, false);
                self.request_metadata(ctx);
            }
        }
        true
    }

    /// Handles a CPU-completion tag, delivering the stashed batch to `sink`.
    /// Returns `true` if the tag belonged to this client.
    pub fn handle_cpu_done(
        &mut self,
        ctx: &mut Ctx<'_>,
        tag: u64,
        sink: &mut dyn DataSink,
    ) -> bool {
        if !(CONSUMER_TAGS..CONSUMER_TAGS_END).contains(&tag) {
            return false;
        }
        let Some((tp, batch, next_offset)) = self.pending_delivery.remove(&tag) else {
            return true;
        };
        let now = ctx.now();
        self.stats.records += batch.len() as u64;
        let pos = self.position(&tp);
        self.offsets.insert(tp.clone(), next_offset.max(pos));
        // The sink iterates the shared batch in place; no per-consumer copy.
        sink.on_records(now, &tp, batch.records());
        // Pipelining: fetch the next batch for this partition right away.
        self.fetching.insert(tp.clone(), false);
        self.fetch_one(ctx, tp);
        true
    }
}

impl std::fmt::Debug for ConsumerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsumerClient")
            .field("subscriptions", &self.subscriptions)
            .field("stats", &self.stats)
            .finish()
    }
}

/// A standalone consumer stub: a [`ConsumerClient`] delivering to a
/// [`DataSink`], with background CPU churn for the resource model.
pub struct ConsumerProcess {
    client: ConsumerClient,
    sink: Box<dyn DataSink>,
    name: String,
}

const BACKGROUND_TICK: u64 = 1;
const BACKGROUND_DONE: u64 = 2;
const STARTUP_DONE: u64 = 3;

impl ConsumerProcess {
    /// Creates a consumer stub with a name suffix for traces.
    pub fn new(idx: u32, client: ConsumerClient, sink: Box<dyn DataSink>) -> Self {
        ConsumerProcess {
            client,
            sink,
            name: format!("consumer-{idx}"),
        }
    }

    /// The embedded client (stats, positions).
    pub fn client(&self) -> &ConsumerClient {
        &self.client
    }

    /// Attaches the run-wide telemetry sink under this process's name.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        let scope = self.name.clone();
        self.client.set_telemetry(tele, scope);
    }

    /// The sink, downcast to its concrete type.
    pub fn sink_as<T: DataSink>(&self) -> Option<&T> {
        (self.sink.as_ref() as &dyn Any).downcast_ref::<T>()
    }
}

impl Process for ConsumerProcess {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.exec(self.client.cfg.startup_cpu, STARTUP_DONE);
        self.client.start(ctx);
        ctx.set_timer(self.client.cfg.background_interval, BACKGROUND_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        self.client.handle_message(ctx, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if self.client.handle_timer(ctx, tag) {
            return;
        }
        if tag == BACKGROUND_TICK {
            if !self.client.cfg.background_cpu.is_zero() {
                ctx.exec(self.client.cfg.background_cpu, BACKGROUND_DONE);
            }
            ctx.set_timer(self.client.cfg.background_interval, BACKGROUND_TICK);
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.client.handle_cpu_done(ctx, tag, self.sink.as_mut());
    }
}

impl std::fmt::Debug for ConsumerProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsumerProcess")
            .field("client", &self.client)
            .finish()
    }
}
