//! # s2g-broker — event streaming platform
//!
//! A from-scratch, protocol-level reproduction of the Apache Kafka behaviors
//! stream2gym's experiments exercise: partitioned replicated logs with
//! leader/follower replication and ISR tracking, a ZooKeeper-style singleton
//! controller and a KRaft-style Raft quorum, preferred-replica election,
//! producer clients with bounded buffers/retries/delivery timeouts, and
//! consumer clients with CPU-gated fetch loops.
//!
//! All components are [`s2g_sim::Process`]es; wire them onto an emulated
//! network (`s2g-net`) and they exhibit the paper's Fig. 6 partition
//! dynamics end to end.
//!
//! # Example: single broker, produce and consume
//!
//! ```
//! use std::collections::BTreeMap;
//! use s2g_broker::{
//!     Broker, BrokerConfig, CollectingSink, ConsumerClient, ConsumerConfig, ConsumerProcess,
//!     ControllerConfig, CoordinationMode, ProducerClient, ProducerConfig, ProducerProcess,
//!     RateSource, TopicSpec, ZkController,
//! };
//! use s2g_proto::{BrokerId, ProducerId};
//! use s2g_sim::{ProcessId, Sim, SimDuration, SimTime};
//!
//! let mut sim = Sim::new(1);
//! // Process ids are assigned sequentially: controller=0, broker=1, ...
//! let controller_pid = ProcessId(0);
//! let broker_pid = ProcessId(1);
//! let brokers: BTreeMap<BrokerId, ProcessId> = [(BrokerId(0), broker_pid)].into();
//! let topics = vec![TopicSpec::new("events")];
//! sim.spawn(Box::new(ZkController::new(ControllerConfig::default(), brokers.clone(), &topics)));
//! sim.spawn(Box::new(Broker::new(
//!     BrokerId(0),
//!     BrokerConfig::default(),
//!     CoordinationMode::Zk,
//!     vec![controller_pid],
//!     brokers.clone(),
//! )));
//! let peer_map: BTreeMap<BrokerId, ProcessId> = brokers.iter().map(|(k, v)| (*k, *v)).collect();
//! let producer = ProducerClient::new(
//!     ProducerId(0), ProducerConfig::default(), broker_pid, peer_map.clone(), 0,
//! );
//! let source = RateSource::new("events", 100, SimDuration::from_millis(10)).payload_bytes(64);
//! sim.spawn(Box::new(ProducerProcess::new(producer, Box::new(source))));
//! let consumer = ConsumerClient::new(
//!     ConsumerConfig::default(), broker_pid, peer_map, vec!["events".into()],
//! );
//! let cons_pid = sim.spawn(Box::new(ConsumerProcess::new(0, consumer, Box::new(CollectingSink::default()))));
//! sim.run_until(SimTime::from_secs(10));
//! let cons = sim.process_ref::<ConsumerProcess>(cons_pid).unwrap();
//! assert_eq!(cons.sink_as::<CollectingSink>().unwrap().deliveries.len(), 100);
//! ```

#![warn(missing_docs)]

mod broker;
mod config;
mod consumer;
mod controller;
mod groups;
mod kraft;
mod log;
mod metadata;
mod producer;
mod sources;

pub use broker::{Broker, BrokerRecoveryInfo, BrokerStats};
pub use config::{
    BrokerConfig, ConsumerConfig, ControllerConfig, CoordinationMode, ProducerConfig, TopicSpec,
};
pub use consumer::{
    CollectingSink, ConsumerClient, ConsumerProcess, ConsumerStats, DataSink, CONSUMER_TAGS,
    CONSUMER_TAGS_END,
};
pub use controller::{ClusterState, PartitionState, ZkController};
pub use groups::{GroupCoordinator, GroupCoordinatorStats};
pub use kraft::KraftController;
pub use log::{
    log_store, BrokerLogMeta, CleanOutcome, DurableLogBackend, InMemoryLogBackend, LogBackend,
    LogEntry, LogPersist, LogRecover, LogSegment, LogStoreHandle, MetaPartitionTxns, MetaTxnEntry,
    PartitionLog, BROKER_LOG_CORR_BASE, DEFAULT_SEGMENT_MAX_RECORDS,
};
pub use metadata::{plan_assignments, plan_assignments_racked, MetadataCache};
pub use producer::{
    DataSource, ProduceOutcome, ProducerClient, ProducerProcess, ProducerStats, SourceAction,
    PRODUCER_TAGS, PRODUCER_TAGS_END,
};
pub use sources::{FileLinesSource, PoissonSource, RandomTopicSource, RateSource};
