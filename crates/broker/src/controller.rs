//! Cluster controller: sessions, leader election, preferred-replica election.
//!
//! [`ClusterState`] is the controller's replicated state machine: partition
//! assignments plus broker liveness, mutated only by applying
//! [`MetadataRecord`]s. Pure functions compute the records for each decision
//! (broker failure, re-registration, ISR change, preferred election), so the
//! same logic drives both the ZooKeeper-style singleton controller
//! ([`ZkController`], applies records immediately) and the KRaft quorum
//! (commits records through Raft first).

use std::collections::BTreeMap;

use s2g_proto::{
    BrokerId, ControllerRpc, LeaderEpoch, MetadataRecord, PartitionMetadata, TopicPartition,
};
use s2g_sim::{downcast, Ctx, Message, Process, ProcessId, SimTime};

use crate::config::{ControllerConfig, TopicSpec};
#[cfg(test)]
use crate::metadata::plan_assignments;
use crate::metadata::plan_assignments_racked;

/// Controller-side state for one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionState {
    /// The partition.
    pub tp: TopicPartition,
    /// Replica assignment; `replicas[0]` is the preferred leader.
    pub replicas: Vec<BrokerId>,
    /// In-sync replicas.
    pub isr: Vec<BrokerId>,
    /// Current leader (None = offline partition).
    pub leader: Option<BrokerId>,
    /// Leadership epoch.
    pub epoch: LeaderEpoch,
}

/// The controller's replicated state machine.
#[derive(Debug, Clone, Default)]
pub struct ClusterState {
    partitions: BTreeMap<TopicPartition, PartitionState>,
    alive: BTreeMap<BrokerId, bool>,
}

impl ClusterState {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the initial state from an assignment plan, with all brokers
    /// alive.
    pub fn from_plan(plan: &[PartitionMetadata], brokers: &[BrokerId]) -> Self {
        let mut s = ClusterState::new();
        for b in brokers {
            s.alive.insert(*b, true);
        }
        for p in plan {
            s.partitions.insert(
                p.tp.clone(),
                PartitionState {
                    tp: p.tp.clone(),
                    replicas: p.replicas.clone(),
                    isr: p.isr.clone(),
                    leader: p.leader,
                    epoch: p.epoch,
                },
            );
        }
        s
    }

    /// Applies one committed metadata record.
    pub fn apply(&mut self, record: &MetadataRecord) {
        match record {
            MetadataRecord::TopicCreated { .. } => {}
            MetadataRecord::PartitionChange {
                tp,
                leader,
                isr,
                epoch,
            } => {
                if let Some(p) = self.partitions.get_mut(tp) {
                    if *epoch >= p.epoch {
                        p.leader = *leader;
                        p.isr = isr.clone();
                        p.epoch = *epoch;
                    }
                } else {
                    self.partitions.insert(
                        tp.clone(),
                        PartitionState {
                            tp: tp.clone(),
                            replicas: isr.clone(),
                            isr: isr.clone(),
                            leader: *leader,
                            epoch: *epoch,
                        },
                    );
                }
            }
            MetadataRecord::BrokerRegistered { broker } => {
                self.alive.insert(*broker, true);
            }
            MetadataRecord::BrokerFenced { broker } => {
                self.alive.insert(*broker, false);
            }
        }
    }

    /// Registers a partition assignment directly (initial plan application).
    pub fn install_assignment(&mut self, p: &PartitionMetadata) {
        self.partitions.insert(
            p.tp.clone(),
            PartitionState {
                tp: p.tp.clone(),
                replicas: p.replicas.clone(),
                isr: p.isr.clone(),
                leader: p.leader,
                epoch: p.epoch,
            },
        );
    }

    /// Whether a broker is currently considered alive.
    pub fn is_alive(&self, b: BrokerId) -> bool {
        self.alive.get(&b).copied().unwrap_or(false)
    }

    /// Partition state, if known.
    pub fn partition(&self, tp: &TopicPartition) -> Option<&PartitionState> {
        self.partitions.get(tp)
    }

    /// All partition states.
    pub fn partitions(&self) -> impl Iterator<Item = &PartitionState> {
        self.partitions.values()
    }

    /// The records to commit when `broker`'s session expires: fence it, and
    /// move leadership of every partition it led to the first *alive* ISR
    /// member. With unclean election disabled, a partition whose ISR was
    /// just the failed leader goes offline but keeps that leader in the
    /// ISR — it is the only replica with the full log, so it (and only it)
    /// is re-elected when it returns.
    pub fn changes_for_broker_failure(&self, broker: BrokerId) -> Vec<MetadataRecord> {
        let mut out = vec![MetadataRecord::BrokerFenced { broker }];
        for p in self.partitions.values() {
            if p.leader != Some(broker) {
                continue;
            }
            let new_isr: Vec<BrokerId> = p.isr.iter().copied().filter(|b| *b != broker).collect();
            let new_leader = p
                .replicas
                .iter()
                .copied()
                .find(|b| *b != broker && new_isr.contains(b) && self.is_alive(*b));
            out.push(MetadataRecord::PartitionChange {
                tp: p.tp.clone(),
                leader: new_leader,
                isr: if new_isr.is_empty() {
                    vec![broker]
                } else {
                    new_isr
                },
                epoch: p.epoch.next(),
            });
        }
        out
    }

    /// The records to commit when a fenced broker re-registers.
    pub fn changes_for_broker_registration(&self, broker: BrokerId) -> Vec<MetadataRecord> {
        vec![MetadataRecord::BrokerRegistered { broker }]
    }

    /// Validates and converts a leader's AlterIsr request into records.
    /// Rejected (empty) if the sender is not the current leader at the
    /// current epoch, or the proposed ISR is invalid.
    pub fn changes_for_alter_isr(
        &self,
        tp: &TopicPartition,
        from: BrokerId,
        epoch: LeaderEpoch,
        new_isr: &[BrokerId],
    ) -> Vec<MetadataRecord> {
        let Some(p) = self.partitions.get(tp) else {
            return vec![];
        };
        if p.leader != Some(from) || p.epoch != epoch {
            return vec![];
        }
        let sanitized: Vec<BrokerId> = new_isr
            .iter()
            .copied()
            .filter(|b| p.replicas.contains(b))
            .collect();
        if !sanitized.contains(&from) || sanitized == p.isr {
            return vec![];
        }
        vec![MetadataRecord::PartitionChange {
            tp: tp.clone(),
            leader: p.leader,
            isr: sanitized,
            epoch: p.epoch,
        }]
    }

    /// The records for a preferred-replica election sweep: every partition
    /// whose preferred leader (`replicas[0]`) is alive, in the ISR, and not
    /// currently leading gets its leadership handed back (Fig. 6d event 4).
    pub fn changes_for_preferred_election(&self) -> Vec<MetadataRecord> {
        let mut out = Vec::new();
        for p in self.partitions.values() {
            let Some(&preferred) = p.replicas.first() else {
                continue;
            };
            if p.leader != Some(preferred) && self.is_alive(preferred) && p.isr.contains(&preferred)
            {
                out.push(MetadataRecord::PartitionChange {
                    tp: p.tp.clone(),
                    leader: Some(preferred),
                    isr: p.isr.clone(),
                    epoch: p.epoch.next(),
                });
            }
        }
        out
    }

    /// Also re-elect leaders for offline partitions whose ISR regained an
    /// alive member (used after heals).
    pub fn changes_for_offline_recovery(&self) -> Vec<MetadataRecord> {
        let mut out = Vec::new();
        for p in self.partitions.values() {
            if p.leader.is_some() {
                continue;
            }
            let candidate = p
                .replicas
                .iter()
                .copied()
                .find(|b| p.isr.contains(b) && self.is_alive(*b));
            if let Some(leader) = candidate {
                out.push(MetadataRecord::PartitionChange {
                    tp: p.tp.clone(),
                    leader: Some(leader),
                    isr: p.isr.clone(),
                    epoch: p.epoch.next(),
                });
            }
        }
        out
    }

    /// The per-broker `LeaderAndIsr` instructions implied by a record batch.
    pub fn leader_and_isr_for(&self, records: &[MetadataRecord]) -> Vec<(BrokerId, ControllerRpc)> {
        let mut out = Vec::new();
        for r in records {
            let MetadataRecord::PartitionChange { tp, .. } = r else {
                continue;
            };
            let Some(p) = self.partitions.get(tp) else {
                continue;
            };
            for b in &p.replicas {
                out.push((
                    *b,
                    ControllerRpc::LeaderAndIsr {
                        tp: p.tp.clone(),
                        leader: p.leader,
                        isr: p.isr.clone(),
                        epoch: p.epoch,
                        replicas: p.replicas.clone(),
                    },
                ));
            }
        }
        out
    }

    /// A full-state `LeaderAndIsr` set for one broker (sent on registration
    /// so a healed broker learns its current roles).
    pub fn leader_and_isr_for_broker(&self, broker: BrokerId) -> Vec<ControllerRpc> {
        self.partitions
            .values()
            .filter(|p| p.replicas.contains(&broker))
            .map(|p| ControllerRpc::LeaderAndIsr {
                tp: p.tp.clone(),
                leader: p.leader,
                isr: p.isr.clone(),
                epoch: p.epoch,
                replicas: p.replicas.clone(),
            })
            .collect()
    }

    /// All partition-change records describing the current state (for full
    /// metadata pushes).
    pub fn snapshot_records(&self) -> Vec<MetadataRecord> {
        self.partitions
            .values()
            .map(|p| MetadataRecord::PartitionChange {
                tp: p.tp.clone(),
                leader: p.leader,
                isr: p.isr.clone(),
                epoch: p.epoch,
            })
            .collect()
    }
}

mod tags {
    pub const SESSION_CHECK: u64 = 1;
    pub const PREFERRED_CHECK: u64 = 2;
}

/// The ZooKeeper-style singleton controller process.
///
/// Tracks broker sessions via heartbeats, expires them after the session
/// timeout, elects replacement leaders from the ISR, pushes `LeaderAndIsr`
/// and metadata updates to brokers, and periodically runs preferred-replica
/// election. Decisions apply immediately (no quorum), which together with
/// broker-side local ISR shrinking reproduces the ZooKeeper-era silent-loss
/// behavior of Fig. 6b.
pub struct ZkController {
    cfg: ControllerConfig,
    state: ClusterState,
    brokers: BTreeMap<BrokerId, ProcessId>,
    sessions: BTreeMap<BrokerId, SimTime>,
    /// Last seen process incarnation per broker; a jump means the broker
    /// bounced (possibly within its session timeout) and must be re-taught
    /// its roles.
    incarnations: BTreeMap<BrokerId, u64>,
    metadata_version: u64,
    /// Controller decision log for assertions: (time, record).
    decisions: Vec<(SimTime, MetadataRecord)>,
    initial_plan: Vec<PartitionMetadata>,
}

impl ZkController {
    /// Creates a controller for a static broker membership and topic list.
    pub fn new(
        cfg: ControllerConfig,
        brokers: BTreeMap<BrokerId, ProcessId>,
        topics: &[TopicSpec],
    ) -> Self {
        Self::with_racks(cfg, brokers, topics, &BTreeMap::new())
    }

    /// Like [`ZkController::new`], but with rack/host labels steering
    /// replica placement: followers land on racks not already holding a
    /// replica whenever possible, so one host failure costs at most one
    /// replica. Brokers missing from `racks` count as a rack of their own.
    pub fn with_racks(
        cfg: ControllerConfig,
        brokers: BTreeMap<BrokerId, ProcessId>,
        topics: &[TopicSpec],
        racks: &BTreeMap<BrokerId, String>,
    ) -> Self {
        let ids: Vec<BrokerId> = brokers.keys().copied().collect();
        let racked: Vec<(BrokerId, String)> = ids
            .iter()
            .map(|b| {
                let rack = racks.get(b).cloned().unwrap_or_else(|| format!("b{}", b.0));
                (*b, rack)
            })
            .collect();
        let plan = plan_assignments_racked(topics, &racked);
        let state = ClusterState::from_plan(&plan, &ids);
        ZkController {
            cfg,
            state,
            brokers,
            sessions: BTreeMap::new(),
            incarnations: BTreeMap::new(),
            metadata_version: 0,
            decisions: Vec::new(),
            initial_plan: plan,
        }
    }

    /// The controller's current view of the cluster.
    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    /// Committed decisions, in order.
    pub fn decisions(&self) -> &[(SimTime, MetadataRecord)] {
        &self.decisions
    }

    fn commit(&mut self, ctx: &mut Ctx<'_>, records: Vec<MetadataRecord>) {
        if records.is_empty() {
            return;
        }
        let now = ctx.now();
        for r in &records {
            self.state.apply(r);
            self.decisions.push((now, r.clone()));
            ctx.trace_with("controller", || format!("{r:?}"));
        }
        // Push LeaderAndIsr to affected replica holders.
        for (b, rpc) in self.state.leader_and_isr_for(&records) {
            if let Some(&pid) = self.brokers.get(&b) {
                ctx.send(pid, rpc);
            }
        }
        // Broadcast the metadata delta to every broker.
        self.metadata_version += 1;
        let version = self.metadata_version;
        for &pid in self.brokers.values() {
            ctx.send(
                pid,
                ControllerRpc::MetadataUpdate {
                    records: records.clone(),
                    metadata_version: version,
                },
            );
        }
    }

    fn check_sessions(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let timeout = self.cfg.session_timeout;
        let expired: Vec<BrokerId> = self
            .sessions
            .iter()
            .filter(|(b, last)| self.state.is_alive(**b) && now.saturating_since(**last) > timeout)
            .map(|(b, _)| *b)
            .collect();
        for b in expired {
            let records = self.state.changes_for_broker_failure(b);
            self.commit(ctx, records);
        }
    }
}

impl Process for ZkController {
    fn name(&self) -> &str {
        "zk-controller"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Until a broker's first heartbeat, treat its session as fresh.
        let ids: Vec<BrokerId> = self.brokers.keys().copied().collect();
        for b in &ids {
            self.sessions.insert(*b, now);
        }
        // Install the initial assignment and tell everyone.
        let records: Vec<MetadataRecord> = self.state.snapshot_records();
        let plan = self.initial_plan.clone();
        for p in &plan {
            self.state.install_assignment(p);
        }
        self.commit(ctx, records);
        ctx.set_timer(self.cfg.session_check_interval, tags::SESSION_CHECK);
        ctx.set_timer(self.cfg.preferred_election_delay, tags::PREFERRED_CHECK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        let Ok(rpc) = downcast::<ControllerRpc>(msg) else {
            return;
        };
        match *rpc {
            ControllerRpc::Heartbeat {
                broker,
                incarnation,
            } => {
                let now = ctx.now();
                self.sessions.insert(broker, now);
                let prev_inc = self.incarnations.insert(broker, incarnation).unwrap_or(0);
                // A fenced session *or* a bumped incarnation means the
                // broker restarted: a bounce faster than the session timeout
                // never expires the session, so the incarnation jump is the
                // only signal that its roles must be re-taught.
                let was_dead = !self.state.is_alive(broker);
                let bounced = incarnation > prev_inc;
                if was_dead {
                    // Re-registration: revive it in the replicated state.
                    let recs = self.state.changes_for_broker_registration(broker);
                    self.commit(ctx, recs);
                }
                if was_dead || bounced {
                    // Re-teach the broker its roles and metadata, and
                    // recover any offline partitions it can serve again.
                    let rpcs = self.state.leader_and_isr_for_broker(broker);
                    if let Some(&pid) = self.brokers.get(&broker) {
                        for r in rpcs {
                            ctx.send(pid, r);
                        }
                        // Refresh its metadata cache too.
                        self.metadata_version += 1;
                        let version = self.metadata_version;
                        let snapshot = self.state.snapshot_records();
                        ctx.send(
                            pid,
                            ControllerRpc::MetadataUpdate {
                                records: snapshot,
                                metadata_version: version,
                            },
                        );
                    }
                    let recover = self.state.changes_for_offline_recovery();
                    self.commit(ctx, recover);
                }
                if let Some(&pid) = self.brokers.get(&broker) {
                    ctx.send(
                        pid,
                        ControllerRpc::HeartbeatAck {
                            metadata_version: self.metadata_version,
                            fenced: !self.state.is_alive(broker),
                        },
                    );
                }
            }
            ControllerRpc::AlterIsr {
                tp,
                from,
                epoch,
                new_isr,
            } => {
                let records = self.state.changes_for_alter_isr(&tp, from, epoch, &new_isr);
                self.commit(ctx, records);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            tags::SESSION_CHECK => {
                self.check_sessions(ctx);
                ctx.set_timer(self.cfg.session_check_interval, tags::SESSION_CHECK);
            }
            tags::PREFERRED_CHECK => {
                let records = self.state.changes_for_preferred_election();
                self.commit(ctx, records);
                let recover = self.state.changes_for_offline_recovery();
                self.commit(ctx, recover);
                ctx.set_timer(self.cfg.preferred_election_delay, tags::PREFERRED_CHECK);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for ZkController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkController")
            .field("brokers", &self.brokers.len())
            .field("metadata_version", &self.metadata_version)
            .field("decisions", &self.decisions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_broker_state() -> ClusterState {
        let plan = plan_assignments(
            &[TopicSpec::new("ta").replication(3).primary(0)],
            &[BrokerId(0), BrokerId(1), BrokerId(2)],
        );
        ClusterState::from_plan(&plan, &[BrokerId(0), BrokerId(1), BrokerId(2)])
    }

    #[test]
    fn failure_moves_leadership_to_isr_member() {
        let s = three_broker_state();
        let recs = s.changes_for_broker_failure(BrokerId(0));
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0],
            MetadataRecord::BrokerFenced {
                broker: BrokerId(0)
            }
        );
        match &recs[1] {
            MetadataRecord::PartitionChange {
                leader, isr, epoch, ..
            } => {
                assert_eq!(*leader, Some(BrokerId(1)));
                assert!(!isr.contains(&BrokerId(0)));
                assert_eq!(*epoch, LeaderEpoch(1));
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn failure_with_empty_isr_goes_offline() {
        let mut s = three_broker_state();
        // Shrink ISR to just the leader, then fail the leader.
        let tp = TopicPartition::new("ta", 0);
        s.apply(&MetadataRecord::PartitionChange {
            tp: tp.clone(),
            leader: Some(BrokerId(0)),
            isr: vec![BrokerId(0)],
            epoch: LeaderEpoch(0),
        });
        let recs = s.changes_for_broker_failure(BrokerId(0));
        match &recs[1] {
            MetadataRecord::PartitionChange { leader, .. } => assert_eq!(*leader, None),
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn alter_isr_validates_sender_and_epoch() {
        let s = three_broker_state();
        let tp = TopicPartition::new("ta", 0);
        // Valid shrink by the leader.
        let recs = s.changes_for_alter_isr(&tp, BrokerId(0), LeaderEpoch(0), &[BrokerId(0)]);
        assert_eq!(recs.len(), 1);
        // Wrong sender.
        assert!(s
            .changes_for_alter_isr(&tp, BrokerId(1), LeaderEpoch(0), &[BrokerId(1)])
            .is_empty());
        // Stale epoch.
        assert!(s
            .changes_for_alter_isr(&tp, BrokerId(0), LeaderEpoch(9), &[BrokerId(0)])
            .is_empty());
        // ISR not containing the leader.
        assert!(s
            .changes_for_alter_isr(&tp, BrokerId(0), LeaderEpoch(0), &[BrokerId(1)])
            .is_empty());
        // No-op ISR.
        assert!(s
            .changes_for_alter_isr(
                &tp,
                BrokerId(0),
                LeaderEpoch(0),
                &[BrokerId(0), BrokerId(1), BrokerId(2)]
            )
            .is_empty());
    }

    #[test]
    fn preferred_election_restores_original_leader() {
        let mut s = three_broker_state();
        let tp = TopicPartition::new("ta", 0);
        // Fail broker 0, leadership moves to 1.
        for r in s.changes_for_broker_failure(BrokerId(0)) {
            s.apply(&r);
        }
        assert_eq!(s.partition(&tp).unwrap().leader, Some(BrokerId(1)));
        // Preferred election does nothing while 0 is fenced / out of ISR.
        assert!(s.changes_for_preferred_election().is_empty());
        // 0 re-registers and rejoins the ISR.
        s.apply(&MetadataRecord::BrokerRegistered {
            broker: BrokerId(0),
        });
        let p = s.partition(&tp).unwrap().clone();
        s.apply(&MetadataRecord::PartitionChange {
            tp: tp.clone(),
            leader: p.leader,
            isr: vec![BrokerId(1), BrokerId(2), BrokerId(0)],
            epoch: p.epoch,
        });
        let recs = s.changes_for_preferred_election();
        assert_eq!(recs.len(), 1);
        match &recs[0] {
            MetadataRecord::PartitionChange { leader, .. } => {
                assert_eq!(*leader, Some(BrokerId(0)));
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn offline_recovery_elects_when_possible() {
        let mut s = three_broker_state();
        let tp = TopicPartition::new("ta", 0);
        s.apply(&MetadataRecord::PartitionChange {
            tp: tp.clone(),
            leader: None,
            isr: vec![BrokerId(2)],
            epoch: LeaderEpoch(3),
        });
        let recs = s.changes_for_offline_recovery();
        assert_eq!(recs.len(), 1);
        match &recs[0] {
            MetadataRecord::PartitionChange { leader, epoch, .. } => {
                assert_eq!(*leader, Some(BrokerId(2)));
                assert_eq!(*epoch, LeaderEpoch(4));
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn leader_and_isr_targets_all_replicas() {
        let s = three_broker_state();
        let recs = s.snapshot_records();
        let msgs = s.leader_and_isr_for(&recs);
        assert_eq!(msgs.len(), 3, "one instruction per replica holder");
    }

    #[test]
    fn epoch_guard_in_apply() {
        let mut s = three_broker_state();
        let tp = TopicPartition::new("ta", 0);
        s.apply(&MetadataRecord::PartitionChange {
            tp: tp.clone(),
            leader: Some(BrokerId(2)),
            isr: vec![BrokerId(2)],
            epoch: LeaderEpoch(5),
        });
        // Older epoch must not clobber.
        s.apply(&MetadataRecord::PartitionChange {
            tp: tp.clone(),
            leader: Some(BrokerId(1)),
            isr: vec![BrokerId(1)],
            epoch: LeaderEpoch(2),
        });
        assert_eq!(s.partition(&tp).unwrap().leader, Some(BrokerId(2)));
    }
}
