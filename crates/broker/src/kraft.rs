//! KRaft-mode controller: a Raft quorum replicating the metadata log.
//!
//! Each [`KraftController`] is one quorum member. The Raft leader acts as the
//! *active controller*: it tracks broker sessions, proposes metadata records
//! (fencing, leader changes, ISR updates, preferred elections) into the
//! replicated log, and only acts on them once they commit on a majority.
//! Followers replicate and apply the same records, so any member can take
//! over. This is the coordination mode under which the paper "was not able
//! to observe" the silent-loss behavior of Fig. 6b.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;

use s2g_proto::{BrokerId, ControllerRpc, MetadataRecord, RaftRpc};
use s2g_sim::{downcast, Ctx, Message, Process, ProcessId, SimDuration, SimTime};

use crate::config::{ControllerConfig, TopicSpec};
use crate::controller::ClusterState;
use crate::metadata::plan_assignments_racked;

mod tags {
    pub const ELECTION_CHECK: u64 = 1;
    pub const LEADER_TICK: u64 = 2;
    pub const SESSION_CHECK: u64 = 3;
    pub const PREFERRED_CHECK: u64 = 4;
}

/// How often candidates/followers check their election deadline.
const ELECTION_CHECK_EVERY: SimDuration = SimDuration::from_millis(100);
/// Base election timeout; actual deadline adds a random 0..base.
const ELECTION_TIMEOUT_BASE: SimDuration = SimDuration::from_millis(1_500);
/// Leader append/heartbeat period.
const LEADER_TICK_EVERY: SimDuration = SimDuration::from_millis(300);
/// Max entries shipped per AppendEntries.
const MAX_ENTRIES_PER_APPEND: usize = 64;

#[derive(Debug)]
enum RaftRole {
    Follower {
        /// Kept for debugging visibility in `{:?}` dumps.
        #[allow(dead_code)]
        leader: Option<BrokerId>,
    },
    Candidate {
        votes: BTreeSet<BrokerId>,
    },
    Leader {
        next_index: BTreeMap<BrokerId, usize>,
        match_index: BTreeMap<BrokerId, usize>,
    },
}

/// One member of the KRaft controller quorum.
pub struct KraftController {
    me: BrokerId,
    quorum: BTreeMap<BrokerId, ProcessId>,
    brokers: BTreeMap<BrokerId, ProcessId>,
    cfg: ControllerConfig,
    topics: Vec<TopicSpec>,
    /// Rack/host labels steering the bootstrap replica placement; brokers
    /// missing from the map count as a rack of their own.
    racks: BTreeMap<BrokerId, String>,

    // Raft state.
    term: u64,
    voted_for: Option<BrokerId>,
    log: Vec<(u64, MetadataRecord)>,
    commit: usize,
    applied: usize,
    role: RaftRole,
    election_deadline: SimTime,

    // Replicated state machine + leader-local soft state.
    state: ClusterState,
    sessions: BTreeMap<BrokerId, SimTime>,
    /// Last seen process incarnation per broker; a jump means the broker
    /// bounced and must be re-taught its roles even if its session never
    /// expired.
    incarnations: BTreeMap<BrokerId, u64>,
    metadata_version: u64,
    decisions: Vec<(SimTime, MetadataRecord)>,
    bootstrapped: bool,
    name: String,
}

impl KraftController {
    /// Creates a quorum member.
    ///
    /// `quorum` maps every controller id (including `me`) to its process id;
    /// `brokers` maps the data-plane brokers. Controller ids must not
    /// collide with broker ids.
    pub fn new(
        me: BrokerId,
        quorum: BTreeMap<BrokerId, ProcessId>,
        brokers: BTreeMap<BrokerId, ProcessId>,
        cfg: ControllerConfig,
        topics: Vec<TopicSpec>,
    ) -> Self {
        Self::with_racks(me, quorum, brokers, cfg, topics, BTreeMap::new())
    }

    /// Like [`KraftController::new`], but with rack/host labels steering
    /// replica placement at bootstrap: followers land on racks not already
    /// holding a replica whenever the rack count allows it.
    pub fn with_racks(
        me: BrokerId,
        quorum: BTreeMap<BrokerId, ProcessId>,
        brokers: BTreeMap<BrokerId, ProcessId>,
        cfg: ControllerConfig,
        topics: Vec<TopicSpec>,
        racks: BTreeMap<BrokerId, String>,
    ) -> Self {
        assert!(quorum.contains_key(&me), "quorum must include this member");
        assert!(
            quorum.keys().all(|q| !brokers.contains_key(q)),
            "controller ids must not collide with broker ids"
        );
        let name = format!("kraft-{}", me.0);
        KraftController {
            me,
            quorum,
            brokers,
            cfg,
            topics,
            racks,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            commit: 0,
            applied: 0,
            role: RaftRole::Follower { leader: None },
            election_deadline: SimTime::ZERO,
            state: ClusterState::new(),
            sessions: BTreeMap::new(),
            incarnations: BTreeMap::new(),
            metadata_version: 0,
            decisions: Vec::new(),
            bootstrapped: false,
            name,
        }
    }

    /// True if this member currently believes it is the Raft leader (the
    /// active controller).
    pub fn is_active(&self) -> bool {
        matches!(self.role, RaftRole::Leader { .. })
    }

    /// The current Raft term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Committed log length.
    pub fn committed(&self) -> usize {
        self.commit
    }

    /// The applied cluster state.
    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    /// Applied decisions with timestamps.
    pub fn decisions(&self) -> &[(SimTime, MetadataRecord)] {
        &self.decisions
    }

    /// The replicated log (term, record) — for consistency assertions.
    pub fn raft_log(&self) -> &[(u64, MetadataRecord)] {
        &self.log
    }

    fn majority(&self) -> usize {
        self.quorum.len() / 2 + 1
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map(|(t, _)| *t).unwrap_or(0)
    }

    fn reset_election_deadline(&mut self, ctx: &mut Ctx<'_>) {
        let jitter = ctx.rng().gen_range(0..=ELECTION_TIMEOUT_BASE.as_nanos());
        self.election_deadline =
            ctx.now() + ELECTION_TIMEOUT_BASE + SimDuration::from_nanos(jitter);
    }

    fn become_follower(&mut self, ctx: &mut Ctx<'_>, term: u64, leader: Option<BrokerId>) {
        self.term = term;
        self.role = RaftRole::Follower { leader };
        self.voted_for = None;
        self.reset_election_deadline(ctx);
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_>) {
        self.term += 1;
        self.voted_for = Some(self.me);
        let mut votes = BTreeSet::new();
        votes.insert(self.me);
        self.role = RaftRole::Candidate { votes };
        self.reset_election_deadline(ctx);
        let req = RaftRpc::RequestVote {
            term: self.term,
            candidate: self.me,
            last_log_index: self.log.len() as u64,
            last_log_term: self.last_log_term(),
        };
        for (&id, &pid) in self.quorum.clone().iter() {
            if id != self.me {
                ctx.send(pid, req.clone());
            }
        }
        if self.quorum.len() == 1 {
            self.become_leader(ctx);
        }
    }

    fn become_leader(&mut self, ctx: &mut Ctx<'_>) {
        let mut next_index = BTreeMap::new();
        let mut match_index = BTreeMap::new();
        for &id in self.quorum.keys() {
            if id != self.me {
                next_index.insert(id, self.log.len());
                match_index.insert(id, 0usize);
            }
        }
        self.role = RaftRole::Leader {
            next_index,
            match_index,
        };
        ctx.trace_with("kraft", || {
            format!(
                "{} became active controller (term {})",
                self.name, self.term
            )
        });
        // Term-start entry: lets the new leader commit prior-term entries
        // (Raft §5.4.2 no-op). We reuse a harmless registration record.
        let noop = MetadataRecord::BrokerRegistered { broker: self.me };
        self.propose(vec![noop]);
        if !self.bootstrapped
            && !self.brokers.is_empty()
            && !self.topics.is_empty()
            && self.log.iter().all(|(_, r)| !is_partition_change(r))
        {
            // First leadership over an empty metadata log: install the
            // initial topic assignment.
            let ids: Vec<BrokerId> = self.brokers.keys().copied().collect();
            let racked: Vec<(BrokerId, String)> = ids
                .iter()
                .map(|b| {
                    let rack = self
                        .racks
                        .get(b)
                        .cloned()
                        .unwrap_or_else(|| format!("b{}", b.0));
                    (*b, rack)
                })
                .collect();
            let plan = plan_assignments_racked(&self.topics, &racked);
            let mut records: Vec<MetadataRecord> = ids
                .iter()
                .map(|b| MetadataRecord::BrokerRegistered { broker: *b })
                .collect();
            for p in &plan {
                self.state.install_assignment(p);
                records.push(MetadataRecord::PartitionChange {
                    tp: p.tp.clone(),
                    leader: p.leader,
                    isr: p.isr.clone(),
                    epoch: p.epoch,
                });
            }
            self.propose(records);
            self.bootstrapped = true;
        }
        self.leader_tick(ctx);
    }

    fn propose(&mut self, records: Vec<MetadataRecord>) {
        if !matches!(self.role, RaftRole::Leader { .. }) {
            return;
        }
        let term = self.term;
        for r in records {
            // Avoid duplicate uncommitted proposals (session checks repeat
            // until the failure records commit).
            let pending = self.log[self.commit..]
                .iter()
                .any(|(_, existing)| *existing == r);
            if !pending {
                self.log.push((term, r));
            }
        }
        self.maybe_commit();
    }

    fn leader_tick(&mut self, ctx: &mut Ctx<'_>) {
        let RaftRole::Leader { next_index, .. } = &self.role else {
            return;
        };
        let sends: Vec<(ProcessId, RaftRpc)> = self
            .quorum
            .iter()
            .filter(|(id, _)| **id != self.me)
            .map(|(id, pid)| {
                let ni = next_index.get(id).copied().unwrap_or(self.log.len());
                let prev_log_index = ni;
                let prev_log_term = if ni == 0 { 0 } else { self.log[ni - 1].0 };
                let entries: Vec<(u64, MetadataRecord)> = self
                    .log
                    .iter()
                    .skip(ni)
                    .take(MAX_ENTRIES_PER_APPEND)
                    .cloned()
                    .collect();
                (
                    *pid,
                    RaftRpc::AppendEntries {
                        term: self.term,
                        leader: self.me,
                        prev_log_index: prev_log_index as u64,
                        prev_log_term,
                        entries,
                        leader_commit: self.commit as u64,
                    },
                )
            })
            .collect();
        for (pid, rpc) in sends {
            ctx.send(pid, rpc);
        }
    }

    fn maybe_commit(&mut self) {
        let RaftRole::Leader { match_index, .. } = &self.role else {
            return;
        };
        let majority = self.majority();
        for n in (self.commit + 1..=self.log.len()).rev() {
            if self.log[n - 1].0 != self.term {
                continue; // only commit entries from the current term directly
            }
            let replicas = 1 + match_index.values().filter(|m| **m >= n).count();
            if replicas >= majority {
                self.commit = n;
                break;
            }
        }
    }

    fn apply_committed(&mut self, ctx: &mut Ctx<'_>) {
        if self.applied >= self.commit {
            return;
        }
        let now = ctx.now();
        let batch: Vec<MetadataRecord> = self.log[self.applied..self.commit]
            .iter()
            .map(|(_, r)| r.clone())
            .collect();
        self.applied = self.commit;
        for r in &batch {
            self.state.apply(r);
            self.decisions.push((now, r.clone()));
        }
        // Only the active controller pushes instructions to brokers.
        if self.is_active() {
            for (b, rpc) in self.state.leader_and_isr_for(&batch) {
                if let Some(&pid) = self.brokers.get(&b) {
                    ctx.send(pid, rpc);
                }
            }
            self.metadata_version += 1;
            let version = self.metadata_version;
            for &pid in self.brokers.values() {
                ctx.send(
                    pid,
                    ControllerRpc::MetadataUpdate {
                        records: batch.clone(),
                        metadata_version: version,
                    },
                );
            }
        }
    }

    fn handle_raft(&mut self, ctx: &mut Ctx<'_>, rpc: RaftRpc) {
        match rpc {
            RaftRpc::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                if term > self.term {
                    self.become_follower(ctx, term, None);
                }
                let up_to_date = (last_log_term, last_log_index)
                    >= (self.last_log_term(), self.log.len() as u64);
                let grant = term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(candidate));
                if grant {
                    self.voted_for = Some(candidate);
                    self.reset_election_deadline(ctx);
                }
                if let Some(&pid) = self.quorum.get(&candidate) {
                    ctx.send(
                        pid,
                        RaftRpc::VoteResponse {
                            term: self.term,
                            granted: grant,
                            from: self.me,
                        },
                    );
                }
            }
            RaftRpc::VoteResponse {
                term,
                granted,
                from,
            } => {
                if term > self.term {
                    self.become_follower(ctx, term, None);
                    return;
                }
                if term != self.term {
                    return;
                }
                let majority = self.majority();
                let won = match &mut self.role {
                    RaftRole::Candidate { votes } if granted => {
                        votes.insert(from);
                        votes.len() >= majority
                    }
                    _ => false,
                };
                if won {
                    self.become_leader(ctx);
                }
            }
            RaftRpc::AppendEntries {
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => {
                if term < self.term {
                    if let Some(&pid) = self.quorum.get(&leader) {
                        ctx.send(
                            pid,
                            RaftRpc::AppendResponse {
                                term: self.term,
                                success: false,
                                match_index: self.log.len() as u64,
                                from: self.me,
                            },
                        );
                    }
                    return;
                }
                self.become_follower(ctx, term, Some(leader));
                let prev = prev_log_index as usize;
                let consistent =
                    prev <= self.log.len() && (prev == 0 || self.log[prev - 1].0 == prev_log_term);
                let (success, match_index) = if consistent {
                    // Drop conflicting suffix, then append what is new.
                    let mut insert_at = prev;
                    for (i, e) in entries.iter().enumerate() {
                        let idx = prev + i;
                        if idx < self.log.len() {
                            if self.log[idx].0 != e.0 {
                                self.log.truncate(idx);
                                insert_at = idx;
                                break;
                            }
                            insert_at = idx + 1;
                        } else {
                            insert_at = idx;
                            break;
                        }
                    }
                    for (i, e) in entries.into_iter().enumerate() {
                        let idx = prev + i;
                        if idx >= insert_at.min(self.log.len()) && idx >= self.log.len() {
                            self.log.push(e);
                        }
                    }
                    (true, self.log.len())
                } else {
                    (false, self.log.len().min(prev))
                };
                if success {
                    let new_commit = (leader_commit as usize).min(self.log.len());
                    if new_commit > self.commit {
                        self.commit = new_commit;
                        self.apply_committed(ctx);
                    }
                }
                if let Some(&pid) = self.quorum.get(&leader) {
                    ctx.send(
                        pid,
                        RaftRpc::AppendResponse {
                            term: self.term,
                            success,
                            match_index: match_index as u64,
                            from: self.me,
                        },
                    );
                }
            }
            RaftRpc::AppendResponse {
                term,
                success,
                match_index,
                from,
            } => {
                if term > self.term {
                    self.become_follower(ctx, term, None);
                    return;
                }
                let RaftRole::Leader {
                    next_index,
                    match_index: mi,
                } = &mut self.role
                else {
                    return;
                };
                if success {
                    mi.insert(from, match_index as usize);
                    next_index.insert(from, match_index as usize);
                } else {
                    let ni = next_index.entry(from).or_insert(0);
                    *ni = (match_index as usize).min(ni.saturating_sub(1));
                }
                self.maybe_commit();
                self.apply_committed(ctx);
            }
        }
    }

    fn handle_broker(&mut self, ctx: &mut Ctx<'_>, rpc: ControllerRpc) {
        if !self.is_active() {
            return; // only the active controller serves brokers
        }
        match rpc {
            ControllerRpc::Heartbeat {
                broker,
                incarnation,
            } => {
                let now = ctx.now();
                self.sessions.insert(broker, now);
                let prev_inc = self.incarnations.insert(broker, incarnation).unwrap_or(0);
                let bounced = incarnation > prev_inc;
                let was_dead = !self.state.is_alive(broker);
                if was_dead {
                    // Re-registration goes through the quorum.
                    self.propose(vec![MetadataRecord::BrokerRegistered { broker }]);
                    self.leader_tick(ctx);
                }
                if was_dead || bounced {
                    // Re-teach the returned broker its roles from applied
                    // state — a bounce within the session timeout never
                    // expires the session, so the incarnation jump is the
                    // only restart signal.
                    if let Some(&pid) = self.brokers.get(&broker) {
                        for r in self.state.leader_and_isr_for_broker(broker) {
                            ctx.send(pid, r);
                        }
                        self.metadata_version += 1;
                        let version = self.metadata_version;
                        ctx.send(
                            pid,
                            ControllerRpc::MetadataUpdate {
                                records: self.state.snapshot_records(),
                                metadata_version: version,
                            },
                        );
                    }
                }
                if let Some(&pid) = self.brokers.get(&broker) {
                    ctx.send(
                        pid,
                        ControllerRpc::HeartbeatAck {
                            metadata_version: self.metadata_version,
                            fenced: !self.state.is_alive(broker),
                        },
                    );
                }
            }
            ControllerRpc::AlterIsr {
                tp,
                from,
                epoch,
                new_isr,
            } => {
                let records = self.state.changes_for_alter_isr(&tp, from, epoch, &new_isr);
                self.propose(records);
                self.leader_tick(ctx);
            }
            _ => {}
        }
    }
}

fn is_partition_change(r: &MetadataRecord) -> bool {
    matches!(r, MetadataRecord::PartitionChange { .. })
}

impl Process for KraftController {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let ids: Vec<BrokerId> = self.brokers.keys().copied().collect();
        for b in ids {
            self.sessions.insert(b, now);
        }
        self.reset_election_deadline(ctx);
        ctx.set_timer(ELECTION_CHECK_EVERY, tags::ELECTION_CHECK);
        ctx.set_timer(LEADER_TICK_EVERY, tags::LEADER_TICK);
        ctx.set_timer(self.cfg.session_check_interval, tags::SESSION_CHECK);
        ctx.set_timer(self.cfg.preferred_election_delay, tags::PREFERRED_CHECK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        let msg = match downcast::<RaftRpc>(msg) {
            Ok(rpc) => return self.handle_raft(ctx, *rpc),
            Err(m) => m,
        };
        if let Ok(rpc) = downcast::<ControllerRpc>(msg) {
            self.handle_broker(ctx, *rpc);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            tags::ELECTION_CHECK => {
                if !self.is_active() && ctx.now() >= self.election_deadline {
                    self.start_election(ctx);
                }
                ctx.set_timer(ELECTION_CHECK_EVERY, tags::ELECTION_CHECK);
            }
            tags::LEADER_TICK => {
                if self.is_active() {
                    self.leader_tick(ctx);
                    self.apply_committed(ctx);
                }
                ctx.set_timer(LEADER_TICK_EVERY, tags::LEADER_TICK);
            }
            tags::SESSION_CHECK => {
                if self.is_active() {
                    let now = ctx.now();
                    let timeout = self.cfg.session_timeout;
                    let expired: Vec<BrokerId> = self
                        .sessions
                        .iter()
                        .filter(|(b, last)| {
                            self.state.is_alive(**b) && now.saturating_since(**last) > timeout
                        })
                        .map(|(b, _)| *b)
                        .collect();
                    for b in expired {
                        let records = self.state.changes_for_broker_failure(b);
                        self.propose(records);
                    }
                    self.leader_tick(ctx);
                }
                ctx.set_timer(self.cfg.session_check_interval, tags::SESSION_CHECK);
            }
            tags::PREFERRED_CHECK => {
                if self.is_active() {
                    let records = self.state.changes_for_preferred_election();
                    self.propose(records);
                    let recover = self.state.changes_for_offline_recovery();
                    self.propose(recover);
                    self.leader_tick(ctx);
                }
                ctx.set_timer(self.cfg.preferred_election_delay, tags::PREFERRED_CHECK);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for KraftController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KraftController")
            .field("me", &self.me)
            .field("term", &self.term)
            .field("log_len", &self.log.len())
            .field("commit", &self.commit)
            .field("active", &self.is_active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_sim::Sim;

    fn spawn_quorum(sim: &mut Sim, n: u32) -> Vec<ProcessId> {
        // Reserve pids first by spawning placeholders is not possible; instead
        // compute pids deterministically: they are assigned sequentially.
        let base = sim.process_count() as u32;
        let quorum: BTreeMap<BrokerId, ProcessId> = (0..n)
            .map(|i| (BrokerId(1000 + i), ProcessId(base + i)))
            .collect();
        let mut pids = Vec::new();
        for i in 0..n {
            let c = KraftController::new(
                BrokerId(1000 + i),
                quorum.clone(),
                BTreeMap::new(),
                ControllerConfig::default(),
                vec![],
            );
            pids.push(sim.spawn(Box::new(c)));
        }
        pids
    }

    #[test]
    fn quorum_elects_exactly_one_leader() {
        let mut sim = Sim::new(7);
        let pids = spawn_quorum(&mut sim, 3);
        sim.run_until(SimTime::from_secs(20));
        let active: Vec<bool> = pids
            .iter()
            .map(|p| sim.process_ref::<KraftController>(*p).unwrap().is_active())
            .collect();
        assert_eq!(
            active.iter().filter(|a| **a).count(),
            1,
            "exactly one active controller"
        );
        // All members agree on the term.
        let terms: BTreeSet<u64> = pids
            .iter()
            .map(|p| sim.process_ref::<KraftController>(*p).unwrap().term())
            .collect();
        assert_eq!(terms.len(), 1, "terms converge: {terms:?}");
    }

    #[test]
    fn committed_prefixes_agree() {
        let mut sim = Sim::new(11);
        let pids = spawn_quorum(&mut sim, 5);
        sim.run_until(SimTime::from_secs(30));
        let logs: Vec<Vec<(u64, MetadataRecord)>> = pids
            .iter()
            .map(|p| {
                let c = sim.process_ref::<KraftController>(*p).unwrap();
                c.raft_log()[..c.committed()].to_vec()
            })
            .collect();
        // Every pair of committed prefixes must be consistent (one is a
        // prefix of the other).
        for a in &logs {
            for b in &logs {
                let n = a.len().min(b.len());
                assert_eq!(&a[..n], &b[..n], "committed prefixes diverge");
            }
        }
        // Something was committed (the no-op at least).
        assert!(logs.iter().any(|l| !l.is_empty()));
    }

    #[test]
    fn single_member_quorum_self_elects() {
        let mut sim = Sim::new(3);
        let pids = spawn_quorum(&mut sim, 1);
        sim.run_until(SimTime::from_secs(10));
        assert!(sim
            .process_ref::<KraftController>(pids[0])
            .unwrap()
            .is_active());
    }

    #[test]
    fn deterministic_leader_for_fixed_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut sim = Sim::new(seed);
            let pids = spawn_quorum(&mut sim, 3);
            sim.run_until(SimTime::from_secs(15));
            pids.iter()
                .map(|p| sim.process_ref::<KraftController>(*p).unwrap().is_active())
                .collect()
        };
        assert_eq!(run(42), run(42));
    }
}
