//! Configuration for brokers, producers, consumers, and the cluster.
//!
//! These mirror the knobs stream2gym exposes through its YAML component
//! configuration files (`brokerCfg`, `prodCfg`, `consCfg` in Table I) plus
//! the topic configuration graph attribute (`topicCfg`).

use s2g_proto::{AckMode, Compression};
use s2g_sim::SimDuration;

/// How cluster metadata and leader election are coordinated.
///
/// The §V-B partition experiment contrasts the two: the ZooKeeper-era data
/// consolidation mechanism silently discards messages on partition heal,
/// while "we were not able to observe a similar behavior in the more recent
/// Raft-based Kafka".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoordinationMode {
    /// ZooKeeper-style: session-based liveness on a singleton coordinator;
    /// isolated leaders keep serving `acks=1` writes and locally shrink
    /// their ISR, so healing truncates acknowledged records (the
    /// Alquraan et al. OSDI'18 bug reproduced by Fig. 6b).
    #[default]
    Zk,
    /// KRaft-style: a Raft quorum holds the metadata log; leaders require a
    /// fresh controller lease to serve, so an isolated leader rejects
    /// produce requests instead of accepting doomed writes.
    Kraft,
}

/// Per-broker tunables (the `brokerCfg` YAML file).
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Follower replication fetch interval.
    pub replica_fetch_interval: SimDuration,
    /// Max records returned per replica fetch.
    pub replica_fetch_max_records: usize,
    /// A follower lagging longer than this is dropped from the ISR
    /// (Kafka's `replica.lag.time.max.ms`).
    pub replica_lag_max: SimDuration,
    /// How often the leader re-evaluates ISR membership.
    pub isr_check_interval: SimDuration,
    /// Broker → controller heartbeat period.
    pub heartbeat_interval: SimDuration,
    /// In KRaft mode, a broker that has not heard a heartbeat ack within
    /// this window considers itself fenced and stops serving.
    pub session_timeout: SimDuration,
    /// CPU cost per produce/fetch request, base.
    pub cpu_per_request: SimDuration,
    /// CPU cost per record handled.
    pub cpu_per_record: SimDuration,
    /// Background (JVM-style) CPU churn executed every `background_interval`.
    pub background_cpu: SimDuration,
    /// Period of the background churn.
    pub background_interval: SimDuration,
    /// One-time CPU cost of starting the broker (system setup, §VI-C notes
    /// most demand stems from setup).
    pub startup_cpu: SimDuration,
    /// Max records returned per consumer fetch.
    pub fetch_max_records: usize,
    /// Records per log segment before the partition log rolls (Kafka's
    /// `log.segment.bytes`, counted in records here); segments are the unit
    /// of durable-log persistence and restart replay.
    pub log_segment_max_records: usize,
    /// How often a broker with a log backend flushes follower appends,
    /// watermark moves, and committed offsets that are not already covered
    /// by a produce-triggered flush.
    pub log_flush_interval: SimDuration,
    /// How often the log cleaner runs compaction/retention over the
    /// partition logs (Kafka's `log.cleaner` thread). Cleaning only happens
    /// when `log_compaction`, `log_retention_age`, or
    /// `log_retention_bytes` enables a policy.
    pub log_cleanup_interval: SimDuration,
    /// Keyed compaction: keep only the latest committed record per key in
    /// sealed segments (Kafka's `cleanup.policy=compact`). Bounds restart
    /// replay by live keys instead of by history.
    pub log_compaction: bool,
    /// Time-based retention: sealed, fully committed segments whose newest
    /// record is older than this are dropped and the log start advances
    /// (Kafka's `log.retention.ms`).
    pub log_retention_age: Option<SimDuration>,
    /// Size-based retention: oldest sealed committed segments are dropped
    /// until retained bytes fit under this cap (Kafka's
    /// `log.retention.bytes`), per partition.
    pub log_retention_bytes: Option<usize>,
    /// A consumer-group member whose heartbeats stop for longer than this
    /// is evicted by the coordinator and its partitions are reassigned to
    /// the surviving members (Kafka's `group.session.timeout.ms`).
    pub group_session_timeout: SimDuration,
    /// Quorum slack for `acks=all`: the high watermark (and therefore the
    /// ack) advances once all but this many ISR members have appended.
    /// Zero (the default) is the strict Kafka semantics — every in-sync
    /// replica must have the record; `1` tolerates the single slowest ISR
    /// member, trading a sliver of the durability guarantee for tail
    /// latency.
    pub acks_all_slack: u32,
    /// Minimum ISR size for `acks=all` produce (Kafka's
    /// `min.insync.replicas`): when the ISR has shrunk below this, the
    /// leader rejects `acks=all` writes with
    /// [`NotEnoughReplicas`](s2g_proto::ErrorCode::NotEnoughReplicas)
    /// rather than accept records that only a rump quorum would hold.
    pub min_insync_replicas: u32,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            replica_fetch_interval: SimDuration::from_millis(50),
            replica_fetch_max_records: 1_000,
            replica_lag_max: SimDuration::from_secs(10),
            isr_check_interval: SimDuration::from_secs(1),
            heartbeat_interval: SimDuration::from_secs(2),
            session_timeout: SimDuration::from_secs(6),
            cpu_per_request: SimDuration::from_micros(20),
            cpu_per_record: SimDuration::from_micros(2),
            background_cpu: SimDuration::from_millis(5),
            background_interval: SimDuration::from_millis(100),
            startup_cpu: SimDuration::from_millis(600),
            fetch_max_records: 500,
            log_segment_max_records: 128,
            log_flush_interval: SimDuration::from_millis(500),
            log_cleanup_interval: SimDuration::from_secs(5),
            log_compaction: false,
            log_retention_age: None,
            log_retention_bytes: None,
            group_session_timeout: SimDuration::from_secs(4),
            acks_all_slack: 0,
            min_insync_replicas: 1,
        }
    }
}

impl BrokerConfig {
    /// True when any cleaning policy (compaction or retention) is enabled.
    pub fn cleaning_enabled(&self) -> bool {
        self.log_compaction
            || self.log_retention_age.is_some()
            || self.log_retention_bytes.is_some()
    }
}

/// Producer client tunables (the `prodCfg` YAML file, Fig. 3a).
#[derive(Debug, Clone)]
pub struct ProducerConfig {
    /// Buffer pool for queued-but-unsent records (Kafka `buffer.memory`;
    /// the paper evaluates 16 MB vs 32 MB in Fig. 9c).
    pub buffer_memory: usize,
    /// Time to wait for more records before sending a partial batch.
    pub linger: SimDuration,
    /// Max records per produce request.
    pub batch_max_records: usize,
    /// Max accumulated record bytes before a batch is sealed and sent even
    /// if `linger` has not elapsed and `batch_max_records` is not reached
    /// (Kafka `batch.size`).
    pub batch_max_bytes: usize,
    /// Compression codec applied when a batch is sealed. Shrinks the wire
    /// footprint of every hop that carries the batch (produce, replica
    /// fetch, consumer fetch) at the price of
    /// [`compress_cpu_per_byte`](Self::compress_cpu_per_byte) here and
    /// [`decompress_cpu_per_byte`](ConsumerConfig::decompress_cpu_per_byte)
    /// on the consumer (Kafka `compression.type`).
    pub compression: Compression,
    /// CPU cost per record byte spent compressing a sealed batch. Only
    /// charged when [`compression`](Self::compression) is not `None`.
    pub compress_cpu_per_byte: SimDuration,
    /// Per-request timeout before a retry (Kafka `request.timeout.ms`,
    /// Fig. 3a shows 2000 ms).
    pub request_timeout: SimDuration,
    /// Total time a record may spend retrying before being reported lost
    /// (Kafka `delivery.timeout.ms`, default 120 s).
    pub delivery_timeout: SimDuration,
    /// Backoff between retries.
    pub retry_backoff: SimDuration,
    /// Acknowledgement mode.
    pub acks: AckMode,
    /// CPU cost per record produced (serialization).
    pub cpu_per_record: SimDuration,
    /// Background CPU churn per `background_interval`.
    pub background_cpu: SimDuration,
    /// Period of the background churn.
    pub background_interval: SimDuration,
    /// One-time startup CPU cost.
    pub startup_cpu: SimDuration,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            buffer_memory: 32 * 1024 * 1024,
            linger: SimDuration::from_millis(5),
            batch_max_records: 500,
            batch_max_bytes: 64 * 1024,
            compression: Compression::None,
            compress_cpu_per_byte: SimDuration::from_nanos(2),
            request_timeout: SimDuration::from_secs(2),
            delivery_timeout: SimDuration::from_secs(120),
            retry_backoff: SimDuration::from_millis(100),
            acks: AckMode::Leader,
            cpu_per_record: SimDuration::from_micros(3),
            background_cpu: SimDuration::from_millis(2),
            background_interval: SimDuration::from_millis(100),
            startup_cpu: SimDuration::from_millis(300),
        }
    }
}

/// Consumer client tunables (the `consCfg` YAML file).
#[derive(Debug, Clone)]
pub struct ConsumerConfig {
    /// Poll period when the last fetch returned nothing.
    pub poll_interval: SimDuration,
    /// Max records per fetch.
    pub max_poll_records: usize,
    /// CPU cost per record consumed (deserialization + app work); this is
    /// what caps aggregate throughput at the host core count in Fig. 7a.
    pub cpu_per_record: SimDuration,
    /// CPU cost per record byte spent decompressing fetched batches; only
    /// charged when a batch arrives compressed.
    pub decompress_cpu_per_byte: SimDuration,
    /// Background CPU churn per `background_interval`.
    pub background_cpu: SimDuration,
    /// Period of the background churn.
    pub background_interval: SimDuration,
    /// One-time startup CPU cost.
    pub startup_cpu: SimDuration,
    /// Consumer group for broker-side committed offsets (Kafka `group.id`).
    /// When set, the client fetches the group's committed positions before
    /// its first fetch and resumes there — the recovery path after a crash.
    /// `None` (the default) starts every partition at offset zero.
    pub group: Option<String>,
    /// When a group is set and this is non-zero, the client commits its
    /// positions to the broker on this period (Kafka's auto-commit).
    /// [`SimDuration::ZERO`] disables periodic commits; an embedding
    /// checkpoint coordinator then owns the commit schedule.
    pub auto_commit_interval: SimDuration,
    /// Read-committed isolation (Kafka's `isolation.level`): fetches are
    /// capped at the partition's last stable offset and records of aborted
    /// transactions are skipped — required to observe a transactional
    /// sink's exactly-once output.
    pub read_committed: bool,
    /// When a group is set, join the coordinator's membership protocol:
    /// the client fetches only the partitions the coordinator assigned it,
    /// heartbeats to stay admitted, rejoins on rebalance, and stamps
    /// commits with its `(member, generation)` fence. Off (the default),
    /// a grouped client fetches every partition of its subscriptions —
    /// the pre-membership behavior, still right for single-member groups
    /// and statically assigned SPE stage instances.
    pub group_membership: bool,
    /// Membership heartbeat period (only used with `group_membership`).
    pub group_heartbeat_interval: SimDuration,
    /// Stable member id for the membership protocol. Empty picks an
    /// unsticky default; orchestrators set it so a respawned stub rejoins
    /// as itself and sticky assignment gives its old partitions back.
    pub group_member_id: String,
}

impl Default for ConsumerConfig {
    fn default() -> Self {
        ConsumerConfig {
            poll_interval: SimDuration::from_millis(100),
            max_poll_records: 500,
            cpu_per_record: SimDuration::from_micros(2),
            decompress_cpu_per_byte: SimDuration::from_nanos(1),
            background_cpu: SimDuration::from_millis(2),
            background_interval: SimDuration::from_millis(100),
            startup_cpu: SimDuration::from_millis(300),
            group: None,
            auto_commit_interval: SimDuration::ZERO,
            read_committed: false,
            group_membership: false,
            group_heartbeat_interval: SimDuration::from_secs(1),
            group_member_id: String::new(),
        }
    }
}

/// A topic definition from the `topicCfg` graph attribute: name, partition
/// count, replication factor, and optionally a pinned primary (preferred
/// leader) broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicSpec {
    /// Topic name.
    pub name: String,
    /// Number of partitions.
    pub partitions: u32,
    /// Replication factor.
    pub replication: u32,
    /// Preferred leader broker (by index) for partition 0; remaining
    /// replicas are assigned round-robin. `None` lets the controller choose.
    pub primary: Option<u32>,
}

impl TopicSpec {
    /// A single-partition, unreplicated topic.
    pub fn new(name: impl Into<String>) -> Self {
        TopicSpec {
            name: name.into(),
            partitions: 1,
            replication: 1,
            primary: None,
        }
    }

    /// Sets the partition count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn partitions(mut self, n: u32) -> Self {
        assert!(n > 0, "a topic needs at least one partition");
        self.partitions = n;
        self
    }

    /// Sets the replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn replication(mut self, n: u32) -> Self {
        assert!(n > 0, "replication factor must be at least 1");
        self.replication = n;
        self
    }

    /// Pins the preferred leader broker.
    pub fn primary(mut self, broker: u32) -> Self {
        self.primary = Some(broker);
        self
    }
}

/// Controller tunables.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Coordination mode (ZooKeeper-style vs Raft-style).
    pub mode: CoordinationMode,
    /// A broker whose heartbeat is older than this has its session expired.
    pub session_timeout: SimDuration,
    /// How often the controller scans sessions.
    pub session_check_interval: SimDuration,
    /// Delay after a preferred leader re-registers (and rejoins the ISR)
    /// before leadership is handed back (Kafka's preferred replica
    /// election, Fig. 6d event 4).
    pub preferred_election_delay: SimDuration,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            mode: CoordinationMode::Zk,
            session_timeout: SimDuration::from_secs(6),
            session_check_interval: SimDuration::from_secs(1),
            preferred_election_delay: SimDuration::from_secs(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let b = BrokerConfig::default();
        assert!(b.replica_lag_max > b.replica_fetch_interval);
        assert!(b.session_timeout > b.heartbeat_interval);
        let p = ProducerConfig::default();
        assert!(p.delivery_timeout > p.request_timeout);
        assert_eq!(p.buffer_memory, 32 * 1024 * 1024);
        let c = ControllerConfig::default();
        assert_eq!(c.mode, CoordinationMode::Zk);
    }

    #[test]
    fn topic_spec_builder() {
        let t = TopicSpec::new("events")
            .partitions(3)
            .replication(2)
            .primary(5);
        assert_eq!(t.name, "events");
        assert_eq!(t.partitions, 3);
        assert_eq!(t.replication, 2);
        assert_eq!(t.primary, Some(5));
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = TopicSpec::new("t").partitions(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_replication_panics() {
        let _ = TopicSpec::new("t").replication(0);
    }
}
