//! The producer client: buffering, batching, retries, delivery timeouts.
//!
//! [`ProducerClient`] is an embeddable state machine (the stream processing
//! engine embeds one to emit results); [`ProducerProcess`] pairs it with a
//! pluggable [`DataSource`] to form stream2gym's standalone producer stubs.
//!
//! Faithfully modeled Kafka-producer behaviors the experiments depend on:
//!
//! * `buffer.memory` — records queue in a bounded pool (16/32 MB in Fig. 9c);
//! * `request.timeout.ms` + retries with backoff — an unreachable leader
//!   causes timed-out requests that retry until `delivery.timeout.ms`
//!   expires, which is why the disconnected producer's topic-B messages
//!   arrive with up-to-partition-length latency in Fig. 6c rather than
//!   being lost;
//! * per-partition in-flight slots — a blocked partition does not
//!   head-of-line-block the other topic.

use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};

use rand::rngs::StdRng;

use s2g_proto::{ClientRpc, CorrelationId, ProducerId, Record, RecordBatch, TopicPartition};
use s2g_sim::{
    downcast, Ctx, LedgerHandle, MemSlot, Message, Process, ProcessId, SimDuration, SimTime,
    TimerToken,
};
use s2g_telemetry::Telemetry;

use crate::config::ProducerConfig;
use crate::metadata::MetadataCache;

/// Tag namespace base for producer-owned timers and CPU work. The embedding
/// process must forward tags in `PRODUCER_TAGS..PRODUCER_TAGS_END`.
pub const PRODUCER_TAGS: u64 = 1 << 40;
/// End of the producer tag namespace (exclusive).
pub const PRODUCER_TAGS_END: u64 = 1 << 41;

mod off {
    pub const RETRY_PUMP: u64 = 1;
    pub const META_TIMEOUT: u64 = 2;
    pub const NOOP_CPU: u64 = 3;
    pub const TXN_RETRY: u64 = 4;
    pub const LINGER_BASE: u64 = 1_000;
    pub const REQ_TIMEOUT_BASE: u64 = 1_000_000;
}

/// What a data source tells its producer process to do next.
#[derive(Debug)]
pub enum SourceAction {
    /// Emit a record to `topic`, then call back after `next_after`.
    Emit {
        /// Destination topic.
        topic: String,
        /// Optional key.
        key: Option<Vec<u8>>,
        /// Payload.
        value: Vec<u8>,
        /// Delay before the next `next()` call.
        next_after: SimDuration,
    },
    /// Do nothing and call back after the given delay.
    Wait(SimDuration),
    /// The source is exhausted; stop stepping.
    Done,
}

/// A pluggable data generator for producer stubs (stream2gym's `prodType`).
pub trait DataSource: Any {
    /// Produces the next action. `now` is the current simulated time and
    /// `rng` the run's seeded generator (for stochastic sources).
    fn next(&mut self, now: SimTime, rng: &mut StdRng) -> SourceAction;
}

/// Final outcome of one produced record.
#[derive(Debug, Clone)]
pub struct ProduceOutcome {
    /// Producer-assigned sequence number.
    pub seq: u64,
    /// Destination topic.
    pub topic: String,
    /// When the record entered the producer.
    pub created: SimTime,
    /// When the outcome was decided (ack received or delivery timeout).
    pub completed: SimTime,
    /// True if the broker acknowledged the record.
    pub delivered: bool,
}

/// Producer counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProducerStats {
    /// Records accepted into the buffer.
    pub sent: u64,
    /// Records acknowledged.
    pub acked: u64,
    /// Records that exhausted their delivery timeout.
    pub failed: u64,
    /// Records rejected because the buffer pool was full.
    pub buffer_rejected: u64,
    /// Produce request retries.
    pub retries: u64,
}

#[derive(Debug)]
struct AccumBatch {
    records: Vec<Record>,
    bytes: usize,
    linger_timer: Option<TimerToken>,
}

#[derive(Debug)]
struct ReadyBatch {
    tp: TopicPartition,
    /// The sealed, shareable batch. Sealed once at flush time; every send
    /// and retry reuses it with a reference-count bump instead of cloning
    /// the records.
    batch: RecordBatch,
    /// Uncompressed record bytes, for buffer-pool accounting.
    bytes: usize,
    created: SimTime,
    attempts: u32,
    /// The open transaction the batch belongs to, captured at flush time.
    txn: Option<u64>,
}

/// One outstanding transaction-control RPC (EndTxn / TxnRecover), kept so a
/// lost request or response can be re-sent — a lost commit marker would
/// otherwise park read-committed consumers at the stale LSO forever.
#[derive(Debug, Clone, Copy)]
enum TxnCtl {
    End {
        broker: ProcessId,
        txn: u64,
        commit: bool,
    },
    Recover {
        broker: ProcessId,
        producer: ProducerId,
        commit_upto: u64,
        epoch: u32,
    },
}

#[derive(Debug)]
struct Inflight {
    batch: ReadyBatch,
    timer: TimerToken,
}

/// The embeddable producer state machine.
pub struct ProducerClient {
    id: ProducerId,
    /// This client incarnation's epoch: bumped by the orchestrator when a
    /// crashed embedding process restarts, so broker-side idempotent dedup
    /// distinguishes a fresh sequence-zero stream from a stale retry.
    epoch: u32,
    cfg: ProducerConfig,
    bootstrap: ProcessId,
    /// Every broker endpoint, in broker-id order — the rotation list used
    /// when the current bootstrap stops answering (broker crash/restart).
    bootstrap_candidates: Vec<ProcessId>,
    brokers: BTreeMap<s2g_proto::BrokerId, ProcessId>,
    metadata: MetadataCache,
    meta_versions: u64,
    meta_inflight: Option<(CorrelationId, TimerToken)>,
    next_seq: u64,
    next_corr: u64,
    corr_step: u64,
    accum: BTreeMap<String, AccumBatch>,
    topic_ids: BTreeMap<String, u64>,
    rr: BTreeMap<String, u32>,
    ready: BTreeMap<TopicPartition, VecDeque<ReadyBatch>>,
    inflight: BTreeMap<TopicPartition, Inflight>,
    corr_to_tp: HashMap<u64, TopicPartition>,
    buffer_used: usize,
    stats: ProducerStats,
    outcomes: Vec<ProduceOutcome>,
    sent_index: Vec<(String, u64, SimTime)>,
    mem: Option<(LedgerHandle, MemSlot)>,
    /// The open transaction stamped on produced batches, when transactional.
    txn: Option<u64>,
    /// Records handed to the buffer per transaction.
    txn_sent: BTreeMap<u64, u64>,
    /// Records *acknowledged* per transaction. Failed (delivery-timeout)
    /// records deliberately do not count: a transaction whose staged batch
    /// did not fully reach the broker must never look committable — the
    /// checkpoint stalls instead of committing a hole into the sink.
    txn_done: BTreeMap<u64, u64>,
    /// Outstanding EndTxn/TxnRecover RPCs by correlation id.
    txn_ctl: BTreeMap<u64, TxnCtl>,
    /// Telemetry sink; records nothing until a scope is attached.
    tele: Telemetry,
    /// Scope metrics are recorded under; empty means detached.
    tele_scope: String,
}

impl ProducerClient {
    /// Creates a client. `bootstrap` is the broker used for metadata;
    /// `brokers` maps broker ids to process ids. `corr_parity` (0 or 1)
    /// disambiguates correlation ids when a producer and consumer client
    /// share one process.
    pub fn new(
        id: ProducerId,
        cfg: ProducerConfig,
        bootstrap: ProcessId,
        brokers: BTreeMap<s2g_proto::BrokerId, ProcessId>,
        corr_parity: u64,
    ) -> Self {
        ProducerClient {
            id,
            epoch: 0,
            cfg,
            bootstrap,
            bootstrap_candidates: brokers.values().copied().collect(),
            brokers,
            metadata: MetadataCache::new(),
            meta_versions: 0,
            meta_inflight: None,
            next_seq: 0,
            next_corr: corr_parity,
            corr_step: 2,
            accum: BTreeMap::new(),
            topic_ids: BTreeMap::new(),
            rr: BTreeMap::new(),
            ready: BTreeMap::new(),
            inflight: BTreeMap::new(),
            corr_to_tp: HashMap::new(),
            buffer_used: 0,
            stats: ProducerStats::default(),
            outcomes: Vec::new(),
            sent_index: Vec::new(),
            mem: None,
            txn: None,
            txn_sent: BTreeMap::new(),
            txn_done: BTreeMap::new(),
            txn_ctl: BTreeMap::new(),
            tele: Telemetry::new(),
            tele_scope: String::new(),
        }
    }

    /// Attaches the run-wide telemetry sink. The client records sent /
    /// acked record counts, produce trace events, and transaction
    /// begin/commit instants under `scope`.
    pub fn set_telemetry(&mut self, tele: Telemetry, scope: impl Into<String>) {
        self.tele = tele;
        self.tele_scope = scope.into();
    }

    /// Attaches a memory-ledger slot; dynamic usage tracks the buffer fill.
    pub fn set_mem_slot(&mut self, ledger: LedgerHandle, slot: MemSlot) {
        self.mem = Some((ledger, slot));
    }

    /// This producer's id.
    pub fn id(&self) -> ProducerId {
        self.id
    }

    /// Sets the producer epoch stamped on every record (Kafka's producer
    /// epoch). Call on a respawned client so its fresh sequence numbers are
    /// not mistaken for retries of the previous incarnation's.
    pub fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Opens (or closes, with `None`) the transaction stamped on produced
    /// batches. Call [`flush_all`](Self::flush_all) first when switching
    /// transactions so accumulating records are not carried into the new
    /// one — a transactional sink flushes at every checkpoint capture.
    pub fn set_transactional(&mut self, txn: Option<u64>) {
        self.txn = txn;
    }

    /// The currently open transaction, if any.
    pub fn current_txn(&self) -> Option<u64> {
        self.txn
    }

    /// Records of transaction `txn` not yet acknowledged by the broker —
    /// the commit barrier of a transactional sink. Failed records keep the
    /// count positive forever: committing (or durably preparing) a
    /// transaction with records missing from the log would silently break
    /// exactly-once, so the pipeline stalls instead.
    pub fn txn_outstanding(&self, txn: u64) -> u64 {
        let sent = self.txn_sent.get(&txn).copied().unwrap_or(0);
        let done = self.txn_done.get(&txn).copied().unwrap_or(0);
        sent.saturating_sub(done)
    }

    /// True while an EndTxn/TxnRecover marker is awaiting its broker ack.
    pub fn txn_ctl_pending(&self) -> bool {
        !self.txn_ctl.is_empty()
    }

    /// Sends the commit (or abort) marker for `txn` to every broker; lost
    /// markers are re-sent on the retry timer until acknowledged.
    pub fn end_txn(&mut self, ctx: &mut Ctx<'_>, txn: u64, commit: bool) {
        if !self.tele_scope.is_empty() && self.tele.trace_enabled() {
            self.tele.trace_instant(
                ctx.now(),
                &self.tele_scope,
                if commit {
                    "txn:end:commit"
                } else {
                    "txn:end:abort"
                },
                "txn",
            );
        }
        let brokers = self.broker_endpoints();
        for broker in brokers {
            let corr = self.next_corr();
            self.txn_ctl.insert(
                corr.0,
                TxnCtl::End {
                    broker,
                    txn,
                    commit,
                },
            );
            ctx.send(
                broker,
                ClientRpc::EndTxn {
                    corr,
                    producer: self.id,
                    txn,
                    commit,
                },
            );
        }
        self.arm_txn_retry(ctx);
    }

    /// Asks every broker to resolve the transactions a crashed incarnation
    /// of this producer left open: commit those at or below `commit_upto`
    /// (their checkpoint is durable), abort the rest. The recover carries
    /// this incarnation's epoch, so only older incarnations' transactions
    /// are touched even when the RPC is delayed or retried.
    pub fn recover_txns(&mut self, ctx: &mut Ctx<'_>, commit_upto: u64) {
        let id = self.id;
        self.recover_txns_for(ctx, id, commit_upto);
    }

    /// Like [`recover_txns`](Self::recover_txns) but for an arbitrary
    /// producer id — the rescale path, where a shrunk stage's surviving
    /// instance resolves the transactions of old instances that have no
    /// successor (their producer ids never come back).
    pub fn recover_txns_for(&mut self, ctx: &mut Ctx<'_>, producer: ProducerId, commit_upto: u64) {
        let brokers = self.broker_endpoints();
        let epoch = self.epoch;
        for broker in brokers {
            let corr = self.next_corr();
            self.txn_ctl.insert(
                corr.0,
                TxnCtl::Recover {
                    broker,
                    producer,
                    commit_upto,
                    epoch,
                },
            );
            ctx.send(
                broker,
                ClientRpc::TxnRecover {
                    corr,
                    producer,
                    commit_upto,
                    epoch,
                },
            );
        }
        self.arm_txn_retry(ctx);
    }

    fn broker_endpoints(&self) -> Vec<ProcessId> {
        self.brokers.values().copied().collect()
    }

    fn arm_txn_retry(&mut self, ctx: &mut Ctx<'_>) {
        if !self.txn_ctl.is_empty() {
            ctx.set_timer(self.cfg.request_timeout, PRODUCER_TAGS + off::TXN_RETRY);
        }
    }

    fn retry_txn_ctl(&mut self, ctx: &mut Ctx<'_>) {
        if self.txn_ctl.is_empty() {
            return;
        }
        let pending: Vec<TxnCtl> = std::mem::take(&mut self.txn_ctl).into_values().collect();
        for ctl in pending {
            let corr = self.next_corr();
            self.txn_ctl.insert(corr.0, ctl);
            match ctl {
                TxnCtl::End {
                    broker,
                    txn,
                    commit,
                } => ctx.send(
                    broker,
                    ClientRpc::EndTxn {
                        corr,
                        producer: self.id,
                        txn,
                        commit,
                    },
                ),
                TxnCtl::Recover {
                    broker,
                    producer,
                    commit_upto,
                    epoch,
                } => ctx.send(
                    broker,
                    ClientRpc::TxnRecover {
                        corr,
                        producer,
                        commit_upto,
                        epoch,
                    },
                ),
            }
        }
        self.arm_txn_retry(ctx);
    }

    /// Counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }

    /// Per-record outcomes (ack / delivery-timeout), in completion order.
    pub fn outcomes(&self) -> &[ProduceOutcome] {
        &self.outcomes
    }

    /// Every record accepted into the buffer, as `(topic, seq, created)` in
    /// production order — the message axis of delivery matrices (Fig. 6b).
    pub fn sent_index(&self) -> &[(String, u64, SimTime)] {
        &self.sent_index
    }

    /// Bytes currently queued in the buffer pool.
    pub fn buffer_used(&self) -> usize {
        self.buffer_used
    }

    /// Kicks off metadata discovery. Call from `on_start`.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.request_metadata(ctx);
    }

    fn next_corr(&mut self) -> CorrelationId {
        let c = self.next_corr;
        self.next_corr += self.corr_step;
        CorrelationId(c)
    }

    fn update_mem(&mut self) {
        if let Some((ledger, slot)) = &self.mem {
            ledger
                .borrow_mut()
                .set_dynamic(*slot, self.buffer_used as u64);
        }
    }

    fn request_metadata(&mut self, ctx: &mut Ctx<'_>) {
        if self.meta_inflight.is_some() {
            return;
        }
        let corr = self.next_corr();
        let timer = ctx.set_timer(self.cfg.request_timeout, PRODUCER_TAGS + off::META_TIMEOUT);
        self.meta_inflight = Some((corr, timer));
        ctx.send(self.bootstrap, ClientRpc::MetadataRequest { corr });
    }

    /// Advances to the next broker endpoint for bootstrap traffic (called
    /// after a metadata timeout, i.e. the current endpoint is unreachable).
    fn rotate_bootstrap(&mut self) {
        if self.bootstrap_candidates.len() < 2 {
            return;
        }
        let cur = self
            .bootstrap_candidates
            .iter()
            .position(|p| *p == self.bootstrap)
            .unwrap_or(0);
        self.bootstrap = self.bootstrap_candidates[(cur + 1) % self.bootstrap_candidates.len()];
    }

    /// Queues one record for `topic`. Returns `false` (and counts a buffer
    /// rejection) when the buffer pool is exhausted.
    pub fn send(
        &mut self,
        ctx: &mut Ctx<'_>,
        topic: &str,
        key: Option<Vec<u8>>,
        value: Vec<u8>,
    ) -> bool {
        let record = match key {
            Some(k) => Record::new(k, value, ctx.now()),
            None => Record::keyless(value, ctx.now()),
        }
        .from_producer(self.id, self.next_seq)
        .with_producer_epoch(self.epoch);
        let bytes = record.encoded_len();
        if self.buffer_used + bytes > self.cfg.buffer_memory {
            self.stats.buffer_rejected += 1;
            return false;
        }
        self.sent_index
            .push((topic.to_string(), record.producer_seq, ctx.now()));
        self.next_seq += 1;
        self.stats.sent += 1;
        if let Some(t) = self.txn {
            *self.txn_sent.entry(t).or_insert(0) += 1;
        }
        self.buffer_used += bytes;
        self.update_mem();
        if !self.cfg.cpu_per_record.is_zero() {
            ctx.exec(self.cfg.cpu_per_record, PRODUCER_TAGS + off::NOOP_CPU);
        }
        let n_topics = self.topic_ids.len() as u64;
        let topic_id = *self.topic_ids.entry(topic.to_string()).or_insert(n_topics);
        let entry = self
            .accum
            .entry(topic.to_string())
            .or_insert_with(|| AccumBatch {
                records: Vec::new(),
                bytes: 0,
                linger_timer: None,
            });
        entry.records.push(record);
        entry.bytes += bytes;
        if entry.linger_timer.is_none() {
            let t = ctx.set_timer(self.cfg.linger, PRODUCER_TAGS + off::LINGER_BASE + topic_id);
            entry.linger_timer = Some(t);
        }
        if entry.records.len() >= self.cfg.batch_max_records
            || entry.bytes >= self.cfg.batch_max_bytes
        {
            self.flush_topic(ctx, &topic.to_string());
        }
        true
    }

    /// Flushes every accumulating batch immediately.
    pub fn flush_all(&mut self, ctx: &mut Ctx<'_>) {
        let topics: Vec<String> = self.accum.keys().cloned().collect();
        for t in topics {
            self.flush_topic(ctx, &t);
        }
    }

    fn flush_topic(&mut self, ctx: &mut Ctx<'_>, topic: &String) {
        let Some(batch) = self.accum.get_mut(topic) else {
            return;
        };
        if batch.records.is_empty() {
            return;
        }
        if let Some(t) = batch.linger_timer.take() {
            ctx.cancel_timer(t);
        }
        let records = std::mem::take(&mut batch.records);
        batch.bytes = 0;
        // Partition selection. Keyed records route by the stable FNV-1a
        // key hash (`hash(key) % partitions`) — the same helper that
        // assigns key groups, so a keyed record always lands on the
        // partition whose downstream owner holds its state. Keyless
        // records keep the original behavior: the whole sub-batch goes to
        // the next round-robin partition. Partition 0 optimistically when
        // metadata has not arrived yet.
        let parts = self.metadata.partitions_of(topic);
        let n_parts = parts.len() as u32;
        let mut split: BTreeMap<TopicPartition, (Vec<Record>, usize)> = BTreeMap::new();
        let mut rr_tp: Option<TopicPartition> = None;
        for r in records {
            let rbytes = r.encoded_len();
            let tp = match (&r.key, n_parts) {
                (_, 0) => TopicPartition::new(topic.clone(), 0),
                (Some(k), _) => {
                    TopicPartition::new(topic.clone(), s2g_proto::partition_for_key(k, n_parts))
                }
                (None, _) => rr_tp
                    .get_or_insert_with(|| {
                        let rr = self.rr.entry(topic.clone()).or_insert(0);
                        let tp = parts[*rr as usize % parts.len()].clone();
                        *rr += 1;
                        tp
                    })
                    .clone(),
            };
            let slot = split.entry(tp).or_default();
            slot.0.push(r);
            slot.1 += rbytes;
        }
        for (tp, (records, bytes)) in split {
            let created = records
                .first()
                .map(|r| r.timestamp)
                .unwrap_or_else(|| ctx.now());
            let sealed = RecordBatch::from_records(records).with_compression(self.cfg.compression);
            if !sealed.compression().is_none() && !self.cfg.compress_cpu_per_byte.is_zero() {
                // Compressing the sealed batch costs CPU proportional to
                // the raw record bytes — the produce-side half of the
                // compression trade (the wire carries fewer bytes).
                ctx.exec(
                    self.cfg.compress_cpu_per_byte * bytes as u64,
                    PRODUCER_TAGS + off::NOOP_CPU,
                );
            }
            self.ready
                .entry(tp.clone())
                .or_default()
                .push_back(ReadyBatch {
                    tp,
                    batch: sealed,
                    bytes,
                    created,
                    attempts: 0,
                    txn: self.txn,
                });
        }
        self.pump(ctx);
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let tps: Vec<TopicPartition> = self
            .ready
            .iter()
            .filter(|(tp, q)| !q.is_empty() && !self.inflight.contains_key(*tp))
            .map(|(tp, _)| tp.clone())
            .collect();
        let mut need_meta = false;
        for tp in tps {
            let leader = match self.metadata.leader(&tp) {
                Some(l) => l,
                None => {
                    need_meta = true;
                    continue;
                }
            };
            let Some(&leader_pid) = self.brokers.get(&leader) else {
                need_meta = true;
                continue;
            };
            let mut batch = match self.ready.get_mut(&tp).and_then(VecDeque::pop_front) {
                Some(b) => b,
                None => continue,
            };
            batch.attempts += 1;
            let corr = self.next_corr();
            let timer = ctx.set_timer(
                self.cfg.request_timeout,
                PRODUCER_TAGS + off::REQ_TIMEOUT_BASE + corr.0,
            );
            ctx.send(
                leader_pid,
                ClientRpc::ProduceRequest {
                    corr,
                    tp: tp.clone(),
                    // Arc bump, not a record copy — the retry path keeps
                    // the same sealed batch alive in `inflight`.
                    batch: batch.batch.clone(),
                    acks: self.cfg.acks,
                    // Stamp the reign this produce is aimed at; a broker on
                    // a newer epoch bounces it (StaleEpoch, retriable) and
                    // the metadata refresh re-aims the retry.
                    epoch: self.metadata.epoch(&tp),
                    txn: batch.txn,
                },
            );
            if !self.tele_scope.is_empty() {
                self.tele
                    .counter_add(&self.tele_scope, "records_sent", batch.batch.len() as u64);
                if self.tele.trace_enabled() {
                    self.tele.trace_instant(
                        ctx.now(),
                        &self.tele_scope,
                        &format!("produce:{tp}"),
                        "producer",
                    );
                }
            }
            self.corr_to_tp.insert(corr.0, tp.clone());
            self.inflight.insert(tp, Inflight { batch, timer });
        }
        if need_meta {
            self.request_metadata(ctx);
        }
    }

    fn complete_batch(&mut self, now: SimTime, batch: ReadyBatch, delivered: bool) {
        self.buffer_used -= batch.bytes;
        self.update_mem();
        if let (Some(t), true) = (batch.txn, delivered) {
            *self.txn_done.entry(t).or_insert(0) += batch.batch.len() as u64;
        }
        if delivered {
            self.stats.acked += batch.batch.len() as u64;
        } else {
            self.stats.failed += batch.batch.len() as u64;
        }
        if !self.tele_scope.is_empty() {
            self.tele.counter_add(
                &self.tele_scope,
                if delivered {
                    "records_acked"
                } else {
                    "records_failed"
                },
                batch.batch.len() as u64,
            );
        }
        for r in batch.batch.iter() {
            self.outcomes.push(ProduceOutcome {
                seq: r.producer_seq,
                topic: batch.tp.topic.clone(),
                created: r.timestamp,
                completed: now,
                delivered,
            });
        }
    }

    fn retry_or_fail(&mut self, ctx: &mut Ctx<'_>, batch: ReadyBatch) {
        let now = ctx.now();
        if now.saturating_since(batch.created) > self.cfg.delivery_timeout {
            self.complete_batch(now, batch, false);
            return;
        }
        self.stats.retries += 1;
        self.ready
            .entry(batch.tp.clone())
            .or_default()
            .push_front(batch);
        self.request_metadata(ctx);
        ctx.set_timer(self.cfg.retry_backoff, PRODUCER_TAGS + off::RETRY_PUMP);
    }

    /// Handles an incoming message. Returns the message back when it is not
    /// addressed to this client.
    pub fn handle_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: Box<dyn Message>,
    ) -> Option<Box<dyn Message>> {
        let rpc = match downcast::<ClientRpc>(msg) {
            Ok(r) => r,
            Err(m) => return Some(m),
        };
        match *rpc {
            ClientRpc::ProduceResponse { corr, error, .. } => {
                // A missing entry means a stale response for a timed-out
                // request: consume the message without acting on it.
                let tp = self.corr_to_tp.remove(&corr.0)?;
                let inflight = self.inflight.remove(&tp)?;
                ctx.cancel_timer(inflight.timer);
                if error.is_ok() {
                    let now = ctx.now();
                    self.complete_batch(now, inflight.batch, true);
                } else if error.is_retriable() {
                    self.retry_or_fail(ctx, inflight.batch);
                } else {
                    let now = ctx.now();
                    self.complete_batch(now, inflight.batch, false);
                }
                self.pump(ctx);
                None
            }
            ClientRpc::MetadataResponse { corr, partitions } => {
                match self.meta_inflight {
                    Some((c, timer)) if c == corr => {
                        ctx.cancel_timer(timer);
                        self.meta_inflight = None;
                        self.meta_versions += 1;
                        self.metadata
                            .install_snapshot(partitions, self.meta_versions);
                        self.pump(ctx);
                        None
                    }
                    // Not ours — may belong to a co-embedded consumer client.
                    _ => Some(Box::new(ClientRpc::MetadataResponse { corr, partitions })),
                }
            }
            ClientRpc::EndTxnResponse { corr, error } => {
                // A fenced (or otherwise failed) marker was NOT applied:
                // keep the entry so the retry timer re-sends it, or the LSO
                // would park read-committed consumers forever.
                if error.is_ok() {
                    self.txn_ctl.remove(&corr.0);
                }
                None
            }
            ClientRpc::TxnRecoverResponse { corr } => {
                self.txn_ctl.remove(&corr.0);
                None
            }
            other => Some(Box::new(other)),
        }
    }

    /// Handles a timer tag in the producer namespace. Returns `true` if the
    /// tag belonged to this client.
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> bool {
        if !(PRODUCER_TAGS..PRODUCER_TAGS_END).contains(&tag) {
            return false;
        }
        let o = tag - PRODUCER_TAGS;
        if o == off::RETRY_PUMP {
            self.pump(ctx);
        } else if o == off::TXN_RETRY {
            self.retry_txn_ctl(ctx);
        } else if o == off::META_TIMEOUT {
            // Metadata request lost — the bootstrap may be down (broker
            // crash). Rotate to the next broker endpoint and retry; a
            // single-broker cluster retries the same endpoint until its
            // restart answers.
            self.meta_inflight = None;
            self.rotate_bootstrap();
            self.request_metadata(ctx);
        } else if (off::LINGER_BASE..off::REQ_TIMEOUT_BASE).contains(&o) {
            let topic_id = o - off::LINGER_BASE;
            let topic = self
                .topic_ids
                .iter()
                .find(|(_, id)| **id == topic_id)
                .map(|(t, _)| t.clone());
            if let Some(t) = topic {
                if let Some(b) = self.accum.get_mut(&t) {
                    b.linger_timer = None;
                }
                self.flush_topic(ctx, &t);
            }
        } else if o >= off::REQ_TIMEOUT_BASE {
            let corr = o - off::REQ_TIMEOUT_BASE;
            if let Some(tp) = self.corr_to_tp.remove(&corr) {
                if let Some(inflight) = self.inflight.remove(&tp) {
                    self.retry_or_fail(ctx, inflight.batch);
                }
            }
        }
        true
    }
}

impl std::fmt::Debug for ProducerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProducerClient")
            .field("id", &self.id)
            .field("buffer_used", &self.buffer_used)
            .field("stats", &self.stats)
            .finish()
    }
}

/// A standalone producer stub: a [`ProducerClient`] driven by a
/// [`DataSource`], with background CPU churn for the resource model.
pub struct ProducerProcess {
    client: ProducerClient,
    source: Box<dyn DataSource>,
    source_done: bool,
    name: String,
}

const SOURCE_STEP: u64 = 0;
const BACKGROUND_TICK: u64 = 1;
const BACKGROUND_DONE: u64 = 2;
const STARTUP_DONE: u64 = 3;

impl ProducerProcess {
    /// Attaches the run-wide telemetry sink under this process's name.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        let scope = self.name.clone();
        self.client.set_telemetry(tele, scope);
    }

    /// Creates a producer stub.
    pub fn new(client: ProducerClient, source: Box<dyn DataSource>) -> Self {
        let name = format!("producer-{}", client.id().0);
        ProducerProcess {
            client,
            source,
            source_done: false,
            name,
        }
    }

    /// The embedded client (stats, outcomes).
    pub fn client(&self) -> &ProducerClient {
        &self.client
    }

    /// The data source, downcast to its concrete type.
    pub fn source_as<T: DataSource>(&self) -> Option<&T> {
        (self.source.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    fn step_source(&mut self, ctx: &mut Ctx<'_>) {
        if self.source_done {
            return;
        }
        let now = ctx.now();
        let action = {
            let rng = ctx.rng();
            // Split borrow: rng and source are independent.
            self.source.next(now, rng)
        };
        match action {
            SourceAction::Emit {
                topic,
                key,
                value,
                next_after,
            } => {
                self.client.send(ctx, &topic, key, value);
                ctx.set_timer(next_after, SOURCE_STEP);
            }
            SourceAction::Wait(d) => {
                ctx.set_timer(d, SOURCE_STEP);
            }
            SourceAction::Done => {
                self.source_done = true;
                self.client.flush_all(ctx);
            }
        }
    }
}

impl Process for ProducerProcess {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.exec(self.client.cfg.startup_cpu, STARTUP_DONE);
        self.client.start(ctx);
        ctx.set_timer(SimDuration::ZERO, SOURCE_STEP);
        ctx.set_timer(self.client.cfg.background_interval, BACKGROUND_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        self.client.handle_message(ctx, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if self.client.handle_timer(ctx, tag) {
            return;
        }
        match tag {
            SOURCE_STEP => self.step_source(ctx),
            BACKGROUND_TICK => {
                if !self.client.cfg.background_cpu.is_zero() {
                    ctx.exec(self.client.cfg.background_cpu, BACKGROUND_DONE);
                }
                ctx.set_timer(self.client.cfg.background_interval, BACKGROUND_TICK);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for ProducerProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProducerProcess")
            .field("client", &self.client)
            .finish()
    }
}
