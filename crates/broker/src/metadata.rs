//! Cluster metadata: partition assignments and client/broker-side caches.

use std::collections::BTreeMap;

use s2g_proto::{BrokerId, LeaderEpoch, MetadataRecord, PartitionMetadata, TopicPartition};

use crate::config::TopicSpec;

/// Plans replica assignments for a set of topics across a broker list.
///
/// The first replica of each partition is its *preferred leader*. For
/// partition 0 of a topic with a pinned `primary`, that broker leads;
/// remaining replicas (and further partitions) are assigned round-robin,
/// like Kafka's default assignment strategy.
///
/// # Panics
///
/// Panics if a topic's replication factor exceeds the broker count or its
/// pinned primary is not in `brokers`.
pub fn plan_assignments(topics: &[TopicSpec], brokers: &[BrokerId]) -> Vec<PartitionMetadata> {
    // Every broker on its own rack: the rack-aware planner then always
    // prefers the cyclically next broker, i.e. Kafka's plain round-robin.
    let racked: Vec<(BrokerId, String)> =
        brokers.iter().map(|b| (*b, format!("b{}", b.0))).collect();
    plan_assignments_racked(topics, &racked)
}

/// Rack/host-aware replica placement: like [`plan_assignments`], but each
/// broker carries a rack (in practice, the emulated host it runs on).
/// Followers are chosen walking cyclically from the leader, preferring
/// brokers on racks not yet holding a replica of the partition, so a
/// single rack/host failure takes out at most one replica whenever the
/// rack count allows it. When racks are all distinct this degenerates to
/// the plain consecutive round-robin.
///
/// # Panics
///
/// Panics under the same conditions as [`plan_assignments`].
pub fn plan_assignments_racked(
    topics: &[TopicSpec],
    brokers: &[(BrokerId, String)],
) -> Vec<PartitionMetadata> {
    assert!(
        !brokers.is_empty(),
        "cannot assign partitions with no brokers"
    );
    let mut out = Vec::new();
    let mut rr = 0usize;
    for topic in topics {
        assert!(
            topic.replication as usize <= brokers.len(),
            "topic `{}` wants replication {} but only {} brokers exist",
            topic.name,
            topic.replication,
            brokers.len()
        );
        for p in 0..topic.partitions {
            let lead_idx = match (p, topic.primary) {
                (0, Some(primary)) => brokers
                    .iter()
                    .position(|(b, _)| b.0 == primary)
                    .unwrap_or_else(|| {
                        panic!(
                            "topic `{}` pins unknown primary broker {primary}",
                            topic.name
                        )
                    }),
                _ => {
                    let i = rr % brokers.len();
                    rr += 1;
                    i
                }
            };
            let mut chosen = vec![lead_idx];
            while chosen.len() < topic.replication as usize {
                let on_new_rack =
                    |i: &usize| !chosen.iter().any(|c| brokers[*c].1 == brokers[*i].1);
                // Cyclic-first candidate on an unused rack, else
                // cyclic-first unchosen broker.
                let candidates = (1..brokers.len()).map(|k| (lead_idx + k) % brokers.len());
                let pick = candidates
                    .clone()
                    .filter(|i| !chosen.contains(i))
                    .find(on_new_rack)
                    .or_else(|| candidates.clone().find(|i| !chosen.contains(i)))
                    .expect("replication bounded by broker count");
                chosen.push(pick);
            }
            let replicas: Vec<BrokerId> = chosen.iter().map(|i| brokers[*i].0).collect();
            out.push(PartitionMetadata {
                tp: TopicPartition::new(topic.name.clone(), p),
                leader: Some(replicas[0]),
                epoch: LeaderEpoch(0),
                isr: replicas.clone(),
                replicas,
            });
        }
    }
    out
}

/// A metadata cache held by brokers and clients, updated from controller
/// [`MetadataRecord`] pushes or full [`PartitionMetadata`] snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetadataCache {
    version: u64,
    partitions: BTreeMap<TopicPartition, PartitionMetadata>,
}

impl MetadataCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The version of the last applied update.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Installs a full snapshot at `version` (used for metadata responses).
    pub fn install_snapshot(&mut self, snapshot: Vec<PartitionMetadata>, version: u64) {
        if version < self.version {
            return; // stale snapshot
        }
        self.partitions = snapshot.into_iter().map(|p| (p.tp.clone(), p)).collect();
        self.version = version;
    }

    /// Applies a delta of metadata records at `version`.
    pub fn apply(&mut self, records: &[MetadataRecord], version: u64) {
        if version <= self.version {
            return; // stale or duplicate delta
        }
        for r in records {
            if let MetadataRecord::PartitionChange {
                tp,
                leader,
                isr,
                epoch,
            } = r
            {
                let entry =
                    self.partitions
                        .entry(tp.clone())
                        .or_insert_with(|| PartitionMetadata {
                            tp: tp.clone(),
                            leader: None,
                            epoch: LeaderEpoch(0),
                            isr: Vec::new(),
                            replicas: Vec::new(),
                        });
                if *epoch >= entry.epoch {
                    entry.leader = *leader;
                    entry.isr = isr.clone();
                    entry.epoch = *epoch;
                }
            }
        }
        self.version = version;
    }

    /// The current leader of a partition, if known.
    pub fn leader(&self, tp: &TopicPartition) -> Option<BrokerId> {
        self.partitions.get(tp).and_then(|p| p.leader)
    }

    /// The cached epoch of a partition.
    pub fn epoch(&self, tp: &TopicPartition) -> LeaderEpoch {
        self.partitions.get(tp).map(|p| p.epoch).unwrap_or_default()
    }

    /// All partitions of a topic, sorted by partition index.
    pub fn partitions_of(&self, topic: &str) -> Vec<TopicPartition> {
        let mut v: Vec<TopicPartition> = self
            .partitions
            .keys()
            .filter(|tp| tp.topic == topic)
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Whether the cache knows the given topic.
    pub fn has_topic(&self, topic: &str) -> bool {
        self.partitions.keys().any(|tp| tp.topic == topic)
    }

    /// A full snapshot for serving metadata responses.
    pub fn snapshot(&self) -> Vec<PartitionMetadata> {
        let mut v: Vec<PartitionMetadata> = self.partitions.values().cloned().collect();
        v.sort_by(|a, b| a.tp.cmp(&b.tp));
        v
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brokers(n: u32) -> Vec<BrokerId> {
        (0..n).map(BrokerId).collect()
    }

    #[test]
    fn assignment_respects_primary_and_replication() {
        let topics = vec![
            TopicSpec::new("ta").replication(3).primary(2),
            TopicSpec::new("tb").replication(3).primary(7),
        ];
        let plan = plan_assignments(&topics, &brokers(10));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].leader, Some(BrokerId(2)));
        assert_eq!(
            plan[0].replicas,
            vec![BrokerId(2), BrokerId(3), BrokerId(4)]
        );
        assert_eq!(plan[1].leader, Some(BrokerId(7)));
        assert_eq!(
            plan[1].replicas,
            vec![BrokerId(7), BrokerId(8), BrokerId(9)]
        );
        assert_eq!(plan[0].isr, plan[0].replicas);
    }

    #[test]
    fn assignment_round_robins_unpinned() {
        let topics = vec![TopicSpec::new("t").partitions(4).replication(2)];
        let plan = plan_assignments(&topics, &brokers(3));
        let leaders: Vec<_> = plan.iter().map(|p| p.leader.unwrap().0).collect();
        assert_eq!(leaders, vec![0, 1, 2, 0]);
        // Replicas wrap around the broker list.
        assert_eq!(plan[2].replicas, vec![BrokerId(2), BrokerId(0)]);
    }

    #[test]
    fn racked_assignment_spreads_across_racks() {
        // Six brokers on three racks, two per rack. An RF=3 partition must
        // land one replica per rack even though the consecutive brokers
        // share racks.
        let racked: Vec<(BrokerId, String)> = (0..6)
            .map(|i| (BrokerId(i), format!("rack-{}", i / 2)))
            .collect();
        let topics = vec![TopicSpec::new("t").replication(3).primary(0)];
        let plan = plan_assignments_racked(&topics, &racked);
        assert_eq!(plan[0].leader, Some(BrokerId(0)));
        // b1 shares rack-0 with the leader, so the planner skips to b2
        // (rack-1) and then b4 (rack-2).
        assert_eq!(
            plan[0].replicas,
            vec![BrokerId(0), BrokerId(2), BrokerId(4)]
        );
        let racks: std::collections::BTreeSet<&str> = plan[0]
            .replicas
            .iter()
            .map(|b| racked[b.0 as usize].1.as_str())
            .collect();
        assert_eq!(racks.len(), 3, "one replica per rack");
    }

    #[test]
    fn racked_assignment_falls_back_when_racks_run_out() {
        // Three brokers on two racks with RF=3: the third replica must
        // reuse a rack, and the planner must still produce three distinct
        // brokers instead of stalling.
        let racked = vec![
            (BrokerId(0), "ra".to_string()),
            (BrokerId(1), "ra".to_string()),
            (BrokerId(2), "rb".to_string()),
        ];
        let topics = vec![TopicSpec::new("t").replication(3).primary(0)];
        let plan = plan_assignments_racked(&topics, &racked);
        assert_eq!(
            plan[0].replicas,
            vec![BrokerId(0), BrokerId(2), BrokerId(1)]
        );
    }

    #[test]
    #[should_panic(expected = "replication 4")]
    fn overreplication_panics() {
        let topics = vec![TopicSpec::new("t").replication(4)];
        plan_assignments(&topics, &brokers(3));
    }

    #[test]
    #[should_panic(expected = "unknown primary")]
    fn unknown_primary_panics() {
        let topics = vec![TopicSpec::new("t").primary(99)];
        plan_assignments(&topics, &brokers(3));
    }

    #[test]
    fn cache_applies_versioned_deltas() {
        let mut cache = MetadataCache::new();
        let tp = TopicPartition::new("t", 0);
        cache.apply(
            &[MetadataRecord::PartitionChange {
                tp: tp.clone(),
                leader: Some(BrokerId(1)),
                isr: vec![BrokerId(1)],
                epoch: LeaderEpoch(1),
            }],
            1,
        );
        assert_eq!(cache.leader(&tp), Some(BrokerId(1)));
        // A stale delta (same version) is ignored.
        cache.apply(
            &[MetadataRecord::PartitionChange {
                tp: tp.clone(),
                leader: Some(BrokerId(9)),
                isr: vec![],
                epoch: LeaderEpoch(9),
            }],
            1,
        );
        assert_eq!(cache.leader(&tp), Some(BrokerId(1)));
        // A newer delta with an older epoch is also ignored per-partition.
        cache.apply(
            &[MetadataRecord::PartitionChange {
                tp: tp.clone(),
                leader: Some(BrokerId(2)),
                isr: vec![],
                epoch: LeaderEpoch(0),
            }],
            2,
        );
        assert_eq!(cache.leader(&tp), Some(BrokerId(1)));
        assert_eq!(cache.version(), 2);
    }

    #[test]
    fn cache_snapshot_round_trip() {
        let plan = plan_assignments(&[TopicSpec::new("t").partitions(2)], &brokers(2));
        let mut cache = MetadataCache::new();
        cache.install_snapshot(plan.clone(), 5);
        assert_eq!(cache.version(), 5);
        assert_eq!(cache.snapshot(), plan);
        assert!(cache.has_topic("t"));
        assert!(!cache.has_topic("zz"));
        assert_eq!(cache.partitions_of("t").len(), 2);
        // Older snapshot refused.
        cache.install_snapshot(vec![], 3);
        assert_eq!(cache.len(), 2);
    }
}
