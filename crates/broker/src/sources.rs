//! Standard data sources — stream2gym's producer stub repository.
//!
//! The paper ships "standard producer/consumer stubs that developers can use
//! to quickly ingest data into or extract data from stream processing
//! pipelines according to desired patterns (e.g., producing each line of a
//! file or each file in a directory as a data element)". These are those
//! patterns as [`DataSource`] implementations.

use rand::rngs::StdRng;
use rand::Rng;

use s2g_sim::{SimDuration, SimTime};

use crate::producer::{DataSource, SourceAction};

/// Emits `count` fixed-size records to one topic at a fixed interval —
/// the workhorse for throughput experiments.
///
/// # Examples
///
/// ```
/// use s2g_broker::RateSource;
/// use s2g_sim::SimDuration;
///
/// // 1000 × 784-byte frames, one every 2 ms.
/// let src = RateSource::new("frames", 1_000, SimDuration::from_millis(2)).payload_bytes(784);
/// # let _ = src;
/// ```
#[derive(Debug)]
pub struct RateSource {
    topic: String,
    remaining: u64,
    interval: SimDuration,
    payload: usize,
    emitted: u64,
    key_space: Option<u64>,
}

impl RateSource {
    /// `count` records to `topic`, one per `interval`.
    pub fn new(topic: impl Into<String>, count: u64, interval: SimDuration) -> Self {
        RateSource {
            topic: topic.into(),
            remaining: count,
            interval,
            payload: 100,
            emitted: 0,
            key_space: None,
        }
    }

    /// Sets the payload size in bytes (default 100).
    pub fn payload_bytes(mut self, n: usize) -> Self {
        self.payload = n;
        self
    }

    /// Keys records round-robin over `k` distinct keys (`k0`..`k{k-1}`) —
    /// the repeated-update workload log compaction thrives on. Default:
    /// keyless records.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn key_space(mut self, k: u64) -> Self {
        assert!(k > 0, "key space must be non-empty");
        self.key_space = Some(k);
        self
    }

    /// Records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl DataSource for RateSource {
    fn next(&mut self, _now: SimTime, _rng: &mut StdRng) -> SourceAction {
        if self.remaining == 0 {
            return SourceAction::Done;
        }
        self.remaining -= 1;
        let key = self
            .key_space
            .map(|k| format!("k{}", self.emitted % k).into_bytes());
        self.emitted += 1;
        SourceAction::Emit {
            topic: self.topic.clone(),
            key,
            value: vec![0x5a; self.payload],
            next_after: self.interval,
        }
    }
}

/// Randomly picks one of several topics per record, paced to a target
/// bitrate — the Fig. 6a workload ("a data producer that randomly injects
/// data into the two topics at a 30 Kbps rate").
#[derive(Debug)]
pub struct RandomTopicSource {
    topics: Vec<String>,
    payload: usize,
    interval: SimDuration,
    until: SimTime,
    emitted: u64,
}

impl RandomTopicSource {
    /// Emits `payload_bytes`-sized records across `topics` at `kbps`
    /// (kilobits per second) until `until`.
    ///
    /// # Panics
    ///
    /// Panics if `topics` is empty or `kbps` is zero.
    pub fn new(topics: Vec<String>, kbps: u64, payload_bytes: usize, until: SimTime) -> Self {
        assert!(!topics.is_empty(), "need at least one topic");
        assert!(kbps > 0, "rate must be positive");
        // interval = payload_bits / rate_bits_per_sec.
        let interval = SimDuration::from_nanos(payload_bytes as u64 * 8 * 1_000_000 / kbps);
        RandomTopicSource {
            topics,
            payload: payload_bytes,
            interval,
            until,
            emitted: 0,
        }
    }

    /// Records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl DataSource for RandomTopicSource {
    fn next(&mut self, now: SimTime, rng: &mut StdRng) -> SourceAction {
        if now >= self.until {
            return SourceAction::Done;
        }
        let idx = rng.gen_range(0..self.topics.len());
        self.emitted += 1;
        SourceAction::Emit {
            topic: self.topics[idx].clone(),
            key: None,
            value: vec![0xa5; self.payload],
            next_after: self.interval,
        }
    }
}

/// Emits records with exponentially distributed inter-arrival times — the
/// Poisson user traffic of the Ocampo et al. reproduction (Fig. 7b).
#[derive(Debug)]
pub struct PoissonSource {
    topic: String,
    mean_interval: SimDuration,
    payload: usize,
    until: SimTime,
    emitted: u64,
}

impl PoissonSource {
    /// Poisson arrivals at `rate_per_sec` to `topic` until `until`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive.
    pub fn new(
        topic: impl Into<String>,
        rate_per_sec: f64,
        payload_bytes: usize,
        until: SimTime,
    ) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        PoissonSource {
            topic: topic.into(),
            mean_interval: SimDuration::from_secs_f64(1.0 / rate_per_sec),
            payload: payload_bytes,
            until,
            emitted: 0,
        }
    }

    /// Records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl DataSource for PoissonSource {
    fn next(&mut self, now: SimTime, rng: &mut StdRng) -> SourceAction {
        if now >= self.until {
            return SourceAction::Done;
        }
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let gap = self.mean_interval.mul_f64(-u.ln());
        self.emitted += 1;
        SourceAction::Emit {
            topic: self.topic.clone(),
            key: None,
            value: vec![0x42; self.payload],
            next_after: gap,
        }
    }
}

/// Produces each element of a prepared corpus (e.g. each line of a file, or
/// each file of a directory) as one record — the paper's `SFST`
/// (single-file-single-topic) stub generalized.
#[derive(Debug)]
pub struct FileLinesSource {
    topic: String,
    items: Vec<String>,
    pos: usize,
    interval: SimDuration,
}

impl FileLinesSource {
    /// Emits each item of `items` to `topic`, one per `interval`.
    pub fn new(topic: impl Into<String>, items: Vec<String>, interval: SimDuration) -> Self {
        FileLinesSource {
            topic: topic.into(),
            items,
            pos: 0,
            interval,
        }
    }

    /// Items emitted so far.
    pub fn emitted(&self) -> usize {
        self.pos
    }

    /// Total items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl DataSource for FileLinesSource {
    fn next(&mut self, _now: SimTime, _rng: &mut StdRng) -> SourceAction {
        if self.pos >= self.items.len() {
            return SourceAction::Done;
        }
        let value = self.items[self.pos].clone().into_bytes();
        self.pos += 1;
        SourceAction::Emit {
            topic: self.topic.clone(),
            key: Some(format!("item-{}", self.pos - 1).into_bytes()),
            value,
            next_after: self.interval,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn drain(src: &mut dyn DataSource, limit: usize) -> Vec<SourceAction> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..limit {
            let a = src.next(now, &mut rng);
            if let SourceAction::Emit { next_after, .. } | SourceAction::Wait(next_after) = &a {
                now += *next_after;
            }
            let done = matches!(a, SourceAction::Done);
            out.push(a);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn rate_source_emits_exact_count() {
        let mut src = RateSource::new("t", 5, SimDuration::from_millis(1)).payload_bytes(10);
        let actions = drain(&mut src, 100);
        let emits = actions
            .iter()
            .filter(|a| matches!(a, SourceAction::Emit { .. }))
            .count();
        assert_eq!(emits, 5);
        assert!(matches!(actions.last(), Some(SourceAction::Done)));
        assert_eq!(src.emitted(), 5);
    }

    #[test]
    fn random_topic_source_rate_math() {
        // 500-byte records at 30 kbps → 4000 bits / 30000 bps ≈ 133.3 ms.
        let src = RandomTopicSource::new(
            vec!["a".into(), "b".into()],
            30,
            500,
            SimTime::from_secs(60),
        );
        assert_eq!(src.interval.as_millis(), 133);
    }

    #[test]
    fn random_topic_source_uses_both_topics() {
        let mut src = RandomTopicSource::new(
            vec!["a".into(), "b".into()],
            1_000,
            100,
            SimTime::from_secs(3600),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            if let SourceAction::Emit { topic, .. } = src.next(SimTime::ZERO, &mut rng) {
                match topic.as_str() {
                    "a" => seen_a = true,
                    "b" => seen_b = true,
                    other => panic!("unexpected topic {other}"),
                }
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn poisson_source_mean_interval_close_to_target() {
        let mut src = PoissonSource::new("t", 100.0, 64, SimTime::from_secs(10_000));
        let mut rng = StdRng::seed_from_u64(9);
        let mut total = SimDuration::ZERO;
        let n = 10_000;
        for _ in 0..n {
            if let SourceAction::Emit { next_after, .. } = src.next(SimTime::ZERO, &mut rng) {
                total += next_after;
            }
        }
        let mean_ms = total.as_secs_f64() * 1000.0 / n as f64;
        // Target mean 10 ms; allow 5% statistical slack.
        assert!((mean_ms - 10.0).abs() < 0.5, "mean interval {mean_ms} ms");
    }

    #[test]
    fn file_lines_source_preserves_order_and_content() {
        let items = vec!["one".to_string(), "two".to_string(), "three".to_string()];
        let mut src = FileLinesSource::new("docs", items, SimDuration::from_millis(1));
        assert_eq!(src.len(), 3);
        let actions = drain(&mut src, 10);
        let values: Vec<String> = actions
            .iter()
            .filter_map(|a| match a {
                SourceAction::Emit { value, .. } => Some(String::from_utf8(value.clone()).unwrap()),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec!["one", "two", "three"]);
        assert_eq!(src.emitted(), 3);
    }

    #[test]
    fn empty_corpus_is_done_immediately() {
        let mut src = FileLinesSource::new("docs", vec![], SimDuration::from_millis(1));
        assert!(src.is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            src.next(SimTime::ZERO, &mut rng),
            SourceAction::Done
        ));
    }
}
