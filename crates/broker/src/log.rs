//! The replicated partition log, segmented, compactable, and recoverable.
//!
//! Each broker holds one [`PartitionLog`] per replica it hosts. Entries are
//! tagged with the leader epoch under which they were appended, which is how
//! divergence is detected and reconciled after a partition heals: the
//! rejoining old leader truncates its log to match the new leader, and any
//! suffix it accepted while isolated is discarded — acknowledged or not.
//! That truncation is precisely the ZooKeeper-era silent-loss mechanism the
//! paper reproduces in Fig. 6b.
//!
//! # Segments and durability
//!
//! The log is stored as a list of [`LogSegment`]s (Kafka's on-disk layout):
//! an append rolls to a fresh segment once the active one reaches
//! `segment_max_records`. Segments are the unit of persistence — a broker
//! with an attached [`LogBackend`] flushes dirty segments plus a
//! [`BrokerLogMeta`] blob (high watermarks, consumer-group offsets, and the
//! segment manifest), and a restarted broker replays them to rebuild its
//! pre-crash state. Two backends exist:
//!
//! * [`InMemoryLogBackend`] — a shared map outside the broker process, the
//!   moral equivalent of a local disk that survives a process crash.
//!   Writes apply instantly and cost nothing.
//! * [`DurableLogBackend`] — persists through an
//!   [`s2g_store::StoreServer`], paying simulated CPU and network cost per
//!   flush and a read round trip per recovered blob, exactly like the SPE
//!   checkpoint subsystem's `DurableBackend` does for snapshots.
//!
//! # Compaction and retention
//!
//! Every entry carries its explicit offset, so the log tolerates holes:
//!
//! * [`PartitionLog::compact`] keeps only the latest record per key among
//!   committed (below-high-watermark) entries of sealed segments — Kafka's
//!   compacted-topic cleaner. Keyless records and the active segment are
//!   never touched, offsets never move, and readers see the same per-key
//!   final state as on the raw log.
//! * [`PartitionLog::apply_retention`] drops whole sealed, fully committed
//!   segments past a time or size bound, advancing the log start offset.
//!
//! Both report the segments they emptied so the broker can delete the dead
//! blobs through its [`LogBackend`] — replay cost after a restart is then
//! bounded by *live* data, not by history.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use bytes::Bytes;
use s2g_proto::codec::{put_str, put_u32, put_u64, put_u8, put_uvarint, Cursor};
use s2g_proto::{
    put_frame_record, read_frame_record, LeaderEpoch, Offset, ProducerId, Record, TopicPartition,
};
use s2g_sim::{Ctx, ProcessId, SimDuration, SimTime};
use s2g_store::BlobClient;

/// One appended entry: the record, its explicit log offset, and the epoch
/// it was written under.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The entry's log offset. Explicit (not derived from position) so
    /// compaction can remove neighbors without renumbering survivors.
    pub offset: Offset,
    /// Leader epoch at append time.
    pub epoch: LeaderEpoch,
    /// The record.
    pub record: Record,
}

/// Default record capacity of one log segment before the log rolls.
pub const DEFAULT_SEGMENT_MAX_RECORDS: usize = 128;

/// Version byte of the segment wire format: the shared batch-frame record
/// layout ([`put_frame_record`]) prefixed per entry with its leader epoch.
const SEGMENT_CODEC_VERSION: u8 = 3;

/// Previous segment format (absolute fixed-width fields per entry); still
/// decoded so logs persisted before the batch-frame refactor replay.
const SEGMENT_CODEC_V2: u8 = 2;

/// A run of log entries covering the offset range `[base, end)` — the unit
/// of persistence and replay. Compaction may leave holes inside the range;
/// the range itself never shrinks.
#[derive(Debug, Clone)]
pub struct LogSegment {
    base: u64,
    /// One past the highest offset ever assigned in this segment.
    end: u64,
    /// Timestamp base the per-entry deltas are encoded against; pinned to
    /// the first record pushed so the incrementally built encoding stays
    /// valid across later pushes and compaction.
    base_ts: SimTime,
    entries: Vec<LogEntry>,
    bytes: usize,
    dirty: bool,
    /// Entry encodings maintained incrementally on append, so flushing a
    /// hot segment is a memcpy instead of re-serializing every entry.
    enc: Vec<u8>,
}

impl LogSegment {
    fn new(base: u64) -> Self {
        LogSegment {
            base,
            end: base,
            base_ts: SimTime::ZERO,
            entries: Vec::new(),
            bytes: 0,
            dirty: false,
            enc: Vec::new(),
        }
    }

    fn push(&mut self, offset: u64, epoch: LeaderEpoch, record: Record) {
        debug_assert!(offset >= self.end, "appends must advance the offset");
        if self.entries.is_empty() {
            self.base_ts = record.timestamp;
        } else if self.enc.is_empty() {
            // The encoding was shed after a flush; rebuild before extending.
            self.rebuild_enc();
        }
        self.bytes += record.encoded_len();
        self.dirty = true;
        self.end = offset + 1;
        let entry = LogEntry {
            offset: Offset(offset),
            epoch,
            record,
        };
        encode_entry(&mut self.enc, Offset(self.base), self.base_ts, &entry);
        self.entries.push(entry);
    }

    fn rebuild_enc(&mut self) {
        self.enc.clear();
        for e in &self.entries {
            encode_entry(&mut self.enc, Offset(self.base), self.base_ts, e);
        }
    }

    /// First offset of the segment's range (set at roll time, fixed).
    pub fn base_offset(&self) -> Offset {
        Offset(self.base)
    }

    /// One past the highest offset ever assigned in the segment.
    pub fn end_offset(&self) -> Offset {
        Offset(self.end)
    }

    /// Number of entries held (compaction can make this smaller than the
    /// offset range).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the segment holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record payload bytes held (framing included).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// True when the segment has changes not yet handed to a [`LogBackend`].
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The entries held, in offset order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Serializes the segment for a [`LogBackend`]: a versioned header plus
    /// the incrementally maintained entry encodings (re-serialized from the
    /// entries when the buffer was shed after a flush).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(29 + self.enc.len());
        put_u8(&mut out, SEGMENT_CODEC_VERSION);
        put_u64(&mut out, self.base);
        put_u64(&mut out, self.end);
        put_u64(&mut out, self.base_ts.as_nanos());
        // A silent `as u32` here would truncate an oversized segment's
        // count and corrupt every replay of it; fail loudly instead.
        put_u32(
            &mut out,
            u32::try_from(self.entries.len()).expect("segment entry count fits u32"),
        );
        if self.enc.is_empty() && !self.entries.is_empty() {
            for e in &self.entries {
                encode_entry(&mut out, Offset(self.base), self.base_ts, e);
            }
        } else {
            out.extend_from_slice(&self.enc);
        }
        out
    }

    /// Deserializes a segment written by [`encode`](LogSegment::encode),
    /// accepting both the current frame-delta format and the previous
    /// absolute-field format. Returns `None` on truncated, malformed, or
    /// unknown-version input.
    pub fn decode(buf: &[u8]) -> Option<LogSegment> {
        let mut cur = Cursor::new(buf);
        match cur.u8()? {
            SEGMENT_CODEC_VERSION => Self::decode_v3(&mut cur, buf),
            SEGMENT_CODEC_V2 => Self::decode_v2(&mut cur),
            _ => None,
        }
    }

    fn decode_v3(cur: &mut Cursor<'_>, buf: &[u8]) -> Option<LogSegment> {
        let base = cur.u64()?;
        let end = cur.u64()?;
        let base_ts = SimTime::from_nanos(cur.u64()?);
        let count = cur.u32()? as usize;
        let body_start = cur.position();
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        let mut bytes = 0;
        for _ in 0..count {
            let epoch = LeaderEpoch(cur.uvarint()?);
            let (offset, record) = read_frame_record(cur, Offset(base), base_ts)?;
            bytes += record.encoded_len();
            entries.push(LogEntry {
                offset,
                epoch,
                record,
            });
        }
        let enc = buf[body_start..cur.position()].to_vec();
        Some(LogSegment {
            base,
            end,
            base_ts,
            entries,
            bytes,
            dirty: false,
            enc,
        })
    }

    fn decode_v2(cur: &mut Cursor<'_>) -> Option<LogSegment> {
        let base = cur.u64()?;
        let end = cur.u64()?;
        let count = cur.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        let mut bytes = 0;
        for _ in 0..count {
            let offset = Offset(cur.u64()?);
            let epoch = LeaderEpoch(cur.u64()?);
            let key = match cur.u8()? {
                0 => None,
                _ => Some(Bytes::copy_from_slice(cur.bytes()?)),
            };
            let value = Bytes::copy_from_slice(cur.bytes()?);
            let timestamp = SimTime::from_nanos(cur.u64()?);
            let producer = ProducerId(cur.u32()?);
            let producer_epoch = cur.u32()?;
            let producer_seq = cur.u64()?;
            let record = Record {
                key,
                value,
                timestamp,
                producer,
                producer_epoch,
                producer_seq,
            };
            bytes += record.encoded_len();
            entries.push(LogEntry {
                offset,
                epoch,
                record,
            });
        }
        let base_ts = entries
            .first()
            .map(|e| e.record.timestamp)
            .unwrap_or(SimTime::ZERO);
        let mut seg = LogSegment {
            base,
            end,
            base_ts,
            entries,
            bytes,
            dirty: false,
            enc: Vec::new(),
        };
        // Re-encode in the current format so a later flush persists v3.
        seg.rebuild_enc();
        Some(seg)
    }
}

fn encode_entry(out: &mut Vec<u8>, base: Offset, base_ts: SimTime, e: &LogEntry) {
    put_uvarint(out, e.epoch.0);
    put_frame_record(out, base, base_ts, e.offset, &e.record);
}

/// What one cleaner pass (compaction or retention) did to a partition log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleanOutcome {
    /// Records removed.
    pub removed_records: u64,
    /// Record bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Base offsets of segments that were dropped entirely; the broker
    /// deletes the matching backend blobs so replay never reads them again.
    pub dropped_segment_bases: Vec<u64>,
}

impl CleanOutcome {
    /// Folds another outcome into this one.
    pub fn merge(&mut self, other: CleanOutcome) {
        self.removed_records += other.removed_records;
        self.reclaimed_bytes += other.reclaimed_bytes;
        self.dropped_segment_bases
            .extend(other.dropped_segment_bases);
    }

    /// True when the pass removed nothing.
    pub fn is_noop(&self) -> bool {
        self.removed_records == 0 && self.dropped_segment_bases.is_empty()
    }
}

/// An append-only (except for truncation and cleaning) record log for one
/// partition.
///
/// # Examples
///
/// ```
/// use s2g_broker::PartitionLog;
/// use s2g_proto::{LeaderEpoch, Offset, Record};
/// use s2g_sim::SimTime;
///
/// let mut log = PartitionLog::new();
/// log.append(LeaderEpoch(0), Record::keyless("a", SimTime::ZERO));
/// log.append(LeaderEpoch(0), Record::keyless("b", SimTime::ZERO));
/// assert_eq!(log.log_end(), Offset(2));
/// assert_eq!(log.high_watermark(), Offset(0)); // nothing committed yet
/// log.advance_high_watermark(Offset(2));
/// assert_eq!(log.read(Offset(0), 10, true).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionLog {
    segments: Vec<LogSegment>,
    segment_max_records: usize,
    high_watermark: Offset,
    /// First retained offset; advanced by segment retention.
    log_start: Offset,
    /// Total record bytes retained (for the memory model).
    retained_bytes: usize,
    /// Records discarded by truncation — the observable "silent loss".
    truncated_records: Vec<Record>,
    /// Cumulative bytes reclaimed by compaction + retention — the replay
    /// cost this log will never pay again.
    reclaimed_bytes: u64,
}

impl Default for PartitionLog {
    fn default() -> Self {
        PartitionLog {
            segments: vec![LogSegment::new(0)],
            segment_max_records: DEFAULT_SEGMENT_MAX_RECORDS,
            high_watermark: Offset::ZERO,
            log_start: Offset::ZERO,
            retained_bytes: 0,
            truncated_records: Vec::new(),
            reclaimed_bytes: 0,
        }
    }
}

impl PartitionLog {
    /// An empty log with the default segment size.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty log that rolls segments after `max` records.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn with_segment_max(max: usize) -> Self {
        assert!(max > 0, "segment capacity must be positive");
        PartitionLog {
            segment_max_records: max,
            ..Self::default()
        }
    }

    /// Rebuilds a log from recovered segments, a persisted high watermark,
    /// and the manifest's expected segment bases (in order). Recovery keeps
    /// the longest prefix of `expected_bases` whose blobs all arrived: a
    /// blob missing from the backend (a lost flush followed by the crash)
    /// truncates the recoverable log at the gap — offsets beyond it were
    /// never durable. Bases legitimately absent from the manifest
    /// (compacted or retired segments) never appear in `expected_bases`, so
    /// they cost nothing.
    pub fn from_recovered_segments(
        segments: Vec<LogSegment>,
        high_watermark: Offset,
        log_start: Offset,
        expected_bases: &[u64],
        segment_max_records: usize,
    ) -> Self {
        let mut by_base: BTreeMap<u64, LogSegment> = segments
            .into_iter()
            .filter(|s| !s.is_empty())
            .map(|s| (s.base, s))
            .collect();
        let mut recovered: Vec<LogSegment> = Vec::new();
        for base in expected_bases {
            match by_base.remove(base) {
                Some(seg) => recovered.push(seg),
                None => break, // lost flush: the durable log ends here
            }
        }
        let mut segments = recovered;
        if segments.is_empty() {
            segments.push(LogSegment::new(log_start.value()));
        }
        // Sealed segments shed their flush encodings; only the active tail
        // keeps one (encode() falls back to re-serialization when absent).
        // `split_last_mut` keeps this total even for a single (or, should
        // an invariant ever break, zero) recovered segment.
        if let Some((_, sealed)) = segments.split_last_mut() {
            for seg in sealed {
                seg.enc = Vec::new();
            }
        }
        let retained_bytes = segments.iter().map(LogSegment::bytes).sum();
        let end = segments.last().map(|s| s.end_offset()).unwrap_or_default();
        let start = segments
            .first()
            .map(|s| s.base_offset())
            .unwrap_or_default()
            .max(log_start.min(end));
        PartitionLog {
            segments,
            segment_max_records: segment_max_records.max(1),
            high_watermark: high_watermark.min(end),
            log_start: start,
            retained_bytes,
            truncated_records: Vec::new(),
            reclaimed_bytes: 0,
        }
    }

    /// Next offset to be assigned (the log end offset, "LEO").
    pub fn log_end(&self) -> Offset {
        self.segments
            .last()
            .map(LogSegment::end_offset)
            .unwrap_or_default()
    }

    /// First retained offset (advanced by retention).
    pub fn log_start(&self) -> Offset {
        self.log_start
    }

    /// Highest offset known committed; consumers only see below this.
    pub fn high_watermark(&self) -> Offset {
        self.high_watermark
    }

    /// Number of records currently held (live data — holes excluded).
    pub fn len(&self) -> usize {
        self.segments.iter().map(LogSegment::len).sum()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of record payload retained.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    /// Cumulative bytes reclaimed by compaction and retention.
    pub fn reclaimed_bytes(&self) -> u64 {
        self.reclaimed_bytes
    }

    /// The segments, oldest first (the last one is the active segment).
    pub fn segments(&self) -> &[LogSegment] {
        &self.segments
    }

    /// Number of segments (including the active one).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn seg_index_for(&self, offset: u64) -> Option<usize> {
        let idx = self.segments.partition_point(|s| s.base <= offset);
        let idx = idx.checked_sub(1)?;
        (offset < self.segments[idx].end).then_some(idx)
    }

    fn entry_at(&self, offset: Offset) -> Option<&LogEntry> {
        let o = offset.value();
        let seg = &self.segments[self.seg_index_for(o)?];
        let i = seg
            .entries
            .binary_search_by_key(&o, |e| e.offset.value())
            .ok()?;
        Some(&seg.entries[i])
    }

    /// Appends one record under `epoch` at the log end, returning its
    /// offset.
    pub fn append(&mut self, epoch: LeaderEpoch, record: Record) -> Offset {
        let off = self.log_end();
        self.append_at(off, epoch, record);
        off
    }

    /// Appends one record at an explicit `offset` (the follower-replication
    /// path: replicas must preserve the leader's offsets even across the
    /// holes a compacted leader log serves). Entries at or below the
    /// current log end are ignored — duplicate fetch responses become
    /// no-ops instead of double-appends.
    pub fn append_at(&mut self, offset: Offset, epoch: LeaderEpoch, record: Record) -> bool {
        let o = offset.value();
        if o < self.log_end().value() {
            return false;
        }
        if self
            .segments
            .last()
            .is_none_or(|s| s.len() >= self.segment_max_records)
        {
            self.segments.push(LogSegment::new(o));
        }
        let seg = self.segments.last_mut().expect("just ensured");
        self.retained_bytes += record.encoded_len();
        seg.push(o, epoch, record);
        true
    }

    /// Appends a batch under `epoch`, returning the base offset.
    pub fn append_batch(
        &mut self,
        epoch: LeaderEpoch,
        records: impl IntoIterator<Item = Record>,
    ) -> Offset {
        let base = self.log_end();
        for r in records {
            self.append(epoch, r);
        }
        base
    }

    /// Advances the high watermark (never moves backwards).
    pub fn advance_high_watermark(&mut self, hw: Offset) {
        if hw > self.high_watermark {
            debug_assert!(hw <= self.log_end(), "HW beyond log end");
            self.high_watermark = hw.min(self.log_end());
        }
    }

    /// Entries at offsets `>= from`, up to `max` of them. When
    /// `committed_only` is set (consumer fetches), entries at or above the
    /// high watermark are withheld; replica fetches read the full log.
    /// Holes left by compaction are skipped — callers must advance by the
    /// returned entries' offsets, not by their count.
    pub fn read_entries(&self, from: Offset, max: usize, committed_only: bool) -> Vec<&LogEntry> {
        let end = if committed_only {
            self.high_watermark
        } else {
            self.log_end()
        };
        if from >= end || max == 0 {
            return Vec::new();
        }
        let lo = from.value();
        let mut out = Vec::new();
        let start_idx = self
            .segments
            .partition_point(|s| s.end <= lo)
            .min(self.segments.len().saturating_sub(1));
        for seg in &self.segments[start_idx..] {
            if seg.base >= end.value() {
                break;
            }
            let within = seg.entries.partition_point(|e| e.offset.value() < lo);
            for e in &seg.entries[within..] {
                if e.offset >= end {
                    return out;
                }
                out.push(e);
                if out.len() >= max {
                    return out;
                }
            }
        }
        out
    }

    /// Reads up to `max` records starting at `from` (see
    /// [`read_entries`](Self::read_entries)).
    pub fn read(&self, from: Offset, max: usize, committed_only: bool) -> Vec<Record> {
        self.read_entries(from, max, committed_only)
            .into_iter()
            .map(|e| e.record.clone())
            .collect()
    }

    /// The epoch of the entry at `offset`, if present.
    pub fn epoch_at(&self, offset: Offset) -> Option<LeaderEpoch> {
        self.entry_at(offset).map(|e| e.epoch)
    }

    /// The epoch of the last entry, if any.
    pub fn last_epoch(&self) -> Option<LeaderEpoch> {
        self.segments
            .iter()
            .rev()
            .find_map(|s| s.entries.last().map(|e| e.epoch))
    }

    /// Truncates the log to `to` (exclusive): entries at offsets `>= to` are
    /// discarded and remembered in [`truncated`](Self::truncated). This is
    /// the divergence-reconciliation step a rejoining follower performs, and
    /// the source of silent loss under ZooKeeper-mode coordination.
    pub fn truncate_to(&mut self, to: Offset) -> usize {
        // Never truncate below the log start: retention already dropped
        // everything before it, and regressing the log end past the start
        // would leave an inverted `[start, end)` range that later reads and
        // appends mis-handle.
        let to = to.value().max(self.log_start.value());
        if to >= self.log_end().value() {
            return 0;
        }
        let mut dropped: Vec<LogEntry> = Vec::new();
        let mut keep_until = self.segments.len();
        for (i, seg) in self.segments.iter_mut().enumerate() {
            if seg.end <= to {
                continue;
            }
            if seg.base >= to {
                keep_until = keep_until.min(i);
                break;
            }
            // `to` falls inside this segment: cut its tail.
            let within = seg.entries.partition_point(|e| e.offset.value() < to);
            dropped.extend(seg.entries.split_off(within));
            seg.end = to;
            seg.bytes = seg.entries.iter().map(|e| e.record.encoded_len()).sum();
            seg.dirty = true;
            seg.rebuild_enc();
            keep_until = keep_until.min(i + 1);
            break;
        }
        for seg in self.segments.drain(keep_until..) {
            dropped.extend(seg.entries);
        }
        if self.segments.is_empty() {
            self.segments.push(LogSegment::new(to));
        }
        let n = dropped.len();
        for e in dropped {
            self.retained_bytes -= e.record.encoded_len();
            self.truncated_records.push(e.record);
        }
        if self.high_watermark > self.log_end() {
            self.high_watermark = self.log_end();
        }
        n
    }

    /// Finds where this log diverges from a leader whose log ends at
    /// `leader_end` with `leader_last_epoch`: the offset this replica should
    /// truncate to before appending. Compares epochs from the tail down.
    pub fn divergence_point(
        &self,
        leader_end: Offset,
        leader_epoch_at: impl Fn(Offset) -> Option<LeaderEpoch>,
    ) -> Offset {
        let mut candidate = self.log_end().min(leader_end);
        while candidate > Offset::ZERO {
            let prev = Offset(candidate.value() - 1);
            match (self.epoch_at(prev), leader_epoch_at(prev)) {
                (Some(mine), Some(theirs)) if mine == theirs => return candidate,
                _ => candidate = prev,
            }
        }
        Offset::ZERO
    }

    /// Records discarded by truncation, in truncation order.
    pub fn truncated(&self) -> &[Record] {
        &self.truncated_records
    }

    /// The end offset for `epoch`: one past the last entry whose epoch is at
    /// most `epoch` (0 if no such entry). Entries are epoch-monotonic, so
    /// this is the offset a follower stuck at `epoch` must truncate to.
    pub fn end_offset_for_epoch(&self, epoch: LeaderEpoch) -> Offset {
        for seg in self.segments.iter().rev() {
            if let Some(e) = seg.entries.iter().rev().find(|e| e.epoch <= epoch) {
                return Offset(e.offset.value() + 1);
            }
        }
        Offset::ZERO
    }

    /// Keyed compaction: among committed (below-high-watermark) entries of
    /// sealed segments, keeps only the latest record per key. Keyless
    /// records, uncommitted entries, and the active segment are untouched;
    /// offsets never move. Sealed segments emptied by the pass are dropped
    /// and reported so dead backend blobs can be deleted.
    pub fn compact(&mut self) -> CleanOutcome {
        let mut outcome = CleanOutcome::default();
        if self.segments.len() < 2 {
            return outcome;
        }
        let hw = self.high_watermark.value();
        // Latest committed offset per key across the whole log (a committed
        // copy in the active segment shadows sealed copies; uncommitted
        // entries never act as "latest" — they could still be truncated).
        let mut latest: HashMap<Bytes, u64> = HashMap::new();
        for seg in &self.segments {
            for e in &seg.entries {
                if e.offset.value() >= hw {
                    break;
                }
                if let Some(k) = &e.record.key {
                    let slot = latest.entry(k.clone()).or_insert(0);
                    *slot = (*slot).max(e.offset.value());
                }
            }
        }
        let sealed = self.segments.len() - 1;
        let mut removed_bytes = 0usize;
        for seg in &mut self.segments[..sealed] {
            let before = seg.entries.len();
            if before == 0 {
                continue;
            }
            seg.entries.retain(|e| {
                let o = e.offset.value();
                if o >= hw {
                    return true; // uncommitted: never cleaned
                }
                match &e.record.key {
                    None => true, // keyless: no compaction identity
                    Some(k) => latest.get(k).copied() == Some(o),
                }
            });
            if seg.entries.len() != before {
                let kept: usize = seg.entries.iter().map(|e| e.record.encoded_len()).sum();
                removed_bytes += seg.bytes - kept;
                outcome.removed_records += (before - seg.entries.len()) as u64;
                seg.bytes = kept;
                seg.dirty = true;
                seg.rebuild_enc();
            }
        }
        // Drop sealed segments the pass emptied entirely.
        let mut dropped = Vec::new();
        let last = self.segments.len() - 1;
        let mut i = 0;
        self.segments.retain(|seg| {
            let keep = i == last || !seg.entries.is_empty();
            if !keep {
                dropped.push(seg.base);
            }
            i += 1;
            keep
        });
        outcome.dropped_segment_bases = dropped;
        outcome.reclaimed_bytes = removed_bytes as u64;
        self.retained_bytes -= removed_bytes;
        self.reclaimed_bytes += removed_bytes as u64;
        outcome
    }

    /// Segment retention: drops sealed, fully committed segments whose
    /// newest record is older than `max_age` (when set), then the oldest
    /// such segments until retained bytes fit `max_bytes` (when set). The
    /// log start offset advances past dropped data; late readers get an
    /// out-of-range reset instead of the vanished records.
    pub fn apply_retention(
        &mut self,
        now: SimTime,
        max_age: Option<SimDuration>,
        max_bytes: Option<usize>,
    ) -> CleanOutcome {
        let mut outcome = CleanOutcome::default();
        loop {
            if self.segments.len() < 2 {
                break;
            }
            let seg = &self.segments[0];
            // Only whole, committed segments are retired.
            if seg.end > self.high_watermark.value() {
                break;
            }
            let expired = max_age.is_some_and(|age| {
                seg.entries
                    .last()
                    .is_some_and(|e| e.record.timestamp + age < now)
            });
            let oversize = max_bytes.is_some_and(|cap| self.retained_bytes > cap);
            if !expired && !oversize && !seg.is_empty() {
                break;
            }
            let seg = self.segments.remove(0);
            outcome.removed_records += seg.entries.len() as u64;
            outcome.reclaimed_bytes += seg.bytes as u64;
            outcome.dropped_segment_bases.push(seg.base);
            self.retained_bytes -= seg.bytes;
            self.reclaimed_bytes += seg.bytes as u64;
            self.log_start = self.log_start.max(Offset(seg.end));
        }
        outcome
    }

    /// Encodes every dirty segment and clears the dirty marks, returning
    /// `(base_offset, encoded_bytes)` pairs — the broker's flush feed.
    /// Sealed (non-active) segments shed their encoding buffer afterwards
    /// so cold segments are not held in memory twice.
    pub fn take_dirty_segments(&mut self) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let n = self.segments.len();
        for (i, seg) in self.segments.iter_mut().enumerate() {
            if seg.dirty && !seg.is_empty() {
                out.push((seg.base, seg.encode()));
                seg.dirty = false;
            }
            if i + 1 < n && !seg.enc.is_empty() {
                seg.enc = Vec::new();
            }
        }
        out
    }

    /// True when any segment holds un-flushed changes.
    pub fn has_dirty_segments(&self) -> bool {
        self.segments.iter().any(|s| s.dirty && !s.is_empty())
    }
}

/// The broker's durable metadata blob: per-partition high watermarks, log
/// start offsets, and segment manifests, plus consumer-group committed
/// offsets and the cumulative bytes cleaning reclaimed. Persisted alongside
/// segments on every flush; read first on recovery so the broker knows
/// which segment keys to replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BrokerLogMeta {
    /// Per partition: high watermark, log start, and the base offsets of
    /// live segments in order.
    pub partitions: Vec<(TopicPartition, Offset, Offset, Vec<u64>)>,
    /// Consumer-group committed positions: `(group, partition, offset)`.
    pub group_offsets: Vec<(String, TopicPartition, Offset)>,
    /// Cumulative bytes reclaimed by compaction + retention across all
    /// partitions — the replay bytes a restarted broker is spared.
    pub reclaimed_bytes: u64,
    /// Per-partition transaction state: open transactions as
    /// `(producer, txn, first_offset, end_offset, producer_epoch)` and
    /// aborted offset ranges as `[start, end)` pairs — so read-committed
    /// isolation survives a broker bounce.
    pub txns: Vec<MetaPartitionTxns>,
}

/// One open transaction in the meta blob:
/// `(producer, txn, first_offset, end_offset, producer_epoch)`.
pub type MetaTxnEntry = (u32, u64, u64, u64, u32);

/// One partition's persisted transaction state: the partition, its open
/// transactions, and its aborted `[start, end)` offset ranges.
pub type MetaPartitionTxns = (TopicPartition, Vec<MetaTxnEntry>, Vec<(u64, u64)>);

/// Encodes a length header, failing loudly if it does not fit `u32` —
/// a silent `as u32` truncation here would corrupt every replay.
fn put_len(out: &mut Vec<u8>, len: usize) {
    put_u32(out, u32::try_from(len).expect("collection length fits u32"));
}

impl BrokerLogMeta {
    /// Serializes the meta blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_len(&mut out, self.partitions.len());
        for (tp, hw, start, bases) in &self.partitions {
            put_str(&mut out, &tp.topic);
            put_u32(&mut out, tp.partition);
            put_u64(&mut out, hw.value());
            put_u64(&mut out, start.value());
            put_len(&mut out, bases.len());
            for b in bases {
                put_u64(&mut out, *b);
            }
        }
        put_len(&mut out, self.group_offsets.len());
        for (group, tp, off) in &self.group_offsets {
            put_str(&mut out, group);
            put_str(&mut out, &tp.topic);
            put_u32(&mut out, tp.partition);
            put_u64(&mut out, off.value());
        }
        put_u64(&mut out, self.reclaimed_bytes);
        put_len(&mut out, self.txns.len());
        for (tp, ongoing, aborted) in &self.txns {
            put_str(&mut out, &tp.topic);
            put_u32(&mut out, tp.partition);
            put_len(&mut out, ongoing.len());
            for (producer, txn, first, end, epoch) in ongoing {
                put_u32(&mut out, *producer);
                put_u64(&mut out, *txn);
                put_u64(&mut out, *first);
                put_u64(&mut out, *end);
                put_u32(&mut out, *epoch);
            }
            put_len(&mut out, aborted.len());
            for (s, e) in aborted {
                put_u64(&mut out, *s);
                put_u64(&mut out, *e);
            }
        }
        out
    }

    /// Deserializes a blob written by [`encode`](BrokerLogMeta::encode).
    /// Returns `None` on truncated or malformed input.
    pub fn decode(buf: &[u8]) -> Option<BrokerLogMeta> {
        let mut cur = Cursor::new(buf);
        let np = cur.u32()? as usize;
        let mut partitions = Vec::with_capacity(np);
        for _ in 0..np {
            let topic = cur.str()?;
            let partition = cur.u32()?;
            let hw = Offset(cur.u64()?);
            let start = Offset(cur.u64()?);
            let nb = cur.u32()? as usize;
            let mut bases = Vec::with_capacity(nb);
            for _ in 0..nb {
                bases.push(cur.u64()?);
            }
            partitions.push((TopicPartition::new(topic, partition), hw, start, bases));
        }
        let ng = cur.u32()? as usize;
        let mut group_offsets = Vec::with_capacity(ng);
        for _ in 0..ng {
            let group = cur.str()?;
            let topic = cur.str()?;
            let partition = cur.u32()?;
            let off = Offset(cur.u64()?);
            group_offsets.push((group, TopicPartition::new(topic, partition), off));
        }
        let reclaimed_bytes = cur.u64()?;
        let nt = cur.u32()? as usize;
        let mut txns = Vec::with_capacity(nt);
        for _ in 0..nt {
            let topic = cur.str()?;
            let partition = cur.u32()?;
            let no = cur.u32()? as usize;
            let mut ongoing = Vec::with_capacity(no);
            for _ in 0..no {
                let producer = cur.u32()?;
                let txn = cur.u64()?;
                let first = cur.u64()?;
                let end = cur.u64()?;
                let epoch = cur.u32()?;
                ongoing.push((producer, txn, first, end, epoch));
            }
            let na = cur.u32()? as usize;
            let mut aborted = Vec::with_capacity(na);
            for _ in 0..na {
                let s = cur.u64()?;
                let e = cur.u64()?;
                aborted.push((s, e));
            }
            txns.push((TopicPartition::new(topic, partition), ongoing, aborted));
        }
        Some(BrokerLogMeta {
            partitions,
            group_offsets,
            reclaimed_bytes,
            txns,
        })
    }
}

/// Correlation-id base for broker log-backend store RPCs, disjoint from the
/// checkpoint (`1 << 42`) and client tag namespaces.
pub const BROKER_LOG_CORR_BASE: u64 = 1 << 43;

/// Shared storage for [`InMemoryLogBackend`]s. Lives outside the broker
/// process, so it survives broker crashes — the moral equivalent of the
/// broker host's local disk.
pub type LogStoreHandle = Rc<RefCell<BTreeMap<String, Vec<u8>>>>;

/// Creates an empty shared log store.
pub fn log_store() -> LogStoreHandle {
    Rc::new(RefCell::new(BTreeMap::new()))
}

/// The outcome of a [`LogBackend::persist`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogPersist {
    /// The blob is durable now.
    Done,
    /// The write is in flight; completion arrives as a
    /// [`s2g_store::StoreRpc::PutAck`] with this correlation id.
    Pending(u64),
}

/// The outcome of a [`LogBackend::recover`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecover {
    /// The read finished (with the blob, or `None` when the key was never
    /// written).
    Done(Option<Vec<u8>>),
    /// The read is in flight; the blob arrives as a
    /// [`s2g_store::StoreRpc::GetResult`] with this correlation id.
    Pending(u64),
}

/// Pluggable persistence for broker logs: segments and the meta blob are
/// written under string keys, read back on restart, and deleted when
/// cleaning drops them.
pub trait LogBackend {
    /// True when writes and reads complete synchronously and for free (the
    /// in-memory local-disk model); false when they travel the network.
    fn is_instant(&self) -> bool;

    /// Begins persisting `bytes` under `key` (overwriting any prior value).
    fn persist(&mut self, ctx: &mut Ctx<'_>, key: &str, bytes: Vec<u8>) -> LogPersist;

    /// Begins reading the blob stored under `key`.
    fn recover(&mut self, ctx: &mut Ctx<'_>, key: &str) -> LogRecover;

    /// Deletes the blob stored under `key` (a segment dropped by compaction
    /// or retention). Fire-and-forget: a delete lost in the network merely
    /// orphans a blob the manifest no longer references, so nothing waits
    /// on the ack.
    fn remove(&mut self, ctx: &mut Ctx<'_>, key: &str);

    /// Called right before the broker re-issues unanswered RPCs: a backend
    /// over a replicated store group rotates to its next endpoint (the
    /// current one may have crashed). Default: no-op.
    fn rotate_endpoint(&mut self) {}
}

/// Log persistence on a shared map outside the broker's failure domain:
/// instant and free, like an always-synced local disk.
pub struct InMemoryLogBackend {
    store: LogStoreHandle,
}

impl InMemoryLogBackend {
    /// Creates a backend over a shared store handle.
    pub fn new(store: LogStoreHandle) -> Self {
        InMemoryLogBackend { store }
    }
}

impl LogBackend for InMemoryLogBackend {
    fn is_instant(&self) -> bool {
        true
    }

    fn persist(&mut self, _ctx: &mut Ctx<'_>, key: &str, bytes: Vec<u8>) -> LogPersist {
        self.store.borrow_mut().insert(key.to_string(), bytes);
        LogPersist::Done
    }

    fn recover(&mut self, _ctx: &mut Ctx<'_>, key: &str) -> LogRecover {
        LogRecover::Done(self.store.borrow().get(key).cloned())
    }

    fn remove(&mut self, _ctx: &mut Ctx<'_>, key: &str) {
        self.store.borrow_mut().remove(key);
    }
}

/// Log persistence through an [`s2g_store::StoreServer`]: every flush ships
/// the encoded segments over the emulated network and pays the store's CPU
/// cost; recovery pays one read round trip per blob before the broker may
/// serve again.
pub struct DurableLogBackend {
    blobs: BlobClient,
}

impl DurableLogBackend {
    /// Creates a backend writing to the store server process.
    pub fn new(server: ProcessId) -> Self {
        Self::for_incarnation(server, 0)
    }

    /// Creates a backend whose correlation ids are salted with the broker
    /// process's incarnation, so a store reply delayed across a broker
    /// bounce can never collide with the respawned incarnation's requests.
    pub fn for_incarnation(server: ProcessId, incarnation: u64) -> Self {
        Self::replicated(vec![server], incarnation)
    }

    /// Creates a backend over every member of a replicated store group;
    /// unanswered flushes rotate to the next member on retry, so the broker
    /// log survives a store crash.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn replicated(servers: Vec<ProcessId>, incarnation: u64) -> Self {
        DurableLogBackend {
            blobs: BlobClient::replicated(servers, BROKER_LOG_CORR_BASE, incarnation),
        }
    }
}

impl LogBackend for DurableLogBackend {
    fn is_instant(&self) -> bool {
        false
    }

    fn persist(&mut self, ctx: &mut Ctx<'_>, key: &str, bytes: Vec<u8>) -> LogPersist {
        LogPersist::Pending(self.blobs.put(ctx, key, bytes))
    }

    fn recover(&mut self, ctx: &mut Ctx<'_>, key: &str) -> LogRecover {
        LogRecover::Pending(self.blobs.get(ctx, key))
    }

    fn remove(&mut self, ctx: &mut Ctx<'_>, key: &str) {
        let _ = self.blobs.delete(ctx, key);
    }

    fn rotate_endpoint(&mut self) {
        self.blobs.rotate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_sim::SimTime;

    fn rec(v: &str) -> Record {
        Record::keyless(v.to_string(), SimTime::ZERO)
    }

    fn keyed(k: &str, v: &str, ms: u64) -> Record {
        Record::new(k.to_string(), v.to_string(), SimTime::from_millis(ms))
    }

    #[test]
    fn append_assigns_sequential_offsets() {
        let mut log = PartitionLog::new();
        assert_eq!(log.append(LeaderEpoch(0), rec("a")), Offset(0));
        assert_eq!(log.append(LeaderEpoch(0), rec("b")), Offset(1));
        assert_eq!(
            log.append_batch(LeaderEpoch(1), [rec("c"), rec("d")]),
            Offset(2)
        );
        assert_eq!(log.log_end(), Offset(4));
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn committed_reads_stop_at_high_watermark() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b"), rec("c")]);
        assert!(log.read(Offset(0), 10, true).is_empty());
        log.advance_high_watermark(Offset(2));
        let committed = log.read(Offset(0), 10, true);
        assert_eq!(committed.len(), 2);
        let all = log.read(Offset(0), 10, false);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn read_respects_max_and_from() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), (0..10).map(|i| rec(&i.to_string())));
        log.advance_high_watermark(Offset(10));
        let r = log.read(Offset(4), 3, true);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].value_utf8(), "4");
        assert!(log.read(Offset(10), 5, true).is_empty());
        assert!(log.read(Offset(99), 5, false).is_empty());
    }

    #[test]
    fn segments_roll_and_reads_span_them() {
        let mut log = PartitionLog::with_segment_max(4);
        log.append_batch(LeaderEpoch(0), (0..10).map(|i| rec(&i.to_string())));
        assert_eq!(log.segment_count(), 3);
        assert_eq!(log.segments()[0].base_offset(), Offset(0));
        assert_eq!(log.segments()[1].base_offset(), Offset(4));
        assert_eq!(log.segments()[2].base_offset(), Offset(8));
        log.advance_high_watermark(Offset(10));
        let r = log.read(Offset(2), 6, true);
        assert_eq!(r.len(), 6);
        assert_eq!(r[0].value_utf8(), "2");
        assert_eq!(r[5].value_utf8(), "7");
        assert_eq!(log.epoch_at(Offset(9)), Some(LeaderEpoch(0)));
        assert_eq!(log.len(), 10);
    }

    #[test]
    fn high_watermark_never_regresses() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        log.advance_high_watermark(Offset(2));
        log.advance_high_watermark(Offset(1));
        assert_eq!(log.high_watermark(), Offset(2));
    }

    #[test]
    fn truncation_discards_and_remembers() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        log.append_batch(LeaderEpoch(1), [rec("x"), rec("y")]);
        log.advance_high_watermark(Offset(4));
        let bytes_before = log.retained_bytes();
        let n = log.truncate_to(Offset(2));
        assert_eq!(n, 2);
        assert_eq!(log.log_end(), Offset(2));
        assert_eq!(log.high_watermark(), Offset(2), "HW clamped to new end");
        assert_eq!(log.truncated().len(), 2);
        assert_eq!(log.truncated()[0].value_utf8(), "x");
        assert!(log.retained_bytes() < bytes_before);
        // Truncating beyond the end is a no-op.
        assert_eq!(log.truncate_to(Offset(100)), 0);
    }

    #[test]
    fn truncation_spans_segments() {
        let mut log = PartitionLog::with_segment_max(3);
        log.append_batch(LeaderEpoch(0), (0..8).map(|i| rec(&i.to_string())));
        assert_eq!(log.segment_count(), 3);
        let n = log.truncate_to(Offset(2));
        assert_eq!(n, 6);
        assert_eq!(log.log_end(), Offset(2));
        assert_eq!(log.segment_count(), 1);
        assert_eq!(log.truncated().len(), 6);
        assert_eq!(log.truncated()[0].value_utf8(), "2");
        assert_eq!(log.truncated()[5].value_utf8(), "7");
        // Appends continue at the truncation point.
        assert_eq!(log.append(LeaderEpoch(1), rec("z")), Offset(2));
    }

    #[test]
    fn divergence_point_matches_common_prefix() {
        // Follower: epochs [0,0,1,1]; leader: epochs [0,0,2,2,2].
        let mut follower = PartitionLog::new();
        follower.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        follower.append_batch(LeaderEpoch(1), [rec("x"), rec("y")]);
        let mut leader = PartitionLog::new();
        leader.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        leader.append_batch(LeaderEpoch(2), [rec("p"), rec("q"), rec("r")]);
        let point = follower.divergence_point(leader.log_end(), |o| leader.epoch_at(o));
        assert_eq!(point, Offset(2));
    }

    #[test]
    fn divergence_point_with_identical_logs_is_end() {
        let mut a = PartitionLog::new();
        a.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        let b = a.clone();
        let point = a.divergence_point(b.log_end(), |o| b.epoch_at(o));
        assert_eq!(point, Offset(2));
    }

    #[test]
    fn divergence_point_when_follower_is_ahead() {
        // Follower appended extra records under the old epoch while isolated.
        let mut follower = PartitionLog::new();
        follower.append_batch(LeaderEpoch(0), [rec("a"), rec("b"), rec("c"), rec("d")]);
        let mut leader = PartitionLog::new();
        leader.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        leader.append_batch(LeaderEpoch(1), [rec("z")]);
        let point = follower.divergence_point(leader.log_end(), |o| leader.epoch_at(o));
        // Common prefix is [a, b]; offset 2 has epoch 0 vs leader epoch 1.
        assert_eq!(point, Offset(2));
    }

    #[test]
    fn end_offset_for_epoch_finds_boundaries() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        log.append_batch(LeaderEpoch(2), [rec("c")]);
        assert_eq!(log.end_offset_for_epoch(LeaderEpoch(0)), Offset(2));
        assert_eq!(log.end_offset_for_epoch(LeaderEpoch(1)), Offset(2));
        assert_eq!(log.end_offset_for_epoch(LeaderEpoch(2)), Offset(3));
        let empty = PartitionLog::new();
        assert_eq!(empty.end_offset_for_epoch(LeaderEpoch(5)), Offset::ZERO);
    }

    #[test]
    fn retained_bytes_tracks_appends() {
        let mut log = PartitionLog::new();
        assert_eq!(log.retained_bytes(), 0);
        let r = rec("hello");
        let sz = r.encoded_len();
        log.append(LeaderEpoch(0), r);
        assert_eq!(log.retained_bytes(), sz);
    }

    #[test]
    fn segment_codec_round_trips() {
        let mut log = PartitionLog::with_segment_max(3);
        let keyed = Record::new("k1", "v1", SimTime::from_millis(5))
            .from_producer(s2g_proto::ProducerId(7), 42);
        log.append(LeaderEpoch(3), keyed);
        log.append(LeaderEpoch(4), rec("plain"));
        let seg = &log.segments()[0];
        let decoded = LogSegment::decode(&seg.encode()).expect("round trip");
        assert_eq!(decoded.base_offset(), seg.base_offset());
        assert_eq!(decoded.end_offset(), seg.end_offset());
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded.entries[0].offset, Offset(0));
        assert_eq!(decoded.entries[0].epoch, LeaderEpoch(3));
        assert_eq!(decoded.entries[0].record.key.as_deref(), Some(&b"k1"[..]));
        assert_eq!(decoded.entries[0].record.producer_seq, 42);
        assert_eq!(decoded.entries[1].offset, Offset(1));
        assert_eq!(decoded.entries[1].record.value_utf8(), "plain");
        assert_eq!(decoded.bytes(), seg.bytes());
        // Garbage is rejected, not mis-decoded.
        assert!(LogSegment::decode(&[1, 2, 3]).is_none());
    }

    #[test]
    fn meta_codec_round_trips() {
        let meta = BrokerLogMeta {
            partitions: vec![
                (
                    TopicPartition::new("ta", 0),
                    Offset(7),
                    Offset(3),
                    vec![0, 128],
                ),
                (TopicPartition::new("tb", 2), Offset(0), Offset(0), vec![]),
            ],
            group_offsets: vec![("g1".into(), TopicPartition::new("ta", 0), Offset(5))],
            reclaimed_bytes: 4096,
            txns: vec![(
                TopicPartition::new("ta", 0),
                vec![(7, 3, 10, 14, 1)],
                vec![(2, 5)],
            )],
        };
        let back = BrokerLogMeta::decode(&meta.encode()).expect("round trip");
        assert_eq!(back, meta);
        assert!(BrokerLogMeta::decode(&[0xff]).is_none());
    }

    #[test]
    fn dirty_tracking_feeds_flushes() {
        let mut log = PartitionLog::with_segment_max(2);
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b"), rec("c")]);
        assert!(log.has_dirty_segments());
        let dirty = log.take_dirty_segments();
        assert_eq!(dirty.len(), 2, "both segments were touched");
        assert_eq!(dirty[0].0, 0);
        assert_eq!(dirty[1].0, 2);
        assert!(!log.has_dirty_segments());
        // Appending again only dirties the active segment.
        log.append(LeaderEpoch(0), rec("d"));
        let dirty = log.take_dirty_segments();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, 2);
    }

    #[test]
    fn recovered_segments_rebuild_the_log() {
        let mut log = PartitionLog::with_segment_max(3);
        log.append_batch(LeaderEpoch(1), (0..7).map(|i| rec(&i.to_string())));
        log.advance_high_watermark(Offset(6));
        let bases: Vec<u64> = log.segments().iter().map(|s| s.base).collect();
        let segments: Vec<LogSegment> = log
            .segments()
            .iter()
            .map(|s| LogSegment::decode(&s.encode()).expect("decodes"))
            .collect();
        let rebuilt =
            PartitionLog::from_recovered_segments(segments, Offset(6), Offset::ZERO, &bases, 3);
        assert_eq!(rebuilt.log_end(), log.log_end());
        assert_eq!(rebuilt.high_watermark(), Offset(6));
        assert_eq!(rebuilt.retained_bytes(), log.retained_bytes());
        let all = rebuilt.read(Offset(0), 100, false);
        assert_eq!(all.len(), 7);
        assert_eq!(all[6].value_utf8(), "6");
        // A watermark beyond the recovered end is clamped.
        let clamped =
            PartitionLog::from_recovered_segments(vec![], Offset(99), Offset::ZERO, &[], 3);
        assert_eq!(clamped.high_watermark(), Offset::ZERO);
    }

    #[test]
    fn recovery_truncates_at_a_manifest_hole() {
        // A lost flush can leave a manifest-listed blob missing from the
        // backend; the recoverable log ends at the gap, and reads never
        // panic.
        let mut log = PartitionLog::with_segment_max(3);
        log.append_batch(LeaderEpoch(0), (0..9).map(|i| rec(&i.to_string())));
        log.advance_high_watermark(Offset(9));
        let bases: Vec<u64> = log.segments().iter().map(|s| s.base).collect();
        let mut segments: Vec<LogSegment> = log
            .segments()
            .iter()
            .map(|s| LogSegment::decode(&s.encode()).expect("decodes"))
            .collect();
        segments.remove(1); // the middle blob never made it to the backend
        let rebuilt =
            PartitionLog::from_recovered_segments(segments, Offset(9), Offset::ZERO, &bases, 3);
        assert_eq!(rebuilt.log_end(), Offset(3), "log ends at the gap");
        assert_eq!(rebuilt.high_watermark(), Offset(3), "HW clamped to it");
        assert_eq!(rebuilt.read(Offset(0), 100, false).len(), 3);
        assert!(rebuilt.read(Offset(5), 100, false).is_empty());
    }

    #[test]
    fn flush_shed_encodings_stay_consistent() {
        // Sealed segments drop their encoding buffer after a flush; later
        // flushes (e.g. after truncation re-dirties one) must still encode
        // correctly, and appends to a recovered tail must extend properly.
        let mut log = PartitionLog::with_segment_max(2);
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b"), rec("c")]);
        let first = log.take_dirty_segments();
        assert_eq!(first.len(), 2);
        // Truncate into the (shed) first segment and re-flush it.
        log.truncate_to(Offset(1));
        let again = log.take_dirty_segments();
        assert_eq!(again.len(), 1);
        let seg = LogSegment::decode(&again[0].1).expect("decodes");
        assert_eq!(seg.len(), 1);
        assert_eq!(seg.entries()[0].record.value_utf8(), "a");
        // Appending after the shed/rebuild keeps encode() in sync.
        log.append(LeaderEpoch(1), rec("z"));
        let tail = log.take_dirty_segments();
        let seg = LogSegment::decode(&tail[0].1).expect("decodes");
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.entries()[1].record.value_utf8(), "z");
    }

    #[test]
    fn compaction_keeps_latest_per_key() {
        let mut log = PartitionLog::with_segment_max(2);
        log.append(LeaderEpoch(0), keyed("a", "a1", 1)); // 0 — shadowed
        log.append(LeaderEpoch(0), keyed("b", "b1", 2)); // 1 — shadowed
        log.append(LeaderEpoch(0), keyed("a", "a2", 3)); // 2 — shadowed by 4
        log.append(LeaderEpoch(0), rec("nokey")); // 3 — keyless, kept
        log.append(LeaderEpoch(0), keyed("a", "a3", 5)); // 4 — latest a
        log.append(LeaderEpoch(0), keyed("b", "b2", 6)); // 5 — latest b (active)
        log.advance_high_watermark(Offset(6));
        let before = log.retained_bytes();
        let out = log.compact();
        assert_eq!(out.removed_records, 3);
        assert!(out.reclaimed_bytes > 0);
        assert_eq!(out.dropped_segment_bases, vec![0], "segment [0,2) emptied");
        assert!(log.retained_bytes() < before);
        assert_eq!(log.reclaimed_bytes(), out.reclaimed_bytes);
        // Offsets survive: reader sees keyless@3, a3@4, b2@5.
        let entries = log.read_entries(Offset(0), 10, true);
        let offs: Vec<u64> = entries.iter().map(|e| e.offset.value()).collect();
        assert_eq!(offs, vec![3, 4, 5]);
        assert_eq!(entries[1].record.value_utf8(), "a3");
        // A second pass is a no-op.
        assert!(log.compact().is_noop());
    }

    #[test]
    fn compaction_never_touches_uncommitted_or_active_entries() {
        let mut log = PartitionLog::with_segment_max(2);
        log.append(LeaderEpoch(0), keyed("k", "v1", 1)); // 0
        log.append(LeaderEpoch(0), keyed("k", "v2", 2)); // 1
        log.append(LeaderEpoch(0), keyed("k", "v3", 3)); // 2 — above HW
        log.advance_high_watermark(Offset(2));
        let out = log.compact();
        // Only offset 0 is compactable (sealed, below HW, shadowed).
        assert_eq!(out.removed_records, 1);
        let all = log.read_entries(Offset(0), 10, false);
        let offs: Vec<u64> = all.iter().map(|e| e.offset.value()).collect();
        assert_eq!(offs, vec![1, 2]);
    }

    #[test]
    fn compacted_log_round_trips_through_recovery() {
        let mut log = PartitionLog::with_segment_max(2);
        for i in 0..8u64 {
            log.append(
                LeaderEpoch(0),
                keyed(&format!("k{}", i % 2), &i.to_string(), i),
            );
        }
        log.advance_high_watermark(Offset(8));
        log.compact();
        let bases: Vec<u64> = log.segments().iter().map(|s| s.base).collect();
        let segments: Vec<LogSegment> = log
            .segments()
            .iter()
            .map(|s| LogSegment::decode(&s.encode()).expect("decodes"))
            .collect();
        let rebuilt = PartitionLog::from_recovered_segments(
            segments,
            log.high_watermark(),
            log.log_start(),
            &bases,
            2,
        );
        assert_eq!(rebuilt.log_end(), log.log_end());
        let a: Vec<u64> = log
            .read_entries(Offset(0), 100, false)
            .iter()
            .map(|e| e.offset.value())
            .collect();
        let b: Vec<u64> = rebuilt
            .read_entries(Offset(0), 100, false)
            .iter()
            .map(|e| e.offset.value())
            .collect();
        assert_eq!(a, b, "recovered compacted log serves identical offsets");
    }

    #[test]
    fn retention_drops_old_committed_segments() {
        let mut log = PartitionLog::with_segment_max(2);
        for i in 0..6u64 {
            log.append(
                LeaderEpoch(0),
                Record::keyless(i.to_string(), SimTime::from_secs(i)),
            );
        }
        log.advance_high_watermark(Offset(4)); // segment [4,6) uncommitted
        let out = log.apply_retention(
            SimTime::from_secs(100),
            Some(SimDuration::from_secs(50)),
            None,
        );
        // Segments [0,2) (newest record t=1s) and [2,4) (t=3s) both expired;
        // [4,6) is the active segment and stays.
        assert_eq!(out.dropped_segment_bases, vec![0, 2]);
        assert_eq!(out.removed_records, 4);
        assert_eq!(log.log_start(), Offset(4));
        assert_eq!(log.log_end(), Offset(6));
        assert!(log.read(Offset(0), 10, false).len() == 2);
        // Appends continue past retention.
        assert_eq!(log.append(LeaderEpoch(0), rec("z")), Offset(6));
    }

    #[test]
    fn size_retention_bounds_retained_bytes() {
        let mut log = PartitionLog::with_segment_max(4);
        for i in 0..16u64 {
            log.append(
                LeaderEpoch(0),
                Record::keyless(vec![0u8; 100], SimTime::from_secs(i)),
            );
        }
        log.advance_high_watermark(Offset(16));
        let cap = log.retained_bytes() / 2;
        let out = log.apply_retention(SimTime::from_secs(20), None, Some(cap));
        assert!(!out.dropped_segment_bases.is_empty());
        assert!(log.retained_bytes() <= cap);
        assert!(log.log_start() > Offset::ZERO);
    }

    #[test]
    fn fetch_at_exact_log_start_after_retention() {
        // Retention advanced the log start; a fetch at exactly that offset
        // must serve the first retained record, and one below it must serve
        // from the start without panicking — including when only the single
        // active segment remains.
        let mut log = PartitionLog::with_segment_max(2);
        for i in 0..6u64 {
            log.append(
                LeaderEpoch(0),
                Record::keyless(i.to_string(), SimTime::from_secs(i)),
            );
        }
        log.advance_high_watermark(Offset(6));
        log.apply_retention(
            SimTime::from_secs(100),
            Some(SimDuration::from_secs(50)),
            None,
        );
        assert_eq!(log.log_start(), Offset(4));
        assert_eq!(log.segment_count(), 1, "only the active segment remains");
        let at_start = log.read_entries(Offset(4), 10, true);
        assert_eq!(at_start.len(), 2);
        assert_eq!(at_start[0].offset, Offset(4));
        // Below the start: the log serves what it has (the broker layer
        // turns this into an OffsetOutOfRange reset).
        let below = log.read_entries(Offset(0), 10, true);
        assert_eq!(below.first().map(|e| e.offset), Some(Offset(4)));
        // At the end: empty, no panic.
        assert!(log.read_entries(Offset(6), 10, true).is_empty());
    }

    #[test]
    fn compact_then_fetch_first_offset() {
        // Compaction empties and drops the first sealed segment; a fetch at
        // offset 0 must skip the hole and serve the survivors.
        let mut log = PartitionLog::with_segment_max(2);
        log.append(LeaderEpoch(0), keyed("k", "v1", 1)); // 0
        log.append(LeaderEpoch(0), keyed("k", "v2", 2)); // 1
        log.append(LeaderEpoch(0), keyed("k", "v3", 3)); // 2
        log.append(LeaderEpoch(0), keyed("k", "v4", 4)); // 3
        log.append(LeaderEpoch(0), keyed("k", "v5", 5)); // 4 (active)
        log.advance_high_watermark(Offset(5));
        let out = log.compact();
        assert!(out.dropped_segment_bases.contains(&0), "segment 0 emptied");
        let from_zero = log.read_entries(Offset(0), 10, true);
        assert!(!from_zero.is_empty(), "fetch at 0 skips the dropped prefix");
        assert!(from_zero[0].offset > Offset(0));
        // Recovery of the compacted shape keeps serving the same offsets.
        let bases: Vec<u64> = log.segments().iter().map(|s| s.base).collect();
        let segments: Vec<LogSegment> = log
            .segments()
            .iter()
            .map(|s| LogSegment::decode(&s.encode()).expect("decodes"))
            .collect();
        let rebuilt = PartitionLog::from_recovered_segments(
            segments,
            log.high_watermark(),
            log.log_start(),
            &bases,
            2,
        );
        let a: Vec<u64> = from_zero.iter().map(|e| e.offset.value()).collect();
        let b: Vec<u64> = rebuilt
            .read_entries(Offset(0), 10, true)
            .iter()
            .map(|e| e.offset.value())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn truncation_below_log_start_is_clamped() {
        // After retention advances the start, a divergence truncation that
        // asks for an offset below it must clamp instead of regressing the
        // log end below the log start.
        let mut log = PartitionLog::with_segment_max(2);
        for i in 0..6u64 {
            log.append(
                LeaderEpoch(0),
                Record::keyless(i.to_string(), SimTime::from_secs(i)),
            );
        }
        log.advance_high_watermark(Offset(6));
        log.apply_retention(
            SimTime::from_secs(100),
            Some(SimDuration::from_secs(50)),
            None,
        );
        assert_eq!(log.log_start(), Offset(4));
        let n = log.truncate_to(Offset(1));
        assert_eq!(n, 2, "only the retained suffix is dropped");
        assert_eq!(log.log_end(), Offset(4), "end clamps at the log start");
        assert!(log.log_end() >= log.log_start(), "range never inverts");
        // Appends continue at the clamped end.
        assert_eq!(log.append(LeaderEpoch(1), rec("z")), Offset(4));
    }

    #[test]
    fn replication_append_at_preserves_leader_offsets() {
        // Leader compacted: serves offsets 3, 5, 7. The follower must land
        // them at the same offsets.
        let mut follower = PartitionLog::with_segment_max(4);
        assert!(follower.append_at(Offset(3), LeaderEpoch(1), rec("x")));
        assert!(follower.append_at(Offset(5), LeaderEpoch(1), rec("y")));
        assert!(follower.append_at(Offset(7), LeaderEpoch(2), rec("z")));
        assert_eq!(follower.log_end(), Offset(8));
        assert_eq!(follower.len(), 3);
        assert_eq!(follower.epoch_at(Offset(5)), Some(LeaderEpoch(1)));
        assert_eq!(follower.epoch_at(Offset(4)), None, "hole stays a hole");
        // Duplicate responses are no-ops, not double-appends.
        assert!(!follower.append_at(Offset(5), LeaderEpoch(1), rec("dup")));
        assert_eq!(follower.len(), 3);
    }
}
