//! The replicated partition log.
//!
//! Each broker holds one [`PartitionLog`] per replica it hosts. Entries are
//! tagged with the leader epoch under which they were appended, which is how
//! divergence is detected and reconciled after a partition heals: the
//! rejoining old leader truncates its log to match the new leader, and any
//! suffix it accepted while isolated is discarded — acknowledged or not.
//! That truncation is precisely the ZooKeeper-era silent-loss mechanism the
//! paper reproduces in Fig. 6b.

use s2g_proto::{LeaderEpoch, Offset, Record};

/// One appended entry: the record plus the epoch it was written under.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Leader epoch at append time.
    pub epoch: LeaderEpoch,
    /// The record.
    pub record: Record,
}

/// An append-only (except for truncation) record log for one partition.
///
/// # Examples
///
/// ```
/// use s2g_broker::PartitionLog;
/// use s2g_proto::{LeaderEpoch, Offset, Record};
/// use s2g_sim::SimTime;
///
/// let mut log = PartitionLog::new();
/// log.append(LeaderEpoch(0), Record::keyless("a", SimTime::ZERO));
/// log.append(LeaderEpoch(0), Record::keyless("b", SimTime::ZERO));
/// assert_eq!(log.log_end(), Offset(2));
/// assert_eq!(log.high_watermark(), Offset(0)); // nothing committed yet
/// log.advance_high_watermark(Offset(2));
/// assert_eq!(log.read(Offset(0), 10, true).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PartitionLog {
    entries: Vec<LogEntry>,
    high_watermark: Offset,
    /// Total record bytes retained (for the memory model).
    retained_bytes: usize,
    /// Records discarded by truncation — the observable "silent loss".
    truncated_records: Vec<Record>,
}

impl PartitionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next offset to be assigned (the log end offset, "LEO").
    pub fn log_end(&self) -> Offset {
        Offset(self.entries.len() as u64)
    }

    /// Highest offset known committed; consumers only see below this.
    pub fn high_watermark(&self) -> Offset {
        self.high_watermark
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of record payload retained.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    /// Appends one record under `epoch`, returning its offset.
    pub fn append(&mut self, epoch: LeaderEpoch, record: Record) -> Offset {
        let off = self.log_end();
        self.retained_bytes += record.encoded_len();
        self.entries.push(LogEntry { epoch, record });
        off
    }

    /// Appends a batch under `epoch`, returning the base offset.
    pub fn append_batch(
        &mut self,
        epoch: LeaderEpoch,
        records: impl IntoIterator<Item = Record>,
    ) -> Offset {
        let base = self.log_end();
        for r in records {
            self.append(epoch, r);
        }
        base
    }

    /// Advances the high watermark (never moves backwards).
    pub fn advance_high_watermark(&mut self, hw: Offset) {
        if hw > self.high_watermark {
            debug_assert!(hw <= self.log_end(), "HW beyond log end");
            self.high_watermark = hw.min(self.log_end());
        }
    }

    /// Reads up to `max` records starting at `from`. When `committed_only`
    /// is set (consumer fetches), records at or above the high watermark are
    /// withheld; replica fetches read the full log.
    pub fn read(&self, from: Offset, max: usize, committed_only: bool) -> Vec<Record> {
        let end = if committed_only {
            self.high_watermark
        } else {
            self.log_end()
        };
        if from >= end {
            return Vec::new();
        }
        let lo = from.value() as usize;
        let hi = (end.value() as usize).min(lo + max);
        self.entries[lo..hi]
            .iter()
            .map(|e| e.record.clone())
            .collect()
    }

    /// The epoch of the entry at `offset`, if present.
    pub fn epoch_at(&self, offset: Offset) -> Option<LeaderEpoch> {
        self.entries.get(offset.value() as usize).map(|e| e.epoch)
    }

    /// The epoch of the last entry, if any.
    pub fn last_epoch(&self) -> Option<LeaderEpoch> {
        self.entries.last().map(|e| e.epoch)
    }

    /// Truncates the log to `to` (exclusive): entries at offsets `>= to` are
    /// discarded and remembered in [`truncated`](Self::truncated). This is
    /// the divergence-reconciliation step a rejoining follower performs, and
    /// the source of silent loss under ZooKeeper-mode coordination.
    pub fn truncate_to(&mut self, to: Offset) -> usize {
        let keep = (to.value() as usize).min(self.entries.len());
        let dropped: Vec<LogEntry> = self.entries.split_off(keep);
        let n = dropped.len();
        for e in dropped {
            self.retained_bytes -= e.record.encoded_len();
            self.truncated_records.push(e.record);
        }
        if self.high_watermark > self.log_end() {
            self.high_watermark = self.log_end();
        }
        n
    }

    /// Finds where this log diverges from a leader whose log ends at
    /// `leader_end` with `leader_last_epoch`: the offset this replica should
    /// truncate to before appending. Compares epochs from the tail down.
    pub fn divergence_point(
        &self,
        leader_end: Offset,
        leader_epoch_at: impl Fn(Offset) -> Option<LeaderEpoch>,
    ) -> Offset {
        let mut candidate = self.log_end().min(leader_end);
        while candidate > Offset::ZERO {
            let prev = Offset(candidate.value() - 1);
            match (self.epoch_at(prev), leader_epoch_at(prev)) {
                (Some(mine), Some(theirs)) if mine == theirs => return candidate,
                _ => candidate = prev,
            }
        }
        Offset::ZERO
    }

    /// Records discarded by truncation, in truncation order.
    pub fn truncated(&self) -> &[Record] {
        &self.truncated_records
    }

    /// The end offset for `epoch`: one past the last entry whose epoch is at
    /// most `epoch` (0 if no such entry). Entries are epoch-monotonic, so
    /// this is the offset a follower stuck at `epoch` must truncate to.
    pub fn end_offset_for_epoch(&self, epoch: LeaderEpoch) -> Offset {
        match self.entries.iter().rposition(|e| e.epoch <= epoch) {
            Some(i) => Offset(i as u64 + 1),
            None => Offset::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_sim::SimTime;

    fn rec(v: &str) -> Record {
        Record::keyless(v.to_string(), SimTime::ZERO)
    }

    #[test]
    fn append_assigns_sequential_offsets() {
        let mut log = PartitionLog::new();
        assert_eq!(log.append(LeaderEpoch(0), rec("a")), Offset(0));
        assert_eq!(log.append(LeaderEpoch(0), rec("b")), Offset(1));
        assert_eq!(
            log.append_batch(LeaderEpoch(1), [rec("c"), rec("d")]),
            Offset(2)
        );
        assert_eq!(log.log_end(), Offset(4));
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn committed_reads_stop_at_high_watermark() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b"), rec("c")]);
        assert!(log.read(Offset(0), 10, true).is_empty());
        log.advance_high_watermark(Offset(2));
        let committed = log.read(Offset(0), 10, true);
        assert_eq!(committed.len(), 2);
        let all = log.read(Offset(0), 10, false);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn read_respects_max_and_from() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), (0..10).map(|i| rec(&i.to_string())));
        log.advance_high_watermark(Offset(10));
        let r = log.read(Offset(4), 3, true);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].value_utf8(), "4");
        assert!(log.read(Offset(10), 5, true).is_empty());
        assert!(log.read(Offset(99), 5, false).is_empty());
    }

    #[test]
    fn high_watermark_never_regresses() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        log.advance_high_watermark(Offset(2));
        log.advance_high_watermark(Offset(1));
        assert_eq!(log.high_watermark(), Offset(2));
    }

    #[test]
    fn truncation_discards_and_remembers() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        log.append_batch(LeaderEpoch(1), [rec("x"), rec("y")]);
        log.advance_high_watermark(Offset(4));
        let bytes_before = log.retained_bytes();
        let n = log.truncate_to(Offset(2));
        assert_eq!(n, 2);
        assert_eq!(log.log_end(), Offset(2));
        assert_eq!(log.high_watermark(), Offset(2), "HW clamped to new end");
        assert_eq!(log.truncated().len(), 2);
        assert_eq!(log.truncated()[0].value_utf8(), "x");
        assert!(log.retained_bytes() < bytes_before);
        // Truncating beyond the end is a no-op.
        assert_eq!(log.truncate_to(Offset(100)), 0);
    }

    #[test]
    fn divergence_point_matches_common_prefix() {
        // Follower: epochs [0,0,1,1]; leader: epochs [0,0,2,2,2].
        let mut follower = PartitionLog::new();
        follower.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        follower.append_batch(LeaderEpoch(1), [rec("x"), rec("y")]);
        let mut leader = PartitionLog::new();
        leader.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        leader.append_batch(LeaderEpoch(2), [rec("p"), rec("q"), rec("r")]);
        let point = follower.divergence_point(leader.log_end(), |o| leader.epoch_at(o));
        assert_eq!(point, Offset(2));
    }

    #[test]
    fn divergence_point_with_identical_logs_is_end() {
        let mut a = PartitionLog::new();
        a.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        let b = a.clone();
        let point = a.divergence_point(b.log_end(), |o| b.epoch_at(o));
        assert_eq!(point, Offset(2));
    }

    #[test]
    fn divergence_point_when_follower_is_ahead() {
        // Follower appended extra records under the old epoch while isolated.
        let mut follower = PartitionLog::new();
        follower.append_batch(LeaderEpoch(0), [rec("a"), rec("b"), rec("c"), rec("d")]);
        let mut leader = PartitionLog::new();
        leader.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        leader.append_batch(LeaderEpoch(1), [rec("z")]);
        let point = follower.divergence_point(leader.log_end(), |o| leader.epoch_at(o));
        // Common prefix is [a, b]; offset 2 has epoch 0 vs leader epoch 1.
        assert_eq!(point, Offset(2));
    }

    #[test]
    fn end_offset_for_epoch_finds_boundaries() {
        let mut log = PartitionLog::new();
        log.append_batch(LeaderEpoch(0), [rec("a"), rec("b")]);
        log.append_batch(LeaderEpoch(2), [rec("c")]);
        assert_eq!(log.end_offset_for_epoch(LeaderEpoch(0)), Offset(2));
        assert_eq!(log.end_offset_for_epoch(LeaderEpoch(1)), Offset(2));
        assert_eq!(log.end_offset_for_epoch(LeaderEpoch(2)), Offset(3));
        let empty = PartitionLog::new();
        assert_eq!(empty.end_offset_for_epoch(LeaderEpoch(5)), Offset::ZERO);
    }

    #[test]
    fn retained_bytes_tracks_appends() {
        let mut log = PartitionLog::new();
        assert_eq!(log.retained_bytes(), 0);
        let r = rec("hello");
        let sz = r.encoded_len();
        log.append(LeaderEpoch(0), r);
        assert_eq!(log.retained_bytes(), sz);
    }
}
