//! Broker-side consumer-group membership and partition assignment.
//!
//! Each group is coordinated by one broker (`fnv1a(group) % brokers`, so
//! every member independently finds the same coordinator). The coordinator
//! runs a KIP-848-style *server-side* assignor: members join with their
//! subscriptions, the coordinator computes a **sticky** assignment —
//! surviving members keep what they had, orphaned partitions go to the
//! least-loaded members, and a final balancing pass caps the spread at one
//! partition — and hands each member its slice with the current
//! *generation*. Heartbeats keep members alive; a member silent for the
//! session timeout is evicted, the generation bumps, and survivors absorb
//! its partitions the next time their (now stale-generation) heartbeat
//! bounces them back through `join`.
//!
//! Generations fence offset commits: a zombie evicted by a rebalance
//! commits with a stale generation and is rejected, so it can never clobber
//! the offsets its successor is advancing — Kafka's `IllegalGeneration`
//! discipline.

use std::collections::BTreeMap;

use s2g_proto::{ErrorCode, TopicPartition};
use s2g_sim::{SimDuration, SimTime};

/// One admitted group member.
#[derive(Debug, Clone)]
struct Member {
    topics: Vec<String>,
    last_seen: SimTime,
    assigned: Vec<TopicPartition>,
}

/// One consumer group's coordinator state.
#[derive(Debug, Default)]
struct Group {
    generation: u64,
    members: BTreeMap<String, Member>,
}

/// Counters the coordinator surfaces through broker stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCoordinatorStats {
    /// Join requests handled.
    pub joins: u64,
    /// Rebalances performed (generation bumps).
    pub rebalances: u64,
    /// Members evicted by the session sweep.
    pub evictions: u64,
    /// Offset commits rejected by generation fencing.
    pub fenced_commits: u64,
}

/// The per-broker group coordinator. Holds every group this broker
/// coordinates; brokers that are not a group's coordinator simply never
/// receive its RPCs (clients route by the shared group hash).
#[derive(Debug, Default)]
pub struct GroupCoordinator {
    groups: BTreeMap<String, Group>,
    stats: GroupCoordinatorStats,
}

impl GroupCoordinator {
    /// Creates an empty coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters.
    pub fn stats(&self) -> GroupCoordinatorStats {
        self.stats
    }

    /// The current generation of `group` (0 before any member joined).
    pub fn generation(&self, group: &str) -> u64 {
        self.groups.get(group).map_or(0, |g| g.generation)
    }

    /// The live member ids of `group`, in id order.
    pub fn members(&self, group: &str) -> Vec<String> {
        self.groups
            .get(group)
            .map(|g| g.members.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// A member's current assignment (empty when unknown).
    pub fn assignment(&self, group: &str, member: &str) -> Vec<TopicPartition> {
        self.groups
            .get(group)
            .and_then(|g| g.members.get(member))
            .map(|m| m.assigned.clone())
            .unwrap_or_default()
    }

    /// Admits (or refreshes) a member and returns `(generation, assigned)`.
    /// `partitions_of` resolves a topic to its partitions (the broker's
    /// metadata view).
    pub fn join(
        &mut self,
        now: SimTime,
        group: &str,
        member: &str,
        topics: Vec<String>,
        partitions_of: &dyn Fn(&str) -> Vec<TopicPartition>,
    ) -> (u64, Vec<TopicPartition>) {
        self.stats.joins += 1;
        let g = self.groups.entry(group.to_string()).or_default();
        let is_new = !g.members.contains_key(member);
        let subs_changed = g.members.get(member).is_some_and(|m| m.topics != topics);
        match g.members.entry(member.to_string()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Member {
                    topics,
                    last_seen: now,
                    assigned: Vec::new(),
                });
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let m = e.get_mut();
                m.topics = topics;
                m.last_seen = now;
            }
        }
        if is_new || subs_changed {
            g.generation += 1;
            self.stats.rebalances += 1;
            Self::reassign(g, partitions_of);
        }
        let g = self.groups.get(group).expect("just inserted");
        (
            g.generation,
            g.members
                .get(member)
                .expect("just inserted")
                .assigned
                .clone(),
        )
    }

    /// Processes a member heartbeat. `Ok` refreshes the session; a stale
    /// generation answers [`ErrorCode::RebalanceInProgress`] (rejoin to
    /// pick up the new assignment) and an unknown member
    /// [`ErrorCode::IllegalGeneration`] (evicted or coordinator restarted —
    /// rejoin from scratch).
    pub fn heartbeat(
        &mut self,
        now: SimTime,
        group: &str,
        member: &str,
        generation: u64,
    ) -> ErrorCode {
        let Some(g) = self.groups.get_mut(group) else {
            return ErrorCode::IllegalGeneration;
        };
        let Some(m) = g.members.get_mut(member) else {
            return ErrorCode::IllegalGeneration;
        };
        m.last_seen = now;
        if generation != g.generation {
            ErrorCode::RebalanceInProgress
        } else {
            ErrorCode::None
        }
    }

    /// Validates an offset commit's `(member, generation)` fence.
    pub fn check_commit(&mut self, group: &str, member: &str, generation: u64) -> ErrorCode {
        let current = self
            .groups
            .get(group)
            .filter(|g| g.members.contains_key(member))
            .map(|g| g.generation);
        if current == Some(generation) {
            ErrorCode::None
        } else {
            self.stats.fenced_commits += 1;
            ErrorCode::IllegalGeneration
        }
    }

    /// Evicts members silent for longer than `session_timeout` and, when
    /// any were, bumps the affected groups' generations and reassigns the
    /// orphaned partitions to the survivors. Called from the broker's
    /// heartbeat tick.
    pub fn sweep_sessions(
        &mut self,
        now: SimTime,
        session_timeout: SimDuration,
        partitions_of: &dyn Fn(&str) -> Vec<TopicPartition>,
    ) {
        for g in self.groups.values_mut() {
            let dead: Vec<String> = g
                .members
                .iter()
                .filter(|(_, m)| now.saturating_since(m.last_seen) > session_timeout)
                .map(|(id, _)| id.clone())
                .collect();
            if dead.is_empty() {
                continue;
            }
            for id in &dead {
                g.members.remove(id);
                self.stats.evictions += 1;
            }
            g.generation += 1;
            self.stats.rebalances += 1;
            Self::reassign(g, partitions_of);
        }
    }

    /// Sticky assignment: keep every member's still-valid partitions,
    /// hand unowned partitions to the least-loaded members, then move
    /// single partitions from the most- to the least-loaded member until
    /// the spread is at most one.
    fn reassign(g: &mut Group, partitions_of: &dyn Fn(&str) -> Vec<TopicPartition>) {
        if g.members.is_empty() {
            return;
        }
        // The full partition universe, deduplicated and ordered.
        let mut universe: Vec<TopicPartition> = Vec::new();
        for m in g.members.values() {
            for t in &m.topics {
                for tp in partitions_of(t) {
                    if !universe.contains(&tp) {
                        universe.push(tp);
                    }
                }
            }
        }
        universe.sort();
        // Sticky phase: a member keeps a partition it already owned if it
        // still subscribes to its topic and no earlier member kept it.
        let mut owner: BTreeMap<TopicPartition, String> = BTreeMap::new();
        for (id, m) in &g.members {
            for tp in &m.assigned {
                if universe.contains(tp) && m.topics.contains(&tp.topic) && !owner.contains_key(tp)
                {
                    owner.insert(tp.clone(), id.clone());
                }
            }
        }
        // Placement phase: unowned partitions go to the least-loaded
        // subscribed member (ties break on member id for determinism).
        let load = |owner: &BTreeMap<TopicPartition, String>, id: &str| {
            owner.values().filter(|o| *o == id).count()
        };
        for tp in &universe {
            if owner.contains_key(tp) {
                continue;
            }
            let target = g
                .members
                .iter()
                .filter(|(_, m)| m.topics.contains(&tp.topic))
                .map(|(id, _)| id.clone())
                .min_by_key(|id| (load(&owner, id), id.clone()));
            if let Some(id) = target {
                owner.insert(tp.clone(), id);
            }
        }
        // Balancing phase: cap the load spread at one by moving single
        // partitions from the heaviest to the lightest eligible member.
        loop {
            let mut loads: Vec<(String, usize)> = g
                .members
                .keys()
                .map(|id| (id.clone(), load(&owner, id)))
                .collect();
            loads.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
            let (light, light_n) = loads.first().cloned().expect("non-empty");
            let (heavy, heavy_n) = loads.last().cloned().expect("non-empty");
            if heavy_n <= light_n + 1 {
                break;
            }
            // Move the first movable partition the light member subscribes
            // to from the heavy member.
            let movable = universe.iter().find(|tp| {
                owner.get(*tp).is_some_and(|o| *o == heavy)
                    && g.members[&light].topics.contains(&tp.topic)
            });
            match movable {
                Some(tp) => {
                    owner.insert(tp.clone(), light.clone());
                }
                None => break, // subscriptions prevent further balancing
            }
        }
        for (id, m) in g.members.iter_mut() {
            m.assigned = universe
                .iter()
                .filter(|tp| owner.get(*tp).is_some_and(|o| o == id))
                .cloned()
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts(n: u32) -> impl Fn(&str) -> Vec<TopicPartition> {
        move |t: &str| (0..n).map(|p| TopicPartition::new(t, p)).collect()
    }

    #[test]
    fn join_assigns_all_partitions_to_a_single_member() {
        let mut c = GroupCoordinator::new();
        let (generation, assigned) = c.join(SimTime::ZERO, "g", "m0", vec!["t".into()], &parts(4));
        assert_eq!(generation, 1);
        assert_eq!(assigned.len(), 4);
    }

    #[test]
    fn second_join_rebalances_stickily() {
        let mut c = GroupCoordinator::new();
        let (_, first) = c.join(SimTime::ZERO, "g", "m0", vec!["t".into()], &parts(4));
        let (generation, second) = c.join(SimTime::ZERO, "g", "m1", vec!["t".into()], &parts(4));
        assert_eq!(generation, 2);
        assert_eq!(second.len(), 2);
        let kept = c.assignment("g", "m0");
        assert_eq!(kept.len(), 2);
        // Sticky: m0's final partitions are a subset of its original four.
        assert!(kept.iter().all(|tp| first.contains(tp)));
    }

    #[test]
    fn eviction_hands_partitions_to_survivors() {
        let mut c = GroupCoordinator::new();
        c.join(SimTime::ZERO, "g", "m0", vec!["t".into()], &parts(4));
        c.join(SimTime::ZERO, "g", "m1", vec!["t".into()], &parts(4));
        // m1 heartbeats; m0 goes silent past the timeout.
        c.heartbeat(SimTime::from_secs(5), "g", "m1", 2);
        c.sweep_sessions(SimTime::from_secs(6), SimDuration::from_secs(4), &parts(4));
        assert_eq!(c.members("g"), vec!["m1".to_string()]);
        assert_eq!(c.assignment("g", "m1").len(), 4, "survivor absorbed all");
        assert_eq!(c.generation("g"), 3);
        // The evicted member's commit is fenced at its old generation.
        assert_eq!(c.check_commit("g", "m0", 2), ErrorCode::IllegalGeneration);
        assert_eq!(c.check_commit("g", "m1", 3), ErrorCode::None);
    }

    #[test]
    fn stale_heartbeat_requests_rejoin() {
        let mut c = GroupCoordinator::new();
        c.join(SimTime::ZERO, "g", "m0", vec!["t".into()], &parts(2));
        c.join(SimTime::ZERO, "g", "m1", vec!["t".into()], &parts(2));
        // m0 still believes generation 1.
        assert_eq!(
            c.heartbeat(SimTime::ZERO, "g", "m0", 1),
            ErrorCode::RebalanceInProgress
        );
        assert_eq!(c.heartbeat(SimTime::ZERO, "g", "m0", 2), ErrorCode::None);
        assert_eq!(
            c.heartbeat(SimTime::ZERO, "g", "ghost", 2),
            ErrorCode::IllegalGeneration
        );
    }

    #[test]
    fn balancing_caps_the_spread_at_one() {
        let mut c = GroupCoordinator::new();
        for m in ["a", "b", "c"] {
            c.join(SimTime::ZERO, "g", m, vec!["t".into()], &parts(8));
        }
        let loads: Vec<usize> = ["a", "b", "c"]
            .iter()
            .map(|m| c.assignment("g", m).len())
            .collect();
        assert_eq!(loads.iter().sum::<usize>(), 8);
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        assert!(max - min <= 1, "spread {loads:?}");
    }
}
