//! Leader-election property sweep.
//!
//! A 3-broker cluster replicates one topic at RF=3 while a seeded schedule
//! of leader kills and restarts churns the cluster from the test loop.
//! After the schedule settles, the replication invariants must hold for
//! every seed:
//!
//! * exactly one live broker leads the partition;
//! * every replica's log is byte-identical to the elected leader's
//!   (followers truncated any divergent suffix and caught up);
//! * at `acks=all`, no acknowledged record is lost — every acked sequence
//!   number is delivered to a read-committed-agnostic consumer that
//!   survives the whole run.

use std::collections::BTreeMap;

use s2g_broker::{
    Broker, BrokerConfig, CollectingSink, ConsumerClient, ConsumerConfig, ConsumerProcess,
    ControllerConfig, CoordinationMode, ProducerClient, ProducerConfig, ProducerProcess,
    RateSource, TopicSpec, ZkController,
};
use s2g_net::{LinkSpec, NetTransport, Network, Topology};
use s2g_proto::{AckMode, BrokerId, ProducerId, TopicPartition};
use s2g_sim::{ProcessId, Sim, SimDuration, SimTime};

const N_BROKERS: u32 = 3;
const RUN_FOR: u64 = 60;

/// Deterministic xorshift so a seed fully fixes the kill/restart schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

struct Cluster {
    sim: Sim,
    controller_pids: Vec<ProcessId>,
    broker_pids: Vec<ProcessId>,
    brokers_hash: BTreeMap<BrokerId, ProcessId>,
    producer_pid: ProcessId,
    consumer_pid: ProcessId,
    broker_cfg: BrokerConfig,
    incarnations: Vec<u64>,
}

/// One kill/restart cycle of the schedule: which broker died, when, and
/// how long it stayed down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cycle {
    victim: u32,
    at_ms: u64,
    down_ms: u64,
}

fn build(seed: u64) -> Cluster {
    let mut topo = Topology::star(N_BROKERS as usize, LinkSpec::new().latency_ms(2)).unwrap();
    for h in ["hc", "hp"] {
        topo.add_host(h).unwrap();
        topo.add_link(h, "s1", LinkSpec::new().latency_ms(2))
            .unwrap();
    }
    let net = Network::new(topo).into_handle();
    let mut sim = Sim::new(seed);
    sim.set_transport(Box::new(NetTransport(net.clone())));

    let topics = vec![TopicSpec::new("events").replication(3).primary(0)];
    let controller_pids = vec![ProcessId(0)];
    let broker_pids: Vec<ProcessId> = (1..1 + N_BROKERS).map(ProcessId).collect();
    let brokers_btree: BTreeMap<BrokerId, ProcessId> = (0..N_BROKERS)
        .map(|i| (BrokerId(i), broker_pids[i as usize]))
        .collect();
    let brokers_hash: BTreeMap<BrokerId, ProcessId> =
        brokers_btree.iter().map(|(k, v)| (*k, *v)).collect();

    // Failure detection must outpace the schedule's shortest downtime or
    // no election ever happens.
    let ctrl_cfg = ControllerConfig {
        session_timeout: SimDuration::from_secs(1),
        session_check_interval: SimDuration::from_millis(250),
        ..ControllerConfig::default()
    };
    let pid = sim.spawn(Box::new(ZkController::new(
        ctrl_cfg,
        brokers_btree.clone(),
        &topics,
    )));
    assert_eq!(pid, controller_pids[0]);

    let broker_cfg = BrokerConfig {
        heartbeat_interval: SimDuration::from_millis(300),
        session_timeout: SimDuration::from_secs(1),
        replica_fetch_interval: SimDuration::from_millis(10),
        ..BrokerConfig::default()
    };
    for i in 0..N_BROKERS {
        let b = Broker::new(
            BrokerId(i),
            broker_cfg.clone(),
            CoordinationMode::Zk,
            controller_pids.clone(),
            brokers_hash.clone(),
        );
        let pid = sim.spawn(Box::new(b));
        assert_eq!(pid, broker_pids[i as usize]);
    }

    // Producer on hp at acks=all with a tight request timeout so leader
    // rediscovery is bounded by metadata refresh, not by the 2 s default.
    let pcfg = ProducerConfig {
        acks: AckMode::All,
        request_timeout: SimDuration::from_millis(500),
        ..ProducerConfig::default()
    };
    let client = ProducerClient::new(ProducerId(0), pcfg, broker_pids[0], brokers_hash.clone(), 0);
    // Produce for the whole schedule: one record every 50 ms for ~50 s.
    let source = RateSource::new("events", 1_000, SimDuration::from_millis(50)).payload_bytes(64);
    let producer_pid = sim.spawn(Box::new(ProducerProcess::new(client, Box::new(source))));

    let consumer = ConsumerClient::new(
        ConsumerConfig::default(),
        broker_pids[0],
        brokers_hash.clone(),
        vec!["events".into()],
    );
    let consumer_pid = sim.spawn(Box::new(ConsumerProcess::new(
        0,
        consumer,
        Box::new(CollectingSink::default()),
    )));

    {
        let mut n = net.borrow_mut();
        let lookup = |n: &Network, name: &str| n.topology().lookup(name).unwrap();
        let hc = lookup(&n, "hc");
        let hp = lookup(&n, "hp");
        let hosts: Vec<_> = (0..N_BROKERS)
            .map(|i| lookup(&n, &format!("h{}", i + 1)))
            .collect();
        n.place(controller_pids[0], hc);
        for (i, pid) in broker_pids.iter().enumerate() {
            n.place(*pid, hosts[i]);
        }
        n.place(producer_pid, hp);
        n.place(consumer_pid, hp);
    }

    Cluster {
        sim,
        controller_pids,
        broker_pids,
        brokers_hash,
        producer_pid,
        consumer_pid,
        broker_cfg,
        incarnations: vec![0; N_BROKERS as usize],
    }
}

/// Derives the seeded kill/restart schedule: four cycles, alternating
/// between killing the current leader (forcing an election) and a broker
/// chosen by the RNG, with RNG-chosen downtimes and gaps. Only one broker
/// is ever down at a time, so a quorum of replicas always survives.
fn schedule(rng: &mut Rng) -> Vec<(u64, u64)> {
    // (start_ms, down_ms) — victims are resolved at kill time (the current
    // leader for even cycles) because elections move leadership around.
    let mut out = Vec::new();
    let mut t = 8_000u64;
    for _ in 0..4 {
        let down = 2_000 + (rng.next() % 3) * 1_000;
        out.push((t, down));
        t += down + 4_000 + (rng.next() % 3) * 1_000;
    }
    out
}

fn leader_of(cluster: &Cluster, tp: &TopicPartition) -> Option<u32> {
    (0..N_BROKERS).find(|i| {
        cluster
            .sim
            .process_ref::<Broker>(cluster.broker_pids[*i as usize])
            .is_some_and(|b| b.is_leader(tp))
    })
}

/// Runs one seeded schedule to completion; returns
/// `(cycles, acked_seqs, received_seqs, per_broker_fingerprints)`.
fn run_schedule(seed: u64) -> (Vec<Cycle>, Vec<u64>, Vec<u64>, Vec<String>) {
    let mut cluster = build(seed);
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let plan = schedule(&mut rng);
    let tp = TopicPartition::new("events", 0);
    let mut cycles = Vec::new();
    for (k, (at_ms, down_ms)) in plan.into_iter().enumerate() {
        cluster.sim.run_until(SimTime::from_millis(at_ms));
        // Even cycles kill the current leader (forcing an election); odd
        // cycles kill an RNG-chosen broker (possibly a follower).
        let victim = if k % 2 == 0 {
            leader_of(&cluster, &tp).expect("partition must have a live leader")
        } else {
            (rng.next() % u64::from(N_BROKERS)) as u32
        };
        let pid = cluster.broker_pids[victim as usize];
        let corpse = cluster.sim.kill(pid);
        assert!(corpse.is_some(), "victim broker {victim} was alive");
        cycles.push(Cycle {
            victim,
            at_ms,
            down_ms,
        });

        cluster.sim.run_until(SimTime::from_millis(at_ms + down_ms));
        // Restart empty (no durable backend): the replica must rebuild its
        // log purely through follower catch-up from the elected leader.
        cluster.incarnations[victim as usize] += 1;
        let mut b = Broker::new(
            BrokerId(victim),
            cluster.broker_cfg.clone(),
            CoordinationMode::Zk,
            cluster.controller_pids.clone(),
            cluster.brokers_hash.clone(),
        );
        b.set_incarnation(cluster.incarnations[victim as usize]);
        b.mark_restarted();
        cluster.sim.respawn(pid, Box::new(b));
    }
    cluster.sim.run_until(SimTime::from_secs(RUN_FOR));

    let producer = cluster
        .sim
        .process_ref::<ProducerProcess>(cluster.producer_pid)
        .unwrap();
    let acked: Vec<u64> = producer
        .client()
        .outcomes()
        .iter()
        .filter(|o| o.delivered)
        .map(|o| o.seq)
        .collect();
    let consumer = cluster
        .sim
        .process_ref::<ConsumerProcess>(cluster.consumer_pid)
        .unwrap();
    let received: Vec<u64> = consumer
        .sink_as::<CollectingSink>()
        .unwrap()
        .deliveries
        .iter()
        .map(|(_, _, r)| r.producer_seq)
        .collect();
    let fingerprints: Vec<String> = cluster
        .broker_pids
        .iter()
        .map(|pid| {
            cluster
                .sim
                .process_ref::<Broker>(*pid)
                .expect("all brokers live at end")
                .log_fingerprint(&tp)
        })
        .collect();
    (cycles, acked, received, fingerprints)
}

#[test]
fn seeded_schedules_preserve_replica_identity_and_acked_records() {
    for seed in [3, 11, 42] {
        let (cycles, acked, received, fingerprints) = run_schedule(seed);
        assert_eq!(cycles.len(), 4, "seed {seed}: full schedule executed");

        // The schedule must actually have exercised elections: the first
        // (and third) cycle killed whoever led the partition.
        assert!(
            !acked.is_empty(),
            "seed {seed}: producer acked nothing — cluster never served"
        );

        // Every surviving replica's log is byte-identical to the leader's.
        assert!(
            !fingerprints[0].is_empty()
                || !fingerprints[1].is_empty()
                || !fingerprints[2].is_empty(),
            "seed {seed}: all logs empty"
        );
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: replica logs diverged after schedule {cycles:?}: \
             lens {:?}",
            fingerprints.iter().map(String::len).collect::<Vec<_>>()
        );

        // No acked record lost at acks=all: every acked sequence reached
        // the consumer despite four crash/restart cycles.
        let lost: Vec<u64> = acked
            .iter()
            .copied()
            .filter(|s| !received.contains(s))
            .collect();
        assert!(
            lost.is_empty(),
            "seed {seed}: lost {} of {} acked records (schedule {cycles:?})",
            lost.len(),
            acked.len()
        );
    }
}

#[test]
fn elections_moved_leadership_during_the_sweep() {
    let mut cluster = build(7);
    let tp = TopicPartition::new("events", 0);
    cluster.sim.run_until(SimTime::from_secs(5));
    let first = leader_of(&cluster, &tp).expect("initial leader elected");
    let pid = cluster.broker_pids[first as usize];
    cluster.sim.kill(pid).expect("leader alive");
    cluster.sim.run_until(SimTime::from_secs(10));
    let second = leader_of(&cluster, &tp).expect("new leader elected");
    assert_ne!(first, second, "leadership must move off the killed broker");
    // Restart the old leader: it must rejoin as follower (the new leader
    // keeps the partition until preferred election, which is delayed far
    // beyond this run).
    let mut b = Broker::new(
        BrokerId(first),
        cluster.broker_cfg.clone(),
        CoordinationMode::Zk,
        cluster.controller_pids.clone(),
        cluster.brokers_hash.clone(),
    );
    b.set_incarnation(1);
    b.mark_restarted();
    cluster.sim.respawn(pid, Box::new(b));
    cluster.sim.run_until(SimTime::from_secs(20));
    let b = cluster.sim.process_ref::<Broker>(pid).unwrap();
    assert!(
        !b.is_leader(&tp),
        "restarted broker must rejoin as follower"
    );
    // And its rebuilt log matches the current leader's byte for byte.
    let leader = leader_of(&cluster, &tp).unwrap();
    let leader_fp = cluster
        .sim
        .process_ref::<Broker>(cluster.broker_pids[leader as usize])
        .unwrap()
        .log_fingerprint(&tp);
    let follower_fp = cluster
        .sim
        .process_ref::<Broker>(pid)
        .unwrap()
        .log_fingerprint(&tp);
    assert_eq!(
        leader_fp, follower_fp,
        "restarted follower must converge to the leader's log"
    );
}

#[test]
fn schedules_are_deterministic_per_seed() {
    assert_eq!(run_schedule(11), run_schedule(11));
}
