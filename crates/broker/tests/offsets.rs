//! Consumer resume from broker-committed offsets.
//!
//! Property (randomized over seeds, offline stand-in for proptest): for any
//! record count, auto-commit cadence, and crash/restart timing, a consumer
//! recreated in the same group
//!
//! * re-reads **no** record below the broker's committed offset, and
//! * misses **none** at or above it,
//!
//! so the union of the dead consumer's deliveries (below the commit) and
//! the successor's deliveries covers every produced record.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use s2g_broker::{
    Broker, BrokerConfig, CollectingSink, ConsumerClient, ConsumerConfig, ConsumerProcess,
    ControllerConfig, CoordinationMode, ProducerClient, ProducerConfig, ProducerProcess,
    RateSource, TopicSpec, ZkController,
};
use s2g_proto::{BrokerId, ProducerId, TopicPartition};
use s2g_sim::{ProcessId, Sim, SimDuration, SimTime};

const GROUP: &str = "resume-group";

struct Case {
    records: u64,
    record_interval_ms: u64,
    commit_interval_ms: u64,
    kill_at_ms: u64,
    restart_after_ms: u64,
}

fn seqs(sink: &CollectingSink) -> Vec<u64> {
    let mut s: Vec<u64> = sink
        .deliveries
        .iter()
        .map(|(_, _, r)| r.producer_seq)
        .collect();
    s.sort_unstable();
    s
}

fn run_case(case: &Case) {
    let mut sim = Sim::new(7);
    let controller_pid = ProcessId(0);
    let broker_pid = ProcessId(1);
    let brokers: BTreeMap<BrokerId, ProcessId> = [(BrokerId(0), broker_pid)].into();
    let peer_map: BTreeMap<BrokerId, ProcessId> = brokers.iter().map(|(k, v)| (*k, *v)).collect();
    let topics = vec![TopicSpec::new("t")];
    sim.spawn(Box::new(ZkController::new(
        ControllerConfig::default(),
        brokers.clone(),
        &topics,
    )));
    sim.spawn(Box::new(Broker::new(
        BrokerId(0),
        BrokerConfig::default(),
        CoordinationMode::Zk,
        vec![controller_pid],
        peer_map.clone(),
    )));
    let producer = ProducerClient::new(
        ProducerId(0),
        ProducerConfig::default(),
        broker_pid,
        peer_map.clone(),
        0,
    );
    let source = RateSource::new(
        "t",
        case.records,
        SimDuration::from_millis(case.record_interval_ms),
    )
    .payload_bytes(32);
    sim.spawn(Box::new(ProducerProcess::new(producer, Box::new(source))));

    let cfg = ConsumerConfig {
        group: Some(GROUP.into()),
        auto_commit_interval: SimDuration::from_millis(case.commit_interval_ms),
        poll_interval: SimDuration::from_millis(20),
        ..ConsumerConfig::default()
    };
    let first_client =
        ConsumerClient::new(cfg.clone(), broker_pid, peer_map.clone(), vec!["t".into()]);
    let first = sim.spawn(Box::new(ConsumerProcess::new(
        0,
        first_client,
        Box::new(CollectingSink::default()),
    )));

    // Run until the kill instant, crash the consumer, note the commit.
    sim.run_until(SimTime::from_millis(case.kill_at_ms));
    let corpse = sim.kill(first).expect("consumer was alive");
    let first_seqs = {
        let cp = (corpse.as_ref() as &dyn std::any::Any)
            .downcast_ref::<ConsumerProcess>()
            .expect("consumer process");
        seqs(cp.sink_as::<CollectingSink>().expect("sink"))
    };
    let tp = TopicPartition::new("t", 0);
    let committed = sim
        .process_ref::<Broker>(broker_pid)
        .expect("broker")
        .committed_offset(GROUP, &tp)
        .map_or(0, |o| o.value());
    assert!(
        committed <= first_seqs.len() as u64,
        "commit {committed} cannot exceed the {} records delivered",
        first_seqs.len()
    );

    // Respawn a fresh consumer in the same group.
    sim.run_until(SimTime::from_millis(
        case.kill_at_ms + case.restart_after_ms,
    ));
    let second_client = ConsumerClient::new(cfg, broker_pid, peer_map, vec!["t".into()]);
    sim.respawn(
        first,
        Box::new(ConsumerProcess::new(
            1,
            second_client,
            Box::new(CollectingSink::default()),
        )),
    );
    sim.run_until(SimTime::from_secs(120));

    let cp = sim
        .process_ref::<ConsumerProcess>(first)
        .expect("successor");
    let second_seqs = seqs(cp.sink_as::<CollectingSink>().expect("sink"));
    let stats = cp.client().stats();
    assert_eq!(
        stats.offset_resets, 0,
        "resume must not reset to the high watermark"
    );
    if committed > 0 {
        assert_eq!(
            stats.resumed_partitions, 1,
            "position came from the committed offset"
        );
    }

    // No record below the commit is re-read...
    if let Some(min) = second_seqs.first() {
        assert!(
            *min >= committed,
            "successor re-read seq {min} below committed offset {committed}"
        );
    }
    // ...and none at or above it is missed: the successor reads exactly
    // [committed, records) once each (single partition, fault-free net).
    let expected: Vec<u64> = (committed..case.records).collect();
    assert_eq!(
        second_seqs, expected,
        "successor must cover [commit, end) exactly once"
    );
    // Jointly, nothing produced is unaccounted for.
    let mut union = first_seqs;
    union.extend(&second_seqs);
    union.sort_unstable();
    union.dedup();
    assert_eq!(union, (0..case.records).collect::<Vec<u64>>());
}

#[test]
fn consumer_resumes_from_committed_offsets_across_random_cases() {
    let mut rng = StdRng::seed_from_u64(0x0FF5E7);
    for case_no in 0..24 {
        let records = rng.gen_range(5u64..150);
        let record_interval_ms = rng.gen_range(2u64..20);
        let case = Case {
            records,
            record_interval_ms,
            commit_interval_ms: rng.gen_range(20u64..400),
            // Kill somewhere inside (or just past) the production window.
            kill_at_ms: rng.gen_range(30..records * record_interval_ms + 500),
            restart_after_ms: rng.gen_range(10u64..2_000),
        };
        eprintln!(
            "case {case_no}: {} records @ {}ms, commit {}ms, kill {}ms, restart +{}ms",
            case.records,
            case.record_interval_ms,
            case.commit_interval_ms,
            case.kill_at_ms,
            case.restart_after_ms
        );
        run_case(&case);
    }
}

#[test]
fn cold_group_starts_at_zero_without_resets() {
    let case = Case {
        records: 40,
        record_interval_ms: 5,
        commit_interval_ms: 100_000, // never commits before the kill
        kill_at_ms: 60,
        restart_after_ms: 50,
    };
    run_case(&case);
}
