//! End-to-end network-partition tests: the Fig. 6 dynamics.
//!
//! A small cluster (3 brokers, star topology, 2 topics with replication 3)
//! suffers a 60-second disconnection of the host running topic A's leader,
//! with a producer and a consumer co-located on that host and a remote
//! consumer elsewhere.
//!
//! Under ZooKeeper-mode coordination the acknowledged-but-unreplicated
//! suffix is silently truncated on heal (Alquraan et al. OSDI'18, reproduced
//! by the paper's Fig. 6b). Under KRaft-mode coordination with `acks=all`
//! no acknowledged record is ever lost.

use std::collections::BTreeMap;

use s2g_broker::{
    Broker, BrokerConfig, CollectingSink, ConsumerClient, ConsumerConfig, ConsumerProcess,
    ControllerConfig, CoordinationMode, KraftController, ProducerClient, ProducerConfig,
    ProducerProcess, RandomTopicSource, TopicSpec, ZkController,
};
use s2g_net::{FaultInjector, FaultPlan, LinkSpec, NetTransport, Network, Topology};
use s2g_proto::{AckMode, BrokerId, ProducerId, TopicPartition};
use s2g_sim::{ProcessId, Sim, SimDuration, SimTime};

const N_BROKERS: u32 = 3;
const DISCONNECT_AT: u64 = 60;
const RECONNECT_AT: u64 = 120;
const RUN_FOR: u64 = 300;

struct Cluster {
    sim: Sim,
    broker_pids: Vec<ProcessId>,
    producer_pid: ProcessId,
    remote_consumer_pid: ProcessId,
    colocated_consumer_pid: ProcessId,
}

/// Builds: hosts h1..h3 (one broker each) + hc (controller(s)) on a star;
/// producer + consumer on h1 (which hosts topic-a's preferred leader),
/// remote consumer on h3. Disconnects h1 for 60 s.
fn build(mode: CoordinationMode, acks: AckMode, seed: u64) -> Cluster {
    let mut topo = Topology::star(N_BROKERS as usize, LinkSpec::new().latency_ms(2)).unwrap();
    topo.add_host("hc").unwrap();
    topo.add_link("hc", "s1", LinkSpec::new().latency_ms(2))
        .unwrap();
    let net = Network::new(topo).into_handle();
    let mut sim = Sim::new(seed);
    sim.set_transport(Box::new(NetTransport(net.clone())));

    let topics = vec![
        TopicSpec::new("topic-a").replication(3).primary(0),
        TopicSpec::new("topic-b").replication(3).primary(1),
    ];

    // Pid layout (spawn order): controllers first, then brokers, then clients.
    let n_controllers = match mode {
        CoordinationMode::Zk => 1u32,
        CoordinationMode::Kraft => 3u32,
    };
    let controller_pids: Vec<ProcessId> = (0..n_controllers).map(ProcessId).collect();
    let broker_pids: Vec<ProcessId> = (n_controllers..n_controllers + N_BROKERS)
        .map(ProcessId)
        .collect();
    let brokers_btree: BTreeMap<BrokerId, ProcessId> = (0..N_BROKERS)
        .map(|i| (BrokerId(i), broker_pids[i as usize]))
        .collect();
    let brokers_hash: BTreeMap<BrokerId, ProcessId> =
        brokers_btree.iter().map(|(k, v)| (*k, *v)).collect();

    // Controllers.
    match mode {
        CoordinationMode::Zk => {
            let c = ZkController::new(ControllerConfig::default(), brokers_btree.clone(), &topics);
            let pid = sim.spawn(Box::new(c));
            assert_eq!(pid, controller_pids[0]);
        }
        CoordinationMode::Kraft => {
            let quorum: BTreeMap<BrokerId, ProcessId> = (0..3u32)
                .map(|i| (BrokerId(1000 + i), controller_pids[i as usize]))
                .collect();
            for i in 0..3u32 {
                let cfg = ControllerConfig {
                    mode,
                    ..ControllerConfig::default()
                };
                let c = KraftController::new(
                    BrokerId(1000 + i),
                    quorum.clone(),
                    brokers_btree.clone(),
                    cfg,
                    topics.clone(),
                );
                let pid = sim.spawn(Box::new(c));
                assert_eq!(pid, controller_pids[i as usize]);
            }
        }
    }

    // Brokers.
    for i in 0..N_BROKERS {
        let b = Broker::new(
            BrokerId(i),
            BrokerConfig::default(),
            mode,
            controller_pids.clone(),
            brokers_hash.clone(),
        );
        let pid = sim.spawn(Box::new(b));
        assert_eq!(pid, broker_pids[i as usize]);
    }

    // Producer co-located with broker 0 on h1, bootstrapping from it.
    let pcfg = ProducerConfig {
        acks,
        ..ProducerConfig::default()
    };
    let client = ProducerClient::new(ProducerId(0), pcfg, broker_pids[0], brokers_hash.clone(), 0);
    let source = RandomTopicSource::new(
        vec!["topic-a".into(), "topic-b".into()],
        30,
        500,
        SimTime::from_secs(RUN_FOR - 60),
    );
    let producer_pid = sim.spawn(Box::new(ProducerProcess::new(client, Box::new(source))));

    // Remote consumer on h3 (bootstraps from broker 2).
    let ccfg = ConsumerConfig::default();
    let rc = ConsumerClient::new(
        ccfg.clone(),
        broker_pids[2],
        brokers_hash.clone(),
        vec!["topic-a".into(), "topic-b".into()],
    );
    let remote_consumer_pid = sim.spawn(Box::new(ConsumerProcess::new(
        0,
        rc,
        Box::new(CollectingSink::default()),
    )));

    // Co-located consumer on h1 (bootstraps from broker 0).
    let cc = ConsumerClient::new(
        ccfg,
        broker_pids[0],
        brokers_hash,
        vec!["topic-a".into(), "topic-b".into()],
    );
    let colocated_consumer_pid = sim.spawn(Box::new(ConsumerProcess::new(
        1,
        cc,
        Box::new(CollectingSink::default()),
    )));

    // Fault plan: disconnect h1 during [60, 120).
    let plan = FaultPlan::new().transient_disconnect(
        "h1",
        SimTime::from_secs(DISCONNECT_AT),
        SimDuration::from_secs(RECONNECT_AT - DISCONNECT_AT),
    );
    sim.spawn(Box::new(FaultInjector::new(net.clone(), plan)));

    // Placement.
    {
        let mut n = net.borrow_mut();
        let h = |name: &str| n.topology().lookup(name).unwrap();
        let (h1, h2, h3, hc) = (h("h1"), h("h2"), h("h3"), h("hc"));
        for (i, pid) in controller_pids.iter().enumerate() {
            // ZK: single controller on hc. KRaft: spread over hc, h2, h3 so a
            // majority survives h1's disconnection.
            let node = match (mode, i) {
                (CoordinationMode::Zk, _) => hc,
                (CoordinationMode::Kraft, 0) => hc,
                (CoordinationMode::Kraft, 1) => h2,
                (CoordinationMode::Kraft, _) => h3,
            };
            n.place(*pid, node);
        }
        n.place(broker_pids[0], h1);
        n.place(broker_pids[1], h2);
        n.place(broker_pids[2], h3);
        n.place(producer_pid, h1);
        n.place(remote_consumer_pid, h3);
        n.place(colocated_consumer_pid, h1);
    }

    Cluster {
        sim,
        broker_pids,
        producer_pid,
        remote_consumer_pid,
        colocated_consumer_pid,
    }
}

fn acked_seqs(sim: &Sim, pid: ProcessId, topic: &str) -> Vec<u64> {
    let p = sim.process_ref::<ProducerProcess>(pid).unwrap();
    p.client()
        .outcomes()
        .iter()
        .filter(|o| o.delivered && o.topic == topic)
        .map(|o| o.seq)
        .collect()
}

fn received_seqs(sim: &Sim, pid: ProcessId, topic: &str) -> Vec<u64> {
    let c = sim.process_ref::<ConsumerProcess>(pid).unwrap();
    c.sink_as::<CollectingSink>()
        .unwrap()
        .deliveries
        .iter()
        .filter(|(_, tp, _)| tp.topic == topic)
        .map(|(_, _, r)| r.producer_seq)
        .collect()
}

#[test]
fn zk_mode_silently_loses_acked_records() {
    let mut cluster = build(CoordinationMode::Zk, AckMode::Leader, 1);
    cluster.sim.run_until(SimTime::from_secs(RUN_FOR));

    // The old leader truncated its divergent suffix on rejoin.
    let b0 = cluster
        .sim
        .process_ref::<Broker>(cluster.broker_pids[0])
        .unwrap();
    assert!(
        b0.stats().records_truncated > 0,
        "healed leader must truncate its divergent suffix, stats: {:?}",
        b0.stats()
    );

    // Some topic-a records were acknowledged to the producer yet never reach
    // the remote consumer: silent loss.
    let acked = acked_seqs(&cluster.sim, cluster.producer_pid, "topic-a");
    let received = received_seqs(&cluster.sim, cluster.remote_consumer_pid, "topic-a");
    assert!(
        !acked.is_empty(),
        "producer must have acked topic-a records"
    );
    let lost: Vec<u64> = acked
        .iter()
        .copied()
        .filter(|s| !received.contains(s))
        .collect();
    assert!(
        !lost.is_empty(),
        "ZooKeeper mode must lose acknowledged records across the partition \
         (acked {}, received {})",
        acked.len(),
        received.len()
    );

    // All the losses come from the partition window.
    let p = cluster
        .sim
        .process_ref::<ProducerProcess>(cluster.producer_pid)
        .unwrap();
    for o in p
        .client()
        .outcomes()
        .iter()
        .filter(|o| o.delivered && o.topic == "topic-a")
    {
        if lost.contains(&o.seq) {
            let t = o.created.as_secs();
            // Records appended just before the cut but not yet replicated
            // (replica fetch interval + linger) are lost too, so allow a
            // small margin before the disconnect instant.
            assert!(
                (DISCONNECT_AT - 5..RECONNECT_AT + 10).contains(&t),
                "lost record created at {t}s, outside the partition window"
            );
        }
    }

    // Topic-b records (leader elsewhere) are delayed, not lost: every acked
    // record reaches the remote consumer.
    let acked_b = acked_seqs(&cluster.sim, cluster.producer_pid, "topic-b");
    let received_b = received_seqs(&cluster.sim, cluster.remote_consumer_pid, "topic-b");
    let lost_b: Vec<u64> = acked_b
        .iter()
        .copied()
        .filter(|s| !received_b.contains(s))
        .collect();
    assert!(
        lost_b.is_empty(),
        "topic-b acked records must all be delivered, lost {} of {}",
        lost_b.len(),
        acked_b.len()
    );
}

#[test]
fn zk_mode_colocated_consumer_saw_doomed_records() {
    let mut cluster = build(CoordinationMode::Zk, AckMode::Leader, 2);
    cluster.sim.run_until(SimTime::from_secs(RUN_FOR));
    // The co-located consumer read from the isolated leader (which locally
    // shrank its ISR and advanced the HW), so it saw records the remote
    // consumer never will.
    let colocated = received_seqs(&cluster.sim, cluster.colocated_consumer_pid, "topic-a");
    let remote = received_seqs(&cluster.sim, cluster.remote_consumer_pid, "topic-a");
    let only_local: Vec<u64> = colocated
        .iter()
        .copied()
        .filter(|s| !remote.contains(s))
        .collect();
    assert!(
        !only_local.is_empty(),
        "co-located consumer should observe records that get truncated \
         (colocated {}, remote {})",
        colocated.len(),
        remote.len()
    );
}

#[test]
fn zk_mode_preferred_leader_reelected_after_heal() {
    let mut cluster = build(CoordinationMode::Zk, AckMode::Leader, 3);
    cluster.sim.run_until(SimTime::from_secs(RUN_FOR));
    let b0 = cluster
        .sim
        .process_ref::<Broker>(cluster.broker_pids[0])
        .unwrap();
    let ta = TopicPartition::new("topic-a", 0);
    assert!(
        b0.is_leader(&ta),
        "preferred replica election must hand topic-a back to broker 0"
    );
    // The event sequence on broker 0: leader at start, stepped down (learned
    // on heal), leader again (preferred election) — Fig. 6d events 1 and 4.
    let events: Vec<bool> = b0
        .leadership_events()
        .iter()
        .filter(|(_, tp, _)| *tp == ta)
        .map(|(_, _, became)| *became)
        .collect();
    assert!(
        events.windows(3).any(|w| w == [true, false, true]) || events == [true, false, true],
        "expected lead→stepdown→lead cycle, got {events:?}"
    );
}

#[test]
fn kraft_mode_loses_nothing_acked() {
    let mut cluster = build(CoordinationMode::Kraft, AckMode::All, 4);
    cluster.sim.run_until(SimTime::from_secs(RUN_FOR));

    // The isolated broker fenced itself and rejected writes.
    let b0 = cluster
        .sim
        .process_ref::<Broker>(cluster.broker_pids[0])
        .unwrap();
    assert!(
        b0.stats().rejected_fenced > 0,
        "isolated KRaft broker must fence itself, stats: {:?}",
        b0.stats()
    );

    // Every acknowledged record (both topics) reaches the remote consumer.
    for topic in ["topic-a", "topic-b"] {
        let acked = acked_seqs(&cluster.sim, cluster.producer_pid, topic);
        let received = received_seqs(&cluster.sim, cluster.remote_consumer_pid, topic);
        assert!(
            !acked.is_empty(),
            "producer must have acked {topic} records"
        );
        let lost: Vec<u64> = acked
            .iter()
            .copied()
            .filter(|s| !received.contains(s))
            .collect();
        assert!(
            lost.is_empty(),
            "KRaft mode must not lose acked records on {topic}: lost {} of {} (received {})",
            lost.len(),
            acked.len(),
            received.len()
        );
    }
}

#[test]
fn partition_runs_are_deterministic() {
    let run = |seed: u64| {
        let mut c = build(CoordinationMode::Zk, AckMode::Leader, seed);
        c.sim.run_until(SimTime::from_secs(150));
        (
            acked_seqs(&c.sim, c.producer_pid, "topic-a"),
            received_seqs(&c.sim, c.remote_consumer_pid, "topic-a"),
            c.sim.stats().events_processed,
        )
    };
    assert_eq!(run(7), run(7), "same seed must reproduce the run exactly");
}
