//! Broker crash/restart with a durable log: replay fidelity and
//! consumer-group offset survival, exercised directly on the simulator.

use std::any::Any;
use std::collections::BTreeMap;

use s2g_broker::{
    log_store, Broker, BrokerConfig, CollectingSink, ConsumerClient, ConsumerConfig,
    ConsumerProcess, ControllerConfig, CoordinationMode, InMemoryLogBackend, LogStoreHandle,
    ProducerClient, ProducerConfig, ProducerProcess, RateSource, TopicSpec, ZkController,
};
use s2g_proto::{BrokerId, Offset, ProducerId, TopicPartition};
use s2g_sim::{ProcessId, Sim, SimDuration, SimTime};

const CONTROLLER_PID: ProcessId = ProcessId(0);
const BROKER_PID: ProcessId = ProcessId(1);

fn peer_map() -> BTreeMap<BrokerId, ProcessId> {
    [(BrokerId(0), BROKER_PID)].into()
}

fn broker_cfg() -> BrokerConfig {
    BrokerConfig {
        log_segment_max_records: 16,
        ..BrokerConfig::default()
    }
}

fn make_broker(store: &LogStoreHandle, recover: bool, incarnation: u64) -> Broker {
    let mut b = Broker::new(
        BrokerId(0),
        broker_cfg(),
        CoordinationMode::Zk,
        vec![CONTROLLER_PID],
        peer_map(),
    );
    b.set_durability(Box::new(InMemoryLogBackend::new(store.clone())), recover);
    b.set_incarnation(incarnation);
    b
}

/// Spawns controller + durable broker; returns the shared log store.
fn spawn_cluster(sim: &mut Sim, topics: &[TopicSpec]) -> LogStoreHandle {
    let store = log_store();
    let brokers: BTreeMap<BrokerId, ProcessId> = [(BrokerId(0), BROKER_PID)].into();
    let ctl = sim.spawn(Box::new(ZkController::new(
        ControllerConfig::default(),
        brokers,
        topics,
    )));
    assert_eq!(ctl, CONTROLLER_PID);
    let b = sim.spawn(Box::new(make_broker(&store, false, 0)));
    assert_eq!(b, BROKER_PID);
    store
}

#[test]
fn broker_restart_replays_identical_log() {
    let mut sim = Sim::new(3);
    let store = spawn_cluster(&mut sim, &[TopicSpec::new("events")]);
    let producer = ProducerClient::new(
        ProducerId(0),
        ProducerConfig::default(),
        BROKER_PID,
        peer_map(),
        0,
    );
    let source = RateSource::new("events", 100, SimDuration::from_millis(10)).payload_bytes(64);
    sim.spawn(Box::new(ProducerProcess::new(producer, Box::new(source))));
    sim.run_until(SimTime::from_secs(5));

    // Capture the pre-crash log from the corpse.
    let corpse = sim.kill(BROKER_PID).expect("broker was alive");
    let dead = (corpse.as_ref() as &dyn Any)
        .downcast_ref::<Broker>()
        .expect("broker corpse");
    let tp = TopicPartition::new("events", 0);
    let pre = dead.log(&tp).expect("partition log exists");
    assert_eq!(pre.log_end(), Offset(100), "all records appended pre-crash");
    assert!(pre.segment_count() > 1, "log rolled into segments");
    let pre_end = pre.log_end();
    let pre_hw = pre.high_watermark();
    let pre_values: Vec<String> = pre
        .read(Offset::ZERO, usize::MAX, false)
        .iter()
        .map(|r| r.value_utf8())
        .collect();
    let pre_stats = dead.stats();
    assert!(pre_stats.log_flushes > 0, "flushes happened pre-crash");

    // Respawn with recovery from the same backend.
    sim.respawn(BROKER_PID, Box::new(make_broker(&store, true, 1)));
    sim.run_until(SimTime::from_secs(8));

    let live = sim.process_ref::<Broker>(BROKER_PID).expect("respawned");
    assert!(!live.is_recovering(), "replay completed");
    let log = live.log(&tp).expect("partition log rebuilt");
    assert_eq!(log.log_end(), pre_end, "log end survives the bounce");
    assert_eq!(log.high_watermark(), pre_hw, "high watermark survives");
    let post_values: Vec<String> = log
        .read(Offset::ZERO, usize::MAX, false)
        .iter()
        .map(|r| r.value_utf8())
        .collect();
    assert_eq!(post_values, pre_values, "replayed log equals pre-crash log");

    let rec = live.recovery_info().expect("recovery recorded");
    assert_eq!(rec.replayed_records, 100);
    assert!(rec.replayed_segments > 1);
    assert!(rec.replayed_bytes > 0);
    assert!(rec.recovered_at.is_some());
}

#[test]
fn group_offsets_survive_broker_bounce() {
    let mut sim = Sim::new(7);
    let store = spawn_cluster(&mut sim, &[TopicSpec::new("events")]);
    let producer = ProducerClient::new(
        ProducerId(0),
        ProducerConfig::default(),
        BROKER_PID,
        peer_map(),
        0,
    );
    let source = RateSource::new("events", 200, SimDuration::from_millis(20)).payload_bytes(32);
    sim.spawn(Box::new(ProducerProcess::new(producer, Box::new(source))));
    let consumer = ConsumerClient::new(
        ConsumerConfig {
            group: Some("g1".into()),
            auto_commit_interval: SimDuration::from_millis(200),
            ..ConsumerConfig::default()
        },
        BROKER_PID,
        peer_map(),
        vec!["events".into()],
    );
    let cons_pid = sim.spawn(Box::new(ConsumerProcess::new(
        0,
        consumer,
        Box::new(CollectingSink::default()),
    )));

    // Let some records flow and some commits land, then bounce the broker.
    sim.run_until(SimTime::from_secs(2));
    let tp = TopicPartition::new("events", 0);
    let corpse = sim.kill(BROKER_PID).expect("alive");
    let dead = (corpse.as_ref() as &dyn Any)
        .downcast_ref::<Broker>()
        .expect("broker corpse");
    let committed_before = dead
        .committed_offset("g1", &tp)
        .expect("commits landed before the crash");
    assert!(committed_before > Offset::ZERO);

    sim.run_until(SimTime::from_millis(2_500));
    sim.respawn(BROKER_PID, Box::new(make_broker(&store, true, 1)));
    sim.run_until(SimTime::from_secs(10));

    let live = sim.process_ref::<Broker>(BROKER_PID).expect("respawned");
    let committed_after = live
        .committed_offset("g1", &tp)
        .expect("group offsets replayed from the durable meta");
    assert!(
        committed_after >= committed_before,
        "committed position {committed_after} regressed below pre-crash {committed_before}"
    );
    // The consumer kept fetching across the bounce and never reset.
    let cons = sim
        .process_ref::<ConsumerProcess>(cons_pid)
        .expect("consumer");
    assert_eq!(cons.client().stats().offset_resets, 0);
    let delivered = cons
        .sink_as::<CollectingSink>()
        .expect("collecting sink")
        .deliveries
        .len();
    assert_eq!(delivered, 200, "every record delivered despite the bounce");
}

#[test]
fn restart_without_recovery_starts_empty() {
    let mut sim = Sim::new(11);
    let store = spawn_cluster(&mut sim, &[TopicSpec::new("events")]);
    let producer = ProducerClient::new(
        ProducerId(0),
        ProducerConfig::default(),
        BROKER_PID,
        peer_map(),
        0,
    );
    let source = RateSource::new("events", 50, SimDuration::from_millis(10)).payload_bytes(64);
    sim.spawn(Box::new(ProducerProcess::new(producer, Box::new(source))));
    sim.run_until(SimTime::from_secs(3));
    sim.kill(BROKER_PID).expect("alive");
    // Respawn WITHOUT recovery: the log backend is ignored on boot.
    sim.respawn(BROKER_PID, Box::new(make_broker(&store, false, 1)));
    sim.run_until(SimTime::from_millis(3_100));
    let live = sim.process_ref::<Broker>(BROKER_PID).expect("respawned");
    let tp = TopicPartition::new("events", 0);
    let end = live.log(&tp).map(|l| l.log_end()).unwrap_or_default();
    assert!(
        end < Offset(50),
        "without replay the log restarts (mostly) empty, got {end}"
    );
    assert!(live.recovery_info().is_none());
}
