//! Simulated time.
//!
//! All of stream2gym-rs runs on virtual time: a [`SimTime`] is a number of
//! nanoseconds since the start of the emulation, and a [`SimDuration`] is a
//! span between two instants. No component ever consults the wall clock,
//! which is what makes every experiment deterministic and replayable.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since emulation start.
///
/// # Examples
///
/// ```
/// use s2g_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_nanos(), 250_000_000);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use s2g_sim::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the origin.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the origin (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since the origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(
            f.is_finite() && f >= 0.0,
            "scale must be finite and non-negative, got {f}"
        );
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!((t + d).as_millis(), 150);
        assert_eq!((t - d).as_millis(), 50);
        assert_eq!(((t + d) - t).as_millis(), 50);
        assert_eq!((d + d).as_millis(), 100);
        assert_eq!((d * 3).as_millis(), 150);
        assert_eq!((d / 2).as_millis(), 25);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1_500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_millis(100).mul_f64(2.5).as_millis(), 250);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
