//! # s2g-sim — deterministic discrete-event kernel
//!
//! The foundation of stream2gym-rs. The original stream2gym runs real
//! processes inside Mininet network namespaces; this crate provides the
//! equivalent substrate as a deterministic discrete-event simulation:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual nanosecond clock,
//! * [`Process`] — event-driven application components (brokers, producers,
//!   consumers, stream processors, monitors),
//! * [`Sim`] — the scheduler, with a seeded RNG and a total event order,
//! * [`Transport`] — pluggable message routing (the `s2g-net` crate installs
//!   the emulated network here),
//! * [`HostCpu`] — a multi-core CPU model so co-located components contend
//!   for cycles exactly like they do on stream2gym's single server.
//!
//! # Example
//!
//! ```
//! use s2g_sim::{Ctx, Message, Process, ProcessId, Sim, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! struct Hello;
//! impl Message for Hello {}
//!
//! struct Greeter { greeted: bool }
//! impl Process for Greeter {
//!     fn name(&self) -> &str { "greeter" }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcessId, _msg: Box<dyn Message>) {
//!         self.greeted = true;
//!     }
//! }
//!
//! let mut sim = Sim::new(7);
//! let pid = sim.spawn(Box::new(Greeter { greeted: false }));
//! sim.inject_at(SimTime::from_millis(5), pid, Hello);
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.process_ref::<Greeter>(pid).unwrap().greeted);
//! ```

#![warn(missing_docs)]

mod cpu;
mod process;
pub(crate) mod queue;
mod resources;
mod sched;
mod time;

pub use cpu::{CpuHandle, HostCpu};
pub use process::{downcast, downcast_ref, Message, Process, ProcessId, TimerToken, TraceEntry};
pub use resources::{LedgerHandle, MemLedger, MemSlot};
pub use sched::{
    Ctx, Delivery, InstantTransport, QueueDiag, SchedulerKind, Sim, SimCore, SimStats, Transport,
};
pub use time::{SimDuration, SimTime};
