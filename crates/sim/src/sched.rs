//! The deterministic event scheduler.
//!
//! [`Sim`] owns every process, a seeded RNG, and an event queue ordered by
//! `(time, sequence-number)`, so two runs with the same seed and task
//! description produce byte-identical traces. The queue is a bucketed
//! calendar queue by default (see [`crate::queue`]); the original binary
//! heap survives as [`SchedulerKind::Reference`] for differential testing.
//! Message transport is pluggable via the [`Transport`] trait: the default
//! delivers instantly, while `s2g-net` installs the emulated network
//! (links, switches, faults).

use std::any::Any;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cpu::CpuHandle;
use crate::process::{Message, Process, ProcessId, TimerToken, TraceEntry};
use crate::queue::{EventKind, EventQueue, Popped};
use crate::time::{SimDuration, SimTime};

pub use crate::queue::SchedulerKind;

/// The outcome of routing a message through a [`Transport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver the message after this delay.
    After(SimDuration),
    /// Silently drop the message (packet loss, link down, partition).
    Drop,
}

/// Computes how (and whether) a message travels between two processes.
///
/// `s2g-net` implements this over an emulated topology; the default
/// [`InstantTransport`] applies a fixed delay, which is convenient for unit
/// tests of protocol logic.
pub trait Transport {
    /// Routes `bytes` from `from` to `to` at time `now`, returning the
    /// delivery outcome. Implementations may consume randomness (for loss)
    /// and account bytes against port counters.
    fn route(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        from: ProcessId,
        to: ProcessId,
        bytes: usize,
    ) -> Delivery;
}

/// A transport that delivers every message after a fixed delay.
#[derive(Debug, Clone, Copy)]
pub struct InstantTransport {
    /// Delay applied to every message.
    pub delay: SimDuration,
}

impl Default for InstantTransport {
    fn default() -> Self {
        InstantTransport {
            delay: SimDuration::from_micros(10),
        }
    }
}

impl Transport for InstantTransport {
    fn route(
        &mut self,
        _now: SimTime,
        _rng: &mut StdRng,
        _from: ProcessId,
        _to: ProcessId,
        _bytes: usize,
    ) -> Delivery {
        Delivery::After(self.delay)
    }
}

/// Counters describing a finished (or in-progress) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events popped from the queue.
    pub events_processed: u64,
    /// Messages handed to `on_message`.
    pub messages_delivered: u64,
    /// Messages the transport dropped.
    pub messages_dropped: u64,
    /// Timers that fired (cancelled timers excluded).
    pub timers_fired: u64,
    /// Events voided because their target process was killed after they
    /// were scheduled.
    pub events_voided: u64,
    /// Processes killed via [`Sim::kill`].
    pub processes_killed: u64,
    /// Processes respawned via [`Sim::respawn`].
    pub processes_respawned: u64,
    /// High-water mark of *live* scheduled events — entries that will still
    /// dispatch, excluding cancelled-timer tombstones and events voided by
    /// a kill/respawn incarnation bump.
    pub max_queue_len: usize,
}

/// Diagnostic view of the event queue; see [`Sim::queue_diag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueDiag {
    /// Events that will still dispatch (excludes cancelled and voided
    /// entries).
    pub live_events: usize,
    /// Entries physically held by the queue (live plus lazy-deletion
    /// residue not yet popped).
    pub queue_len: usize,
    /// Bookkeeping retained purely for lazy deletion: cancelled-timer
    /// tombstones (calendar) or the cancelled-token set (reference). Must
    /// stay bounded by the number of pending timers.
    pub residue: usize,
}

/// Per-process scheduler bookkeeping, kept in one struct so the per-event
/// hot path (incarnation check + live accounting) touches a single cache
/// line per target instead of two parallel vectors.
#[derive(Clone, Copy, Default)]
struct ProcAccount {
    /// Incarnation counter, bumped on kill and respawn. An event scheduled
    /// for an older incarnation of its target is voided — a crashed process
    /// never receives its old incarnation's timers, CPU completions, or
    /// in-flight messages.
    inc: u32,
    /// Count of live (still-dispatching) scheduled events.
    pending: u32,
}

/// Everything the scheduler owns except the process table; split out so a
/// dispatched process can borrow it mutably through [`Ctx`] while the
/// process itself stays borrowed from the table.
pub struct SimCore {
    now: SimTime,
    seq: u64,
    queue: EventQueue,
    rng: StdRng,
    transport: Box<dyn Transport>,
    /// Per-process incarnation + live-event accounting, indexed by pid.
    accounts: Vec<ProcAccount>,
    /// Total live scheduled events; drives the `max_queue_len` high-water
    /// mark, so residue (cancelled/voided entries) is not counted.
    live: usize,
    trace_enabled: bool,
    trace: Vec<TraceEntry>,
    stats: SimStats,
    stop_requested: bool,
}

impl SimCore {
    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let target = kind.target();
        let inc = self.incarnation_of(target);
        self.queue.push(at, seq, inc, kind);
        self.note_scheduled(target);
    }

    fn push_timer(&mut self, at: SimTime, pid: ProcessId, tag: u64) -> TimerToken {
        let seq = self.seq;
        self.seq += 1;
        let inc = self.incarnation_of(pid);
        let token = self.queue.push_timer(at, seq, inc, pid, tag);
        self.note_scheduled(pid);
        token
    }

    fn incarnation_of(&self, pid: ProcessId) -> u32 {
        self.accounts.get(pid.index()).map_or(0, |a| a.inc)
    }

    /// Accounts a newly scheduled live event against its target.
    fn note_scheduled(&mut self, target: ProcessId) {
        let idx = target.index();
        if idx >= self.accounts.len() {
            self.accounts.resize(idx + 1, ProcAccount::default());
        }
        self.accounts[idx].pending += 1;
        self.live += 1;
        self.stats.max_queue_len = self.stats.max_queue_len.max(self.live);
    }

    /// Accounts a live event leaving the queue (dispatched or cancelled).
    fn note_retired(&mut self, target: ProcessId) {
        self.accounts[target.index()].pending -= 1;
        self.live -= 1;
    }

    /// Bumps a process's incarnation, voiding all its live events at once.
    fn bump_incarnation(&mut self, pid: ProcessId) {
        let idx = pid.index();
        if idx >= self.accounts.len() {
            self.accounts.resize(idx + 1, ProcAccount::default());
        }
        let account = &mut self.accounts[idx];
        account.inc += 1;
        self.live -= account.pending as usize;
        account.pending = 0;
    }
}

/// The per-dispatch context handed to process handlers.
///
/// Provides simulated time, the seeded RNG, message sending, timers, traced
/// logging, and CPU execution on the process's host.
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    self_id: ProcessId,
    cpu: Option<&'a CpuHandle>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This process's id.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// The run's seeded RNG. All randomness must come from here.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// Sends `msg` to `to` through the installed transport.
    pub fn send<M: Message>(&mut self, to: ProcessId, msg: M) {
        self.send_boxed(to, Box::new(msg));
    }

    /// Sends an already-boxed message to `to`.
    pub fn send_boxed(&mut self, to: ProcessId, msg: Box<dyn Message>) {
        let bytes = msg.wire_size();
        let from = self.self_id;
        let outcome = self
            .core
            .transport
            .route(self.core.now, &mut self.core.rng, from, to, bytes);
        match outcome {
            Delivery::After(d) => {
                let at = self.core.now + d;
                self.core.push(at, EventKind::Deliver { from, to, msg });
            }
            Delivery::Drop => {
                self.core.stats.messages_dropped += 1;
            }
        }
    }

    /// Schedules `on_timer(tag)` to fire after `after`.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) -> TimerToken {
        self.set_timer_at(self.core.now + after, tag)
    }

    /// Schedules `on_timer(tag)` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_timer_at(&mut self, at: SimTime, tag: u64) -> TimerToken {
        assert!(
            at >= self.core.now,
            "timer scheduled in the past: {at} < {}",
            self.core.now
        );
        self.core.push_timer(at, self.self_id, tag)
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        if let Some((pid, inc)) = self.core.queue.cancel(token) {
            // Only un-account the event if it was still live: a timer set by
            // an incarnation that has since been killed was already voided
            // in bulk by the incarnation bump.
            if inc == self.core.incarnation_of(pid) {
                self.core.note_retired(pid);
            }
        }
    }

    /// Schedules `cost` of CPU work on this process's host CPU;
    /// `on_cpu_done(tag)` fires when it completes. If the process has no
    /// attached CPU, the work completes after exactly `cost` (no contention).
    pub fn exec(&mut self, cost: SimDuration, tag: u64) {
        let done_after = match self.cpu {
            Some(cpu) => cpu.borrow_mut().execute(self.core.now, cost),
            None => cost,
        };
        let at = self.core.now + done_after;
        self.core.push(
            at,
            EventKind::CpuDone {
                pid: self.self_id,
                tag,
            },
        );
    }

    /// Appends a trace entry if tracing is enabled.
    ///
    /// If the text is built with `format!`, prefer [`Ctx::trace_with`] so
    /// tracing-off runs never pay for the string.
    pub fn trace(&mut self, category: &'static str, text: impl Into<String>) {
        self.trace_with(category, || text);
    }

    /// Appends a trace entry if tracing is enabled, building the text
    /// lazily — the closure only runs when the trace is actually collected,
    /// so hot paths stop formatting strings that tracing-off runs discard.
    pub fn trace_with<S, F>(&mut self, category: &'static str, f: F)
    where
        S: Into<String>,
        F: FnOnce() -> S,
    {
        if self.core.trace_enabled {
            let entry = TraceEntry {
                at: self.core.now,
                pid: self.self_id,
                category,
                text: f().into(),
            };
            self.core.trace.push(entry);
        }
    }

    /// Requests that the run stop after the current event.
    pub fn request_stop(&mut self) {
        self.core.stop_requested = true;
    }
}

struct ProcEntry {
    proc: Box<dyn Process>,
    cpu: Option<CpuHandle>,
}

/// The deterministic discrete-event scheduler.
///
/// # Examples
///
/// ```
/// use s2g_sim::{Ctx, Message, Process, ProcessId, Sim, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// struct Tick;
/// impl Message for Tick {}
///
/// struct Counter { seen: u32 }
/// impl Process for Counter {
///     fn name(&self) -> &str { "counter" }
///     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
///         let me = ctx.self_id();
///         ctx.send(me, Tick);
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, _msg: Box<dyn Message>) {
///         self.seen += 1;
///         if self.seen < 5 {
///             let me = ctx.self_id();
///             ctx.send(me, Tick);
///         }
///     }
/// }
///
/// let mut sim = Sim::new(42);
/// let pid = sim.spawn(Box::new(Counter { seen: 0 }));
/// sim.run_until(SimTime::from_secs(1));
/// assert_eq!(sim.process_ref::<Counter>(pid).unwrap().seen, 5);
/// ```
pub struct Sim {
    core: SimCore,
    processes: Vec<Option<ProcEntry>>,
    event_limit: u64,
}

impl Sim {
    /// Creates a scheduler seeded with `seed`, on the default event queue
    /// (the calendar queue, unless the crate was built with the
    /// `reference-sched` feature).
    pub fn new(seed: u64) -> Self {
        #[cfg(feature = "reference-sched")]
        let kind = SchedulerKind::Reference;
        #[cfg(not(feature = "reference-sched"))]
        let kind = SchedulerKind::Calendar;
        Sim::with_scheduler(seed, kind)
    }

    /// Creates a scheduler seeded with `seed` on an explicit queue
    /// implementation. Both kinds produce identical event orders; the
    /// reference exists for differential tests and benchmarks.
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> Self {
        Sim {
            core: SimCore {
                now: SimTime::ZERO,
                seq: 0,
                queue: EventQueue::new(kind),
                rng: StdRng::seed_from_u64(seed),
                transport: Box::new(InstantTransport::default()),
                accounts: Vec::new(),
                live: 0,
                trace_enabled: false,
                trace: Vec::new(),
                stats: SimStats::default(),
                stop_requested: false,
            },
            processes: Vec::new(),
            event_limit: u64::MAX,
        }
    }

    /// Which event-queue implementation this scheduler runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.core.queue.kind()
    }

    /// Diagnostic counters for the event queue (live events, physical
    /// length, lazy-deletion residue).
    pub fn queue_diag(&self) -> QueueDiag {
        QueueDiag {
            live_events: self.core.live,
            queue_len: self.core.queue.len(),
            residue: self.core.queue.residue(),
        }
    }

    /// Installs a transport (e.g. the emulated network).
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.core.transport = transport;
    }

    /// Enables or disables trace collection.
    pub fn set_tracing(&mut self, on: bool) {
        self.core.trace_enabled = on;
    }

    /// Caps the number of events a run may process — a runaway-loop guard.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Registers `proc` and schedules its `on_start` at time zero.
    pub fn spawn(&mut self, proc: Box<dyn Process>) -> ProcessId {
        self.spawn_at(SimTime::ZERO, proc)
    }

    /// Registers `proc` and schedules its `on_start` at `start`.
    pub fn spawn_at(&mut self, start: SimTime, proc: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.processes.len() as u32);
        self.processes.push(Some(ProcEntry { proc, cpu: None }));
        self.core.push(start, EventKind::Start(pid));
        pid
    }

    /// Kills a process: its slot is vacated and every event scheduled for the
    /// old incarnation — pending timers, CPU completions, and in-flight
    /// messages — is voided, exactly as an OS process crash drops its
    /// runtime state and open connections. Returns the dead process for
    /// post-mortem inspection, or `None` when the slot was already empty.
    ///
    /// The slot (and therefore the [`ProcessId`]) can be reused via
    /// [`respawn`](Sim::respawn), so network placements keyed by pid stay
    /// valid across a crash/restart cycle.
    pub fn kill(&mut self, pid: ProcessId) -> Option<Box<dyn Process>> {
        let entry = self.processes.get_mut(pid.index())?.take()?;
        self.core.bump_incarnation(pid);
        self.core.stats.processes_killed += 1;
        Some(entry.proc)
    }

    /// Respawns a process into a previously [`kill`](Sim::kill)ed slot and
    /// schedules its `on_start` at the current simulated time. The
    /// incarnation is bumped again so messages addressed to the dead period
    /// (sent between kill and respawn) are also voided.
    ///
    /// The incarnation counter is sim-internal; application protocols that
    /// need restart detection carry their own incarnation numbers (e.g.
    /// brokers stamp one into controller heartbeats so their roles are
    /// re-taught after a bounce faster than the session timeout).
    ///
    /// # Panics
    ///
    /// Panics if the slot is still occupied or was never allocated.
    pub fn respawn(&mut self, pid: ProcessId, proc: Box<dyn Process>) {
        let slot = self
            .processes
            .get_mut(pid.index())
            .unwrap_or_else(|| panic!("respawn of unknown process {pid}"));
        assert!(slot.is_none(), "respawn into occupied slot {pid}");
        *slot = Some(ProcEntry { proc, cpu: None });
        self.core.bump_incarnation(pid);
        self.core.stats.processes_respawned += 1;
        let now = self.core.now;
        self.core.push(now, EventKind::Start(pid));
    }

    /// True while the process slot holds a live process.
    pub fn is_alive(&self, pid: ProcessId) -> bool {
        self.processes.get(pid.index()).is_some_and(Option::is_some)
    }

    /// Attaches a host CPU to a process; subsequent [`Ctx::exec`] calls
    /// contend on it.
    pub fn attach_cpu(&mut self, pid: ProcessId, cpu: CpuHandle) {
        let entry = self.processes[pid.index()]
            .as_mut()
            .expect("process exists");
        entry.cpu = Some(cpu);
    }

    /// Injects a message from "outside the world" (e.g. the orchestrator) to
    /// be delivered to `to` at absolute time `at`. Bypasses the transport.
    pub fn inject_at<M: Message>(&mut self, at: SimTime, to: ProcessId, msg: M) {
        self.core.push(
            at,
            EventKind::Deliver {
                from: to,
                to,
                msg: Box::new(msg),
            },
        );
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.core.stats
    }

    /// The collected trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.core.trace
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Immutable access to a process, downcast to its concrete type.
    /// Returns `None` if the type does not match.
    pub fn process_ref<T: Process + 'static>(&self, pid: ProcessId) -> Option<&T> {
        let entry = self.processes.get(pid.index())?.as_ref()?;
        (entry.proc.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a process, downcast to its concrete type.
    pub fn process_mut<T: Process + 'static>(&mut self, pid: ProcessId) -> Option<&mut T> {
        let entry = self.processes.get_mut(pid.index())?.as_mut()?;
        (entry.proc.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Runs until the queue drains or `limit` is reached; the clock is left
    /// at `limit` (or the last event time if the queue drained first).
    /// Returns the number of events processed by this call.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded, which almost always
    /// indicates a livelocked protocol.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        let mut processed = 0;
        loop {
            if self.core.stop_requested {
                break;
            }
            let Some(Popped {
                at,
                inc,
                cancelled,
                kind,
                ..
            }) = self.core.queue.pop_at_most(limit)
            else {
                break;
            };
            debug_assert!(at >= self.core.now, "time went backwards");
            self.core.now = at;
            self.core.stats.events_processed += 1;
            processed += 1;
            if self.core.stats.events_processed > self.event_limit {
                panic!(
                    "event limit {} exceeded at {} — livelocked protocol?",
                    self.event_limit, self.core.now
                );
            }
            let target = kind.target();
            if inc != self.core.incarnation_of(target) {
                // Scheduled for a dead incarnation of the target process;
                // un-accounted in bulk when the incarnation bumped.
                self.core.stats.events_voided += 1;
                continue;
            }
            if cancelled {
                // Cancelled timer tombstone; un-accounted at cancel time.
                continue;
            }
            self.core.note_retired(target);
            self.dispatch(kind);
        }
        if self.core.now < limit && !self.core.stop_requested {
            self.core.now = limit;
        }
        processed
    }

    /// Runs until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(pid) => self.with_process(pid, |proc, ctx| proc.on_start(ctx)),
            EventKind::Deliver { from, to, msg } => {
                self.core.stats.messages_delivered += 1;
                self.with_process(to, |proc, ctx| proc.on_message(ctx, from, msg));
            }
            EventKind::Timer { pid, tag, .. } => {
                self.core.stats.timers_fired += 1;
                self.with_process(pid, |proc, ctx| proc.on_timer(ctx, tag));
            }
            EventKind::CpuDone { pid, tag } => {
                self.with_process(pid, |proc, ctx| proc.on_cpu_done(ctx, tag));
            }
        }
    }

    fn with_process<F>(&mut self, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Process, &mut Ctx<'_>),
    {
        // The process slot may be legitimately empty if the event targets
        // a process that was never registered (stale id) — drop silently.
        let Some(Some(entry)) = self.processes.get_mut(pid.index()) else {
            return;
        };
        // Disjoint-field borrows: the handler holds the process (from
        // `self.processes`) while `Ctx` borrows `self.core` — no need to
        // vacate the slot and write it back around every dispatch.
        let ProcEntry { proc, cpu } = entry;
        let mut ctx = Ctx {
            core: &mut self.core,
            self_id: pid,
            cpu: cpu.as_ref(),
        };
        f(proc.as_mut(), &mut ctx);
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.core.now)
            .field("processes", &self.processes.len())
            .field("queue_len", &self.core.queue.len())
            .field("stats", &self.core.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::HostCpu;

    #[derive(Debug)]
    struct Note(u64);
    impl Message for Note {
        fn wire_size(&self) -> usize {
            16
        }
    }

    struct Echo {
        peer: Option<ProcessId>,
        received: Vec<(SimTime, u64)>,
        bounce: bool,
    }

    impl Echo {
        fn new(bounce: bool) -> Self {
            Echo {
                peer: None,
                received: Vec::new(),
                bounce,
            }
        }
    }

    impl Process for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
            let note = crate::process::downcast::<Note>(msg).expect("note");
            self.received.push((ctx.now(), note.0));
            self.peer = Some(from);
            if self.bounce && note.0 > 0 {
                ctx.send(from, Note(note.0 - 1));
            }
        }
    }

    #[test]
    fn ping_pong_terminates() {
        let mut sim = Sim::new(1);
        let a = sim.spawn(Box::new(Echo::new(true)));
        let b = sim.spawn(Box::new(Echo::new(true)));
        sim.inject_at(SimTime::ZERO, a, Note(5));
        // inject_at uses from == to, so seed the peer manually via message flow:
        // a receives Note(5) "from a", bounces Note(4) to a... to make a real
        // ping-pong, inject to a with the note then manually send to b.
        sim.run_to_completion();
        // a received the injected 5, bounced 4 to itself, etc.
        let echo_a = sim.process_ref::<Echo>(a).unwrap();
        assert_eq!(
            echo_a.received.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![5, 4, 3, 2, 1, 0]
        );
        let echo_b = sim.process_ref::<Echo>(b).unwrap();
        assert!(echo_b.received.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        fn run(seed: u64) -> Vec<(SimTime, u64)> {
            let mut sim = Sim::new(seed);
            let a = sim.spawn(Box::new(Echo::new(true)));
            sim.inject_at(SimTime::from_millis(3), a, Note(10));
            sim.run_to_completion();
            sim.process_ref::<Echo>(a).unwrap().received.clone()
        }
        assert_eq!(run(7), run(7));
    }

    struct TimerProc {
        fired: Vec<(SimTime, u64)>,
        cancel_second: bool,
    }

    impl Process for TimerProc {
        fn name(&self) -> &str {
            "timer"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            let t2 = ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.set_timer(SimDuration::from_millis(30), 3);
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            self.fired.push((ctx.now(), tag));
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(TimerProc {
            fired: vec![],
            cancel_second: false,
        }));
        sim.run_to_completion();
        let fired = &sim.process_ref::<TimerProc>(p).unwrap().fired;
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0], (SimTime::from_millis(10), 1));
        assert_eq!(fired[1], (SimTime::from_millis(20), 2));
        assert_eq!(fired[2], (SimTime::from_millis(30), 3));
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(TimerProc {
            fired: vec![],
            cancel_second: true,
        }));
        sim.run_to_completion();
        let fired = &sim.process_ref::<TimerProc>(p).unwrap().fired;
        assert_eq!(
            fired.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(sim.stats().timers_fired, 2);
    }

    struct Worker {
        done: Vec<(SimTime, u64)>,
    }

    impl Process for Worker {
        fn name(&self) -> &str {
            "worker"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.exec(SimDuration::from_millis(10), 100);
            ctx.exec(SimDuration::from_millis(10), 101);
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
        fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            self.done.push((ctx.now(), tag));
        }
    }

    #[test]
    fn cpu_contention_serializes_on_one_core() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Worker { done: vec![] }));
        sim.attach_cpu(p, HostCpu::shared("h", 1, 1.0));
        sim.run_to_completion();
        let done = &sim.process_ref::<Worker>(p).unwrap().done;
        assert_eq!(done[0], (SimTime::from_millis(10), 100));
        assert_eq!(done[1], (SimTime::from_millis(20), 101));
    }

    #[test]
    fn cpu_without_handle_is_uncontended() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Worker { done: vec![] }));
        sim.run_to_completion();
        let done = &sim.process_ref::<Worker>(p).unwrap().done;
        assert_eq!(done[0].0, SimTime::from_millis(10));
        assert_eq!(done[1].0, SimTime::from_millis(10));
    }

    #[test]
    fn run_until_advances_clock_to_limit() {
        let mut sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn stats_count_messages() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(Box::new(Echo::new(false)));
        sim.inject_at(SimTime::ZERO, a, Note(1));
        sim.inject_at(SimTime::ZERO, a, Note(2));
        sim.run_to_completion();
        assert_eq!(sim.stats().messages_delivered, 2);
        assert_eq!(sim.stats().messages_dropped, 0);
    }

    struct DropAll;
    impl Transport for DropAll {
        fn route(
            &mut self,
            _: SimTime,
            _: &mut StdRng,
            _: ProcessId,
            _: ProcessId,
            _: usize,
        ) -> Delivery {
            Delivery::Drop
        }
    }

    #[test]
    fn transport_can_drop() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(Box::new(Echo::new(false)));
        let b = sim.spawn(Box::new(Echo::new(true)));
        sim.set_transport(Box::new(DropAll));
        sim.inject_at(SimTime::ZERO, b, Note(3)); // inject bypasses transport
        sim.run_to_completion();
        // b bounced a reply, but the transport dropped it.
        assert_eq!(sim.stats().messages_dropped, 1);
        assert!(sim.process_ref::<Echo>(a).unwrap().received.is_empty());
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        struct Spin;
        impl Process for Spin {
            fn name(&self) -> &str {
                "spin"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.self_id();
                ctx.send(me, Note(0));
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {
                let me = ctx.self_id();
                ctx.send(me, Note(0));
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(Spin));
        sim.set_event_limit(1_000);
        sim.run_to_completion();
    }

    #[test]
    fn tracing_collects_entries() {
        struct Tracer;
        impl Process for Tracer {
            fn name(&self) -> &str {
                "tracer"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.trace("test", "hello");
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
        }
        let mut sim = Sim::new(0);
        sim.set_tracing(true);
        sim.spawn(Box::new(Tracer));
        sim.run_to_completion();
        assert_eq!(sim.trace().len(), 1);
        assert_eq!(sim.trace()[0].text, "hello");
    }

    #[test]
    fn killed_process_receives_nothing_more() {
        struct Ticker {
            ticks: u32,
        }
        impl Process for Ticker {
            fn name(&self) -> &str {
                "ticker"
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                self.ticks += 1;
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Ticker { ticks: 0 }));
        sim.run_until(SimTime::from_millis(35));
        let dead = sim.kill(p).expect("was alive");
        assert!(!sim.is_alive(p));
        let dead_ticks = (dead.as_ref() as &dyn Any)
            .downcast_ref::<Ticker>()
            .unwrap()
            .ticks;
        assert_eq!(dead_ticks, 3);
        // The pending timer for the old incarnation is voided, not delivered.
        sim.run_until(SimTime::from_millis(100));
        assert!(sim.stats().events_voided >= 1);
        assert_eq!(sim.stats().processes_killed, 1);
    }

    #[test]
    fn respawn_reuses_pid_with_fresh_state() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Echo::new(false)));
        sim.inject_at(SimTime::from_millis(1), p, Note(1));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.process_ref::<Echo>(p).unwrap().received.len(), 1);
        // A message in flight across the crash must not reach the respawn.
        sim.inject_at(SimTime::from_millis(20), p, Note(2));
        sim.kill(p).expect("alive");
        sim.run_until(SimTime::from_millis(10));
        sim.respawn(p, Box::new(Echo::new(false)));
        assert!(sim.is_alive(p));
        sim.inject_at(SimTime::from_millis(30), p, Note(3));
        sim.run_to_completion();
        let echo = sim.process_ref::<Echo>(p).unwrap();
        let values: Vec<u64> = echo.received.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![3], "only post-respawn messages arrive");
        assert_eq!(sim.stats().processes_respawned, 1);
    }

    #[test]
    #[should_panic(expected = "occupied slot")]
    fn respawn_into_live_slot_panics() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Echo::new(false)));
        sim.respawn(p, Box::new(Echo::new(false)));
    }

    #[test]
    fn request_stop_halts_run() {
        struct Stopper {
            handled: u32,
        }
        impl Process for Stopper {
            fn name(&self) -> &str {
                "stopper"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                self.handled += 1;
                ctx.request_stop();
            }
        }
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Stopper { handled: 0 }));
        sim.run_to_completion();
        assert_eq!(sim.process_ref::<Stopper>(p).unwrap().handled, 1);
    }

    #[test]
    fn default_scheduler_is_calendar_unless_feature_flipped() {
        let sim = Sim::new(0);
        #[cfg(feature = "reference-sched")]
        assert_eq!(sim.scheduler_kind(), SchedulerKind::Reference);
        #[cfg(not(feature = "reference-sched"))]
        assert_eq!(sim.scheduler_kind(), SchedulerKind::Calendar);
        let r = Sim::with_scheduler(0, SchedulerKind::Reference);
        assert_eq!(r.scheduler_kind(), SchedulerKind::Reference);
    }

    /// Regression for the cancelled-timer leak: cancel bookkeeping must not
    /// grow with the number of set/cancel cycles — on either scheduler.
    #[test]
    fn cancel_bookkeeping_stays_bounded() {
        for kind in [SchedulerKind::Calendar, SchedulerKind::Reference] {
            struct Churner {
                cycles: u32,
            }
            impl Process for Churner {
                fn name(&self) -> &str {
                    "churner"
                }
                fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
                fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                    ctx.set_timer(SimDuration::from_millis(1), 0);
                }
                fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                    self.cycles += 1;
                    if self.cycles < 2_000 {
                        // Set-and-cancel plus a live driver timer per cycle.
                        let doomed = ctx.set_timer(SimDuration::from_millis(5), 1);
                        ctx.cancel_timer(doomed);
                        ctx.cancel_timer(doomed); // double cancel is a no-op
                        ctx.set_timer(SimDuration::from_millis(1), 0);
                    }
                }
            }
            let mut sim = Sim::with_scheduler(3, kind);
            sim.spawn(Box::new(Churner { cycles: 0 }));
            sim.run_to_completion();
            let diag = sim.queue_diag();
            assert_eq!(diag.queue_len, 0, "{kind:?}: queue drained");
            assert_eq!(
                diag.residue, 0,
                "{kind:?}: cancel bookkeeping leaked after 2000 set/cancel cycles"
            );
            assert_eq!(diag.live_events, 0, "{kind:?}");
        }
    }

    /// Regression for `max_queue_len`: the high-water mark counts live
    /// events only, not cancelled tombstones sitting in the queue.
    #[test]
    fn max_queue_len_ignores_cancelled_residue() {
        for kind in [SchedulerKind::Calendar, SchedulerKind::Reference] {
            struct Canceller;
            impl Process for Canceller {
                fn name(&self) -> &str {
                    "canceller"
                }
                fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
                fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                    // Ten timers live at once (the true high-water mark),
                    // then nine cancelled before anything more is scheduled.
                    let tokens: Vec<_> = (0..10)
                        .map(|i| ctx.set_timer(SimDuration::from_millis(10 + i), i))
                        .collect();
                    for t in &tokens[..9] {
                        ctx.cancel_timer(*t);
                    }
                    // Two more live timers: 1 survivor + 2 = 3 < 10, but the
                    // physical queue still holds 12 entries here.
                    ctx.set_timer(SimDuration::from_millis(40), 100);
                    ctx.set_timer(SimDuration::from_millis(50), 101);
                }
            }
            let mut sim = Sim::with_scheduler(0, kind);
            sim.spawn(Box::new(Canceller));
            sim.run_to_completion();
            assert_eq!(
                sim.stats().max_queue_len,
                10,
                "{kind:?}: high-water mark must count live events, not residue"
            );
            assert_eq!(sim.stats().timers_fired, 3, "{kind:?}");
        }
    }

    /// Kill must void its process's pending events in the live accounting,
    /// so post-kill pushes don't inflate the high-water mark.
    #[test]
    fn max_queue_len_ignores_voided_events() {
        struct Sleeper;
        impl Process for Sleeper {
            fn name(&self) -> &str {
                "sleeper"
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for i in 0..8 {
                    ctx.set_timer(SimDuration::from_millis(100 + i), i);
                }
            }
        }
        for kind in [SchedulerKind::Calendar, SchedulerKind::Reference] {
            let mut sim = Sim::with_scheduler(0, kind);
            let p = sim.spawn(Box::new(Sleeper));
            sim.run_until(SimTime::from_millis(50));
            assert_eq!(sim.queue_diag().live_events, 8, "{kind:?}");
            sim.kill(p).expect("alive");
            assert_eq!(
                sim.queue_diag().live_events,
                0,
                "{kind:?}: kill voids pending events"
            );
            // Eight voided entries still sit in the queue; the high-water
            // mark must not re-count them against new arrivals.
            sim.respawn(p, Box::new(Sleeper));
            sim.run_to_completion();
            assert_eq!(sim.stats().max_queue_len, 8, "{kind:?}");
            assert_eq!(sim.stats().events_voided, 8, "{kind:?}");
        }
    }
}
