//! The deterministic event scheduler.
//!
//! [`Sim`] owns every process, a seeded RNG, and a binary-heap event queue
//! ordered by `(time, sequence-number)`, so two runs with the same seed and
//! task description produce byte-identical traces. Message transport is
//! pluggable via the [`Transport`] trait: the default delivers instantly,
//! while `s2g-net` installs the emulated network (links, switches, faults).

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cpu::CpuHandle;
use crate::process::{Message, Process, ProcessId, TimerToken, TraceEntry};
use crate::time::{SimDuration, SimTime};

/// The outcome of routing a message through a [`Transport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver the message after this delay.
    After(SimDuration),
    /// Silently drop the message (packet loss, link down, partition).
    Drop,
}

/// Computes how (and whether) a message travels between two processes.
///
/// `s2g-net` implements this over an emulated topology; the default
/// [`InstantTransport`] applies a fixed delay, which is convenient for unit
/// tests of protocol logic.
pub trait Transport {
    /// Routes `bytes` from `from` to `to` at time `now`, returning the
    /// delivery outcome. Implementations may consume randomness (for loss)
    /// and account bytes against port counters.
    fn route(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        from: ProcessId,
        to: ProcessId,
        bytes: usize,
    ) -> Delivery;
}

/// A transport that delivers every message after a fixed delay.
#[derive(Debug, Clone, Copy)]
pub struct InstantTransport {
    /// Delay applied to every message.
    pub delay: SimDuration,
}

impl Default for InstantTransport {
    fn default() -> Self {
        InstantTransport {
            delay: SimDuration::from_micros(10),
        }
    }
}

impl Transport for InstantTransport {
    fn route(
        &mut self,
        _now: SimTime,
        _rng: &mut StdRng,
        _from: ProcessId,
        _to: ProcessId,
        _bytes: usize,
    ) -> Delivery {
        Delivery::After(self.delay)
    }
}

enum EventKind {
    Start(ProcessId),
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: Box<dyn Message>,
    },
    Timer {
        pid: ProcessId,
        token: TimerToken,
        tag: u64,
    },
    CpuDone {
        pid: ProcessId,
        tag: u64,
    },
}

impl EventKind {
    fn target(&self) -> ProcessId {
        match *self {
            EventKind::Start(pid) => pid,
            EventKind::Deliver { to, .. } => to,
            EventKind::Timer { pid, .. } => pid,
            EventKind::CpuDone { pid, .. } => pid,
        }
    }
}

struct Entry {
    at: SimTime,
    seq: u64,
    /// Incarnation of the target process when the event was scheduled; the
    /// event is voided if the process was killed (and possibly respawned) in
    /// the meantime — a crashed process never receives its old incarnation's
    /// timers, CPU completions, or in-flight messages.
    inc: u32,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Counters describing a finished (or in-progress) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events popped from the queue.
    pub events_processed: u64,
    /// Messages handed to `on_message`.
    pub messages_delivered: u64,
    /// Messages the transport dropped.
    pub messages_dropped: u64,
    /// Timers that fired (cancelled timers excluded).
    pub timers_fired: u64,
    /// Events voided because their target process was killed after they
    /// were scheduled.
    pub events_voided: u64,
    /// Processes killed via [`Sim::kill`].
    pub processes_killed: u64,
    /// Processes respawned via [`Sim::respawn`].
    pub processes_respawned: u64,
    /// High-water mark of the event queue.
    pub max_queue_len: usize,
}

/// Everything the scheduler owns except the process table; split out so a
/// dispatched process can borrow it mutably through [`Ctx`] while the table
/// slot is temporarily vacated.
pub struct SimCore {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry>>,
    rng: StdRng,
    transport: Box<dyn Transport>,
    cancelled: HashSet<u64>,
    next_timer: u64,
    /// Per-process incarnation counters, bumped on kill and respawn.
    incarnations: Vec<u32>,
    trace_enabled: bool,
    trace: Vec<TraceEntry>,
    stats: SimStats,
    stop_requested: bool,
}

impl SimCore {
    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let inc = self.incarnation_of(kind.target());
        self.queue.push(Reverse(Entry { at, seq, inc, kind }));
        self.stats.max_queue_len = self.stats.max_queue_len.max(self.queue.len());
    }

    fn incarnation_of(&self, pid: ProcessId) -> u32 {
        self.incarnations.get(pid.index()).copied().unwrap_or(0)
    }
}

/// The per-dispatch context handed to process handlers.
///
/// Provides simulated time, the seeded RNG, message sending, timers, traced
/// logging, and CPU execution on the process's host.
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    self_id: ProcessId,
    cpu: Option<&'a CpuHandle>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This process's id.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// The run's seeded RNG. All randomness must come from here.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// Sends `msg` to `to` through the installed transport.
    pub fn send<M: Message>(&mut self, to: ProcessId, msg: M) {
        self.send_boxed(to, Box::new(msg));
    }

    /// Sends an already-boxed message to `to`.
    pub fn send_boxed(&mut self, to: ProcessId, msg: Box<dyn Message>) {
        let bytes = msg.wire_size();
        let from = self.self_id;
        let outcome = self
            .core
            .transport
            .route(self.core.now, &mut self.core.rng, from, to, bytes);
        match outcome {
            Delivery::After(d) => {
                let at = self.core.now + d;
                self.core.push(at, EventKind::Deliver { from, to, msg });
            }
            Delivery::Drop => {
                self.core.stats.messages_dropped += 1;
            }
        }
    }

    /// Schedules `on_timer(tag)` to fire after `after`.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) -> TimerToken {
        self.set_timer_at(self.core.now + after, tag)
    }

    /// Schedules `on_timer(tag)` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_timer_at(&mut self, at: SimTime, tag: u64) -> TimerToken {
        assert!(
            at >= self.core.now,
            "timer scheduled in the past: {at} < {}",
            self.core.now
        );
        let token = TimerToken(self.core.next_timer);
        self.core.next_timer += 1;
        self.core.push(
            at,
            EventKind::Timer {
                pid: self.self_id,
                token,
                tag,
            },
        );
        token
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.core.cancelled.insert(token.0);
    }

    /// Schedules `cost` of CPU work on this process's host CPU;
    /// `on_cpu_done(tag)` fires when it completes. If the process has no
    /// attached CPU, the work completes after exactly `cost` (no contention).
    pub fn exec(&mut self, cost: SimDuration, tag: u64) {
        let done_after = match self.cpu {
            Some(cpu) => cpu.borrow_mut().execute(self.core.now, cost),
            None => cost,
        };
        let at = self.core.now + done_after;
        self.core.push(
            at,
            EventKind::CpuDone {
                pid: self.self_id,
                tag,
            },
        );
    }

    /// Appends a trace entry if tracing is enabled.
    pub fn trace(&mut self, category: &'static str, text: impl Into<String>) {
        if self.core.trace_enabled {
            let entry = TraceEntry {
                at: self.core.now,
                pid: self.self_id,
                category,
                text: text.into(),
            };
            self.core.trace.push(entry);
        }
    }

    /// Requests that the run stop after the current event.
    pub fn request_stop(&mut self) {
        self.core.stop_requested = true;
    }
}

struct ProcEntry {
    proc: Box<dyn Process>,
    cpu: Option<CpuHandle>,
}

/// The deterministic discrete-event scheduler.
///
/// # Examples
///
/// ```
/// use s2g_sim::{Ctx, Message, Process, ProcessId, Sim, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// struct Tick;
/// impl Message for Tick {}
///
/// struct Counter { seen: u32 }
/// impl Process for Counter {
///     fn name(&self) -> &str { "counter" }
///     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
///         let me = ctx.self_id();
///         ctx.send(me, Tick);
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, _msg: Box<dyn Message>) {
///         self.seen += 1;
///         if self.seen < 5 {
///             let me = ctx.self_id();
///             ctx.send(me, Tick);
///         }
///     }
/// }
///
/// let mut sim = Sim::new(42);
/// let pid = sim.spawn(Box::new(Counter { seen: 0 }));
/// sim.run_until(SimTime::from_secs(1));
/// assert_eq!(sim.process_ref::<Counter>(pid).unwrap().seen, 5);
/// ```
pub struct Sim {
    core: SimCore,
    processes: Vec<Option<ProcEntry>>,
    event_limit: u64,
}

impl Sim {
    /// Creates a scheduler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: SimCore {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                rng: StdRng::seed_from_u64(seed),
                transport: Box::new(InstantTransport::default()),
                cancelled: HashSet::new(),
                next_timer: 0,
                incarnations: Vec::new(),
                trace_enabled: false,
                trace: Vec::new(),
                stats: SimStats::default(),
                stop_requested: false,
            },
            processes: Vec::new(),
            event_limit: u64::MAX,
        }
    }

    /// Installs a transport (e.g. the emulated network).
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.core.transport = transport;
    }

    /// Enables or disables trace collection.
    pub fn set_tracing(&mut self, on: bool) {
        self.core.trace_enabled = on;
    }

    /// Caps the number of events a run may process — a runaway-loop guard.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Registers `proc` and schedules its `on_start` at time zero.
    pub fn spawn(&mut self, proc: Box<dyn Process>) -> ProcessId {
        self.spawn_at(SimTime::ZERO, proc)
    }

    /// Registers `proc` and schedules its `on_start` at `start`.
    pub fn spawn_at(&mut self, start: SimTime, proc: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.processes.len() as u32);
        self.processes.push(Some(ProcEntry { proc, cpu: None }));
        self.core.incarnations.push(0);
        self.core.push(start, EventKind::Start(pid));
        pid
    }

    /// Kills a process: its slot is vacated and every event scheduled for the
    /// old incarnation — pending timers, CPU completions, and in-flight
    /// messages — is voided, exactly as an OS process crash drops its
    /// runtime state and open connections. Returns the dead process for
    /// post-mortem inspection, or `None` when the slot was already empty.
    ///
    /// The slot (and therefore the [`ProcessId`]) can be reused via
    /// [`respawn`](Sim::respawn), so network placements keyed by pid stay
    /// valid across a crash/restart cycle.
    pub fn kill(&mut self, pid: ProcessId) -> Option<Box<dyn Process>> {
        let entry = self.processes.get_mut(pid.index())?.take()?;
        self.core.incarnations[pid.index()] += 1;
        self.core.stats.processes_killed += 1;
        Some(entry.proc)
    }

    /// Respawns a process into a previously [`kill`](Sim::kill)ed slot and
    /// schedules its `on_start` at the current simulated time. The
    /// incarnation is bumped again so messages addressed to the dead period
    /// (sent between kill and respawn) are also voided.
    ///
    /// The incarnation counter is sim-internal; application protocols that
    /// need restart detection carry their own incarnation numbers (e.g.
    /// brokers stamp one into controller heartbeats so their roles are
    /// re-taught after a bounce faster than the session timeout).
    ///
    /// # Panics
    ///
    /// Panics if the slot is still occupied or was never allocated.
    pub fn respawn(&mut self, pid: ProcessId, proc: Box<dyn Process>) {
        let slot = self
            .processes
            .get_mut(pid.index())
            .unwrap_or_else(|| panic!("respawn of unknown process {pid}"));
        assert!(slot.is_none(), "respawn into occupied slot {pid}");
        *slot = Some(ProcEntry { proc, cpu: None });
        self.core.incarnations[pid.index()] += 1;
        self.core.stats.processes_respawned += 1;
        let now = self.core.now;
        self.core.push(now, EventKind::Start(pid));
    }

    /// True while the process slot holds a live process.
    pub fn is_alive(&self, pid: ProcessId) -> bool {
        self.processes.get(pid.index()).is_some_and(Option::is_some)
    }

    /// Attaches a host CPU to a process; subsequent [`Ctx::exec`] calls
    /// contend on it.
    pub fn attach_cpu(&mut self, pid: ProcessId, cpu: CpuHandle) {
        let entry = self.processes[pid.index()]
            .as_mut()
            .expect("process exists");
        entry.cpu = Some(cpu);
    }

    /// Injects a message from "outside the world" (e.g. the orchestrator) to
    /// be delivered to `to` at absolute time `at`. Bypasses the transport.
    pub fn inject_at<M: Message>(&mut self, at: SimTime, to: ProcessId, msg: M) {
        self.core.push(
            at,
            EventKind::Deliver {
                from: to,
                to,
                msg: Box::new(msg),
            },
        );
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.core.stats
    }

    /// The collected trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.core.trace
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Immutable access to a process, downcast to its concrete type.
    /// Returns `None` if the type does not match.
    pub fn process_ref<T: Process + 'static>(&self, pid: ProcessId) -> Option<&T> {
        let entry = self.processes.get(pid.index())?.as_ref()?;
        (entry.proc.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable access to a process, downcast to its concrete type.
    pub fn process_mut<T: Process + 'static>(&mut self, pid: ProcessId) -> Option<&mut T> {
        let entry = self.processes.get_mut(pid.index())?.as_mut()?;
        (entry.proc.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Runs until the queue drains or `limit` is reached; the clock is left
    /// at `limit` (or the last event time if the queue drained first).
    /// Returns the number of events processed by this call.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded, which almost always
    /// indicates a livelocked protocol.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        let mut processed = 0;
        loop {
            if self.core.stop_requested {
                break;
            }
            let at = match self.core.queue.peek() {
                Some(Reverse(e)) if e.at <= limit => e.at,
                _ => break,
            };
            let Reverse(entry) = self.core.queue.pop().expect("peeked");
            debug_assert!(at >= self.core.now, "time went backwards");
            self.core.now = at;
            self.core.stats.events_processed += 1;
            processed += 1;
            if self.core.stats.events_processed > self.event_limit {
                panic!(
                    "event limit {} exceeded at {} — livelocked protocol?",
                    self.event_limit, self.core.now
                );
            }
            if entry.inc != self.core.incarnation_of(entry.kind.target()) {
                // Scheduled for a dead incarnation of the target process.
                self.core.stats.events_voided += 1;
                continue;
            }
            self.dispatch(entry.kind);
        }
        if self.core.now < limit && !self.core.stop_requested {
            self.core.now = limit;
        }
        processed
    }

    /// Runs until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(pid) => self.with_process(pid, |proc, ctx| proc.on_start(ctx)),
            EventKind::Deliver { from, to, msg } => {
                self.core.stats.messages_delivered += 1;
                self.with_process(to, |proc, ctx| proc.on_message(ctx, from, msg));
            }
            EventKind::Timer { pid, token, tag } => {
                if self.core.cancelled.remove(&token.0) {
                    return;
                }
                self.core.stats.timers_fired += 1;
                self.with_process(pid, |proc, ctx| proc.on_timer(ctx, tag));
            }
            EventKind::CpuDone { pid, tag } => {
                self.with_process(pid, |proc, ctx| proc.on_cpu_done(ctx, tag));
            }
        }
    }

    fn with_process<F>(&mut self, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Process, &mut Ctx<'_>),
    {
        let mut entry = match self.processes.get_mut(pid.index()).and_then(Option::take) {
            Some(e) => e,
            // The process slot may be legitimately empty if the event targets
            // a process that was never registered (stale id) — drop silently.
            None => return,
        };
        {
            let mut ctx = Ctx {
                core: &mut self.core,
                self_id: pid,
                cpu: entry.cpu.as_ref(),
            };
            f(entry.proc.as_mut(), &mut ctx);
        }
        self.processes[pid.index()] = Some(entry);
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.core.now)
            .field("processes", &self.processes.len())
            .field("queue_len", &self.core.queue.len())
            .field("stats", &self.core.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::HostCpu;

    #[derive(Debug)]
    struct Note(u64);
    impl Message for Note {
        fn wire_size(&self) -> usize {
            16
        }
    }

    struct Echo {
        peer: Option<ProcessId>,
        received: Vec<(SimTime, u64)>,
        bounce: bool,
    }

    impl Echo {
        fn new(bounce: bool) -> Self {
            Echo {
                peer: None,
                received: Vec::new(),
                bounce,
            }
        }
    }

    impl Process for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
            let note = crate::process::downcast::<Note>(msg).expect("note");
            self.received.push((ctx.now(), note.0));
            self.peer = Some(from);
            if self.bounce && note.0 > 0 {
                ctx.send(from, Note(note.0 - 1));
            }
        }
    }

    #[test]
    fn ping_pong_terminates() {
        let mut sim = Sim::new(1);
        let a = sim.spawn(Box::new(Echo::new(true)));
        let b = sim.spawn(Box::new(Echo::new(true)));
        sim.inject_at(SimTime::ZERO, a, Note(5));
        // inject_at uses from == to, so seed the peer manually via message flow:
        // a receives Note(5) "from a", bounces Note(4) to a... to make a real
        // ping-pong, inject to a with the note then manually send to b.
        sim.run_to_completion();
        // a received the injected 5, bounced 4 to itself, etc.
        let echo_a = sim.process_ref::<Echo>(a).unwrap();
        assert_eq!(
            echo_a.received.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![5, 4, 3, 2, 1, 0]
        );
        let echo_b = sim.process_ref::<Echo>(b).unwrap();
        assert!(echo_b.received.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        fn run(seed: u64) -> Vec<(SimTime, u64)> {
            let mut sim = Sim::new(seed);
            let a = sim.spawn(Box::new(Echo::new(true)));
            sim.inject_at(SimTime::from_millis(3), a, Note(10));
            sim.run_to_completion();
            sim.process_ref::<Echo>(a).unwrap().received.clone()
        }
        assert_eq!(run(7), run(7));
    }

    struct TimerProc {
        fired: Vec<(SimTime, u64)>,
        cancel_second: bool,
    }

    impl Process for TimerProc {
        fn name(&self) -> &str {
            "timer"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            let t2 = ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.set_timer(SimDuration::from_millis(30), 3);
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            self.fired.push((ctx.now(), tag));
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(TimerProc {
            fired: vec![],
            cancel_second: false,
        }));
        sim.run_to_completion();
        let fired = &sim.process_ref::<TimerProc>(p).unwrap().fired;
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0], (SimTime::from_millis(10), 1));
        assert_eq!(fired[1], (SimTime::from_millis(20), 2));
        assert_eq!(fired[2], (SimTime::from_millis(30), 3));
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(TimerProc {
            fired: vec![],
            cancel_second: true,
        }));
        sim.run_to_completion();
        let fired = &sim.process_ref::<TimerProc>(p).unwrap().fired;
        assert_eq!(
            fired.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(sim.stats().timers_fired, 2);
    }

    struct Worker {
        done: Vec<(SimTime, u64)>,
    }

    impl Process for Worker {
        fn name(&self) -> &str {
            "worker"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.exec(SimDuration::from_millis(10), 100);
            ctx.exec(SimDuration::from_millis(10), 101);
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
        fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            self.done.push((ctx.now(), tag));
        }
    }

    #[test]
    fn cpu_contention_serializes_on_one_core() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Worker { done: vec![] }));
        sim.attach_cpu(p, HostCpu::shared("h", 1, 1.0));
        sim.run_to_completion();
        let done = &sim.process_ref::<Worker>(p).unwrap().done;
        assert_eq!(done[0], (SimTime::from_millis(10), 100));
        assert_eq!(done[1], (SimTime::from_millis(20), 101));
    }

    #[test]
    fn cpu_without_handle_is_uncontended() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Worker { done: vec![] }));
        sim.run_to_completion();
        let done = &sim.process_ref::<Worker>(p).unwrap().done;
        assert_eq!(done[0].0, SimTime::from_millis(10));
        assert_eq!(done[1].0, SimTime::from_millis(10));
    }

    #[test]
    fn run_until_advances_clock_to_limit() {
        let mut sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn stats_count_messages() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(Box::new(Echo::new(false)));
        sim.inject_at(SimTime::ZERO, a, Note(1));
        sim.inject_at(SimTime::ZERO, a, Note(2));
        sim.run_to_completion();
        assert_eq!(sim.stats().messages_delivered, 2);
        assert_eq!(sim.stats().messages_dropped, 0);
    }

    struct DropAll;
    impl Transport for DropAll {
        fn route(
            &mut self,
            _: SimTime,
            _: &mut StdRng,
            _: ProcessId,
            _: ProcessId,
            _: usize,
        ) -> Delivery {
            Delivery::Drop
        }
    }

    #[test]
    fn transport_can_drop() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(Box::new(Echo::new(false)));
        let b = sim.spawn(Box::new(Echo::new(true)));
        sim.set_transport(Box::new(DropAll));
        sim.inject_at(SimTime::ZERO, b, Note(3)); // inject bypasses transport
        sim.run_to_completion();
        // b bounced a reply, but the transport dropped it.
        assert_eq!(sim.stats().messages_dropped, 1);
        assert!(sim.process_ref::<Echo>(a).unwrap().received.is_empty());
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        struct Spin;
        impl Process for Spin {
            fn name(&self) -> &str {
                "spin"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.self_id();
                ctx.send(me, Note(0));
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {
                let me = ctx.self_id();
                ctx.send(me, Note(0));
            }
        }
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(Spin));
        sim.set_event_limit(1_000);
        sim.run_to_completion();
    }

    #[test]
    fn tracing_collects_entries() {
        struct Tracer;
        impl Process for Tracer {
            fn name(&self) -> &str {
                "tracer"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.trace("test", "hello");
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
        }
        let mut sim = Sim::new(0);
        sim.set_tracing(true);
        sim.spawn(Box::new(Tracer));
        sim.run_to_completion();
        assert_eq!(sim.trace().len(), 1);
        assert_eq!(sim.trace()[0].text, "hello");
    }

    #[test]
    fn killed_process_receives_nothing_more() {
        struct Ticker {
            ticks: u32,
        }
        impl Process for Ticker {
            fn name(&self) -> &str {
                "ticker"
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                self.ticks += 1;
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Ticker { ticks: 0 }));
        sim.run_until(SimTime::from_millis(35));
        let dead = sim.kill(p).expect("was alive");
        assert!(!sim.is_alive(p));
        let dead_ticks = (dead.as_ref() as &dyn Any)
            .downcast_ref::<Ticker>()
            .unwrap()
            .ticks;
        assert_eq!(dead_ticks, 3);
        // The pending timer for the old incarnation is voided, not delivered.
        sim.run_until(SimTime::from_millis(100));
        assert!(sim.stats().events_voided >= 1);
        assert_eq!(sim.stats().processes_killed, 1);
    }

    #[test]
    fn respawn_reuses_pid_with_fresh_state() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Echo::new(false)));
        sim.inject_at(SimTime::from_millis(1), p, Note(1));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.process_ref::<Echo>(p).unwrap().received.len(), 1);
        // A message in flight across the crash must not reach the respawn.
        sim.inject_at(SimTime::from_millis(20), p, Note(2));
        sim.kill(p).expect("alive");
        sim.run_until(SimTime::from_millis(10));
        sim.respawn(p, Box::new(Echo::new(false)));
        assert!(sim.is_alive(p));
        sim.inject_at(SimTime::from_millis(30), p, Note(3));
        sim.run_to_completion();
        let echo = sim.process_ref::<Echo>(p).unwrap();
        let values: Vec<u64> = echo.received.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![3], "only post-respawn messages arrive");
        assert_eq!(sim.stats().processes_respawned, 1);
    }

    #[test]
    #[should_panic(expected = "occupied slot")]
    fn respawn_into_live_slot_panics() {
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Echo::new(false)));
        sim.respawn(p, Box::new(Echo::new(false)));
    }

    #[test]
    fn request_stop_halts_run() {
        struct Stopper {
            handled: u32,
        }
        impl Process for Stopper {
            fn name(&self) -> &str {
                "stopper"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                self.handled += 1;
                ctx.request_stop();
            }
        }
        let mut sim = Sim::new(0);
        let p = sim.spawn(Box::new(Stopper { handled: 0 }));
        sim.run_to_completion();
        assert_eq!(sim.process_ref::<Stopper>(p).unwrap().handled, 1);
    }
}
