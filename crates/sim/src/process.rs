//! Processes and messages.
//!
//! Every application component in stream2gym-rs — a message broker, a data
//! producer stub, a stream-processing worker, a monitoring daemon — is a
//! [`Process`]: a deterministic state machine driven by messages and timers.
//! This mirrors the paper's design where "each application component runs as
//! an independent process", except that our processes are simulated actors
//! rather than OS processes.

use std::any::Any;
use std::fmt;

use crate::time::SimTime;

/// Identifies a process registered with the [`Sim`](crate::Sim) scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The raw index of this process in the scheduler's table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A token returned by [`Ctx::set_timer`](crate::Ctx::set_timer) that can be
/// used to cancel a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// A message exchanged between processes.
///
/// Any `'static` type with a `Debug` impl can be a message; implementors
/// override [`wire_size`](Message::wire_size) so the network emulator can
/// charge a realistic number of bytes against link bandwidth, exactly like
/// real frames would occupy a `tc`-shaped veth link in the original
/// Mininet-based stream2gym.
///
/// # Examples
///
/// ```
/// use s2g_sim::Message;
///
/// #[derive(Debug)]
/// struct Ping { payload: Vec<u8> }
///
/// impl Message for Ping {
///     fn wire_size(&self) -> usize { 32 + self.payload.len() }
/// }
///
/// let m = Ping { payload: vec![0; 100] };
/// assert_eq!(m.wire_size(), 132);
/// ```
pub trait Message: Any + fmt::Debug {
    /// The number of bytes this message occupies on the wire (headers
    /// included). Defaults to a nominal 64-byte frame.
    fn wire_size(&self) -> usize {
        64
    }
}

/// Downcasts a boxed message to a concrete type, returning the original box
/// on mismatch so the caller can try another type.
///
/// # Examples
///
/// ```
/// use s2g_sim::{downcast, Message};
///
/// #[derive(Debug)]
/// struct A(u32);
/// impl Message for A {}
///
/// let boxed: Box<dyn Message> = Box::new(A(7));
/// let a = downcast::<A>(boxed).expect("type matches");
/// assert_eq!(a.0, 7);
/// ```
pub fn downcast<T: Message>(msg: Box<dyn Message>) -> Result<Box<T>, Box<dyn Message>> {
    if (msg.as_ref() as &dyn Any).is::<T>() {
        let any: Box<dyn Any> = msg;
        Ok(any.downcast::<T>().expect("checked by is::<T>"))
    } else {
        Err(msg)
    }
}

/// Borrow-downcasts a message reference to a concrete type.
pub fn downcast_ref<T: Message>(msg: &dyn Message) -> Option<&T> {
    (msg as &dyn Any).downcast_ref::<T>()
}

/// A deterministic, event-driven application component.
///
/// Handlers receive a [`Ctx`](crate::Ctx) which exposes the current simulated
/// time, the seeded RNG, message sending, timers, and CPU execution. All
/// state mutation happens inside handlers, so a run is fully determined by
/// the seed and the task description.
pub trait Process: Any {
    /// A human-readable name used in traces and panics.
    fn name(&self) -> &str;

    /// Called once when the simulation starts (at the process's start time).
    fn on_start(&mut self, _ctx: &mut crate::Ctx<'_>) {}

    /// Called when a message from `from` is delivered to this process.
    fn on_message(&mut self, ctx: &mut crate::Ctx<'_>, from: ProcessId, msg: Box<dyn Message>);

    /// Called when a timer set via [`Ctx::set_timer`](crate::Ctx::set_timer)
    /// fires. `tag` is the caller-chosen discriminator.
    fn on_timer(&mut self, _ctx: &mut crate::Ctx<'_>, _tag: u64) {}

    /// Called when a CPU work item scheduled via
    /// [`Ctx::exec`](crate::Ctx::exec) completes. `tag` is the caller-chosen
    /// discriminator.
    fn on_cpu_done(&mut self, _ctx: &mut crate::Ctx<'_>, _tag: u64) {}
}

/// A record of one traced event, for debugging and the monitoring subsystem.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// The process that emitted it.
    pub pid: ProcessId,
    /// Free-form category (e.g. `"broker"`, `"producer"`).
    pub category: &'static str,
    /// Human-readable description.
    pub text: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.pid, self.category, self.text
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct M1(u64);
    impl Message for M1 {
        fn wire_size(&self) -> usize {
            8
        }
    }

    #[derive(Debug)]
    struct M2;
    impl Message for M2 {}

    #[test]
    fn downcast_matches_and_misses() {
        let b: Box<dyn Message> = Box::new(M1(42));
        let b = match downcast::<M2>(b) {
            Ok(_) => panic!("wrong type should not downcast"),
            Err(orig) => orig,
        };
        let m1 = downcast::<M1>(b).expect("right type");
        assert_eq!(m1.0, 42);
    }

    #[test]
    fn downcast_ref_works() {
        let b: Box<dyn Message> = Box::new(M1(9));
        assert!(downcast_ref::<M2>(b.as_ref()).is_none());
        assert_eq!(downcast_ref::<M1>(b.as_ref()).unwrap().0, 9);
    }

    #[test]
    fn default_wire_size() {
        assert_eq!(M2.wire_size(), 64);
        assert_eq!(M1(0).wire_size(), 8);
    }

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(ProcessId(3).index(), 3);
    }
}
