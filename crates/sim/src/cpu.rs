//! Host CPU model.
//!
//! The paper's emulation runs every application component on a single
//! commodity server, and its evaluation (Fig. 7a and Fig. 9) depends on CPU
//! contention: transfer throughput plateaus once the number of consumers
//! exceeds the core count, and overall server utilization grows with the
//! number of coordinating sites. [`HostCpu`] reproduces that behaviour as a
//! multi-server queue: each work item occupies one core for its cost
//! (divided by the host's speed factor), and items queue when every core is
//! busy.
//!
//! Busy intervals are recorded so the resource monitor can reconstruct
//! utilization in 500 ms sampling windows, mirroring the paper's
//! `/proc/stat` snapshots.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A shared handle to a host's CPU model.
pub type CpuHandle = Rc<RefCell<HostCpu>>;

/// A simulated multi-core CPU attached to an emulated host.
///
/// # Examples
///
/// ```
/// use s2g_sim::{HostCpu, SimDuration, SimTime};
///
/// let mut cpu = HostCpu::new("h1", 2, 1.0);
/// let now = SimTime::ZERO;
/// // Two jobs fill both cores; the third queues behind the first to finish.
/// let d1 = cpu.execute(now, SimDuration::from_millis(10));
/// let d2 = cpu.execute(now, SimDuration::from_millis(10));
/// let d3 = cpu.execute(now, SimDuration::from_millis(10));
/// assert_eq!(d1.as_millis(), 10);
/// assert_eq!(d2.as_millis(), 10);
/// assert_eq!(d3.as_millis(), 20);
/// ```
#[derive(Debug)]
pub struct HostCpu {
    name: String,
    /// Next instant each core becomes free.
    cores: Vec<SimTime>,
    /// Relative speed (1.0 = nominal). The orchestrator lowers this for
    /// hosts capped via the `cpuPercentage` attribute.
    speed: f64,
    /// Completed/scheduled busy intervals, drained by the resource monitor.
    busy_intervals: Vec<(SimTime, SimTime)>,
    /// Total busy core-time ever scheduled.
    total_busy: SimDuration,
    /// Number of work items executed.
    jobs: u64,
}

impl HostCpu {
    /// Creates a CPU with `cores` cores and a relative `speed` factor.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `speed` is not strictly positive.
    pub fn new(name: impl Into<String>, cores: usize, speed: f64) -> Self {
        assert!(cores > 0, "a host needs at least one core");
        assert!(
            speed > 0.0 && speed.is_finite(),
            "speed must be positive, got {speed}"
        );
        HostCpu {
            name: name.into(),
            cores: vec![SimTime::ZERO; cores],
            speed,
            busy_intervals: Vec::new(),
            total_busy: SimDuration::ZERO,
            jobs: 0,
        }
    }

    /// Creates a shared handle.
    pub fn shared(name: impl Into<String>, cores: usize, speed: f64) -> CpuHandle {
        Rc::new(RefCell::new(HostCpu::new(name, cores, speed)))
    }

    /// The host name this CPU belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// The relative speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Adjusts the relative speed factor (used by `cpuPercentage` caps).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive.
    pub fn set_speed(&mut self, speed: f64) {
        assert!(
            speed > 0.0 && speed.is_finite(),
            "speed must be positive, got {speed}"
        );
        self.speed = speed;
    }

    /// Schedules a work item of `cost` nominal CPU time starting no earlier
    /// than `now`, and returns the delay from `now` until it completes.
    ///
    /// The item runs on the earliest-free core; its real duration is
    /// `cost / speed`.
    pub fn execute(&mut self, now: SimTime, cost: SimDuration) -> SimDuration {
        let scaled = SimDuration::from_nanos((cost.as_nanos() as f64 / self.speed).round() as u64);
        // Earliest-free core.
        let (idx, _) = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .expect("at least one core");
        let start = self.cores[idx].max(now);
        let done = start + scaled;
        self.cores[idx] = done;
        if !scaled.is_zero() {
            self.busy_intervals.push((start, done));
            self.total_busy += scaled;
        }
        self.jobs += 1;
        done - now
    }

    /// The earliest instant at which a new item could start executing.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        self.cores
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
            .max(now)
    }

    /// Total busy core-time scheduled so far.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Number of work items executed so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Drains busy intervals that end at or before `upto`, returning them for
    /// utilization binning. Intervals still in progress are kept.
    pub fn drain_intervals(&mut self, upto: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut done = Vec::new();
        let mut keep = Vec::new();
        for iv in self.busy_intervals.drain(..) {
            if iv.1 <= upto {
                done.push(iv);
            } else {
                keep.push(iv);
            }
        }
        self.busy_intervals = keep;
        done
    }

    /// Peeks at all recorded intervals (completed and in-flight).
    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.busy_intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_serializes_work() {
        let mut cpu = HostCpu::new("h", 1, 1.0);
        let t0 = SimTime::ZERO;
        assert_eq!(cpu.execute(t0, SimDuration::from_millis(5)).as_millis(), 5);
        assert_eq!(cpu.execute(t0, SimDuration::from_millis(5)).as_millis(), 10);
        assert_eq!(cpu.execute(t0, SimDuration::from_millis(5)).as_millis(), 15);
        assert_eq!(cpu.total_busy().as_millis(), 15);
        assert_eq!(cpu.jobs(), 3);
    }

    #[test]
    fn parallel_cores_run_concurrently() {
        let mut cpu = HostCpu::new("h", 4, 1.0);
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            assert_eq!(
                cpu.execute(t0, SimDuration::from_millis(10)).as_millis(),
                10
            );
        }
        // Fifth job waits for a core.
        assert_eq!(
            cpu.execute(t0, SimDuration::from_millis(10)).as_millis(),
            20
        );
    }

    #[test]
    fn speed_scales_cost() {
        let mut cpu = HostCpu::new("h", 1, 0.5);
        let d = cpu.execute(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d.as_millis(), 20);
        cpu.set_speed(2.0);
        let d = cpu.execute(SimTime::from_millis(20), SimDuration::from_millis(10));
        assert_eq!(d.as_millis(), 5);
    }

    #[test]
    fn later_now_pushes_start() {
        let mut cpu = HostCpu::new("h", 1, 1.0);
        cpu.execute(SimTime::ZERO, SimDuration::from_millis(1));
        // CPU free at 1ms; job arriving at 10ms starts immediately.
        let d = cpu.execute(SimTime::from_millis(10), SimDuration::from_millis(2));
        assert_eq!(d.as_millis(), 2);
    }

    #[test]
    fn drain_intervals_splits_on_time() {
        let mut cpu = HostCpu::new("h", 1, 1.0);
        cpu.execute(SimTime::ZERO, SimDuration::from_millis(5));
        cpu.execute(SimTime::from_millis(100), SimDuration::from_millis(5));
        let done = cpu.drain_intervals(SimTime::from_millis(50));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.as_millis(), 5);
        assert_eq!(cpu.intervals().len(), 1);
        let rest = cpu.drain_intervals(SimTime::from_millis(200));
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn zero_cost_work_is_free() {
        let mut cpu = HostCpu::new("h", 1, 1.0);
        let d = cpu.execute(SimTime::ZERO, SimDuration::ZERO);
        assert!(d.is_zero());
        assert!(cpu.intervals().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = HostCpu::new("h", 0, 1.0);
    }
}
