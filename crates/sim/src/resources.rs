//! Memory ledger for the resource model.
//!
//! stream2gym's §VI-C evaluation snapshots `/proc/meminfo` to report the
//! emulation's peak memory usage as components and producer buffers scale.
//! Our components register themselves with a shared [`MemLedger`] — a base
//! resident footprint (e.g. a broker JVM) plus a dynamic part they update as
//! they run (log bytes retained, producer buffer fill). The resource monitor
//! samples [`MemLedger::total`] every 500 ms and tracks the peak.

use std::cell::RefCell;
use std::rc::Rc;

/// A shared handle to the memory ledger.
pub type LedgerHandle = Rc<RefCell<MemLedger>>;

/// A component's slot in the ledger, returned by [`MemLedger::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSlot(usize);

#[derive(Debug, Clone)]
struct SlotState {
    name: String,
    base: u64,
    dynamic: u64,
}

/// Tracks the modeled resident memory of every registered component.
///
/// # Examples
///
/// ```
/// use s2g_sim::MemLedger;
///
/// let ledger = MemLedger::new(4 << 30); // 4 GiB OS/emulator baseline
/// let handle = ledger.into_handle();
/// let slot = handle.borrow_mut().register("broker-1", 400 << 20);
/// handle.borrow_mut().set_dynamic(slot, 10 << 20);
/// assert_eq!(handle.borrow().total(), (4 << 30) + (400 << 20) + (10 << 20));
/// ```
#[derive(Debug, Clone)]
pub struct MemLedger {
    baseline: u64,
    slots: Vec<SlotState>,
}

impl MemLedger {
    /// Creates a ledger with a fixed baseline (OS, emulator, switch daemons).
    pub fn new(baseline_bytes: u64) -> Self {
        MemLedger {
            baseline: baseline_bytes,
            slots: Vec::new(),
        }
    }

    /// Wraps the ledger in a shared handle.
    pub fn into_handle(self) -> LedgerHandle {
        Rc::new(RefCell::new(self))
    }

    /// Registers a component with a base resident footprint; returns its slot.
    pub fn register(&mut self, name: impl Into<String>, base_bytes: u64) -> MemSlot {
        let slot = MemSlot(self.slots.len());
        self.slots.push(SlotState {
            name: name.into(),
            base: base_bytes,
            dynamic: 0,
        });
        slot
    }

    /// Updates a component's dynamic memory (buffers, retained logs).
    pub fn set_dynamic(&mut self, slot: MemSlot, bytes: u64) {
        self.slots[slot.0].dynamic = bytes;
    }

    /// Adds to a component's dynamic memory.
    pub fn add_dynamic(&mut self, slot: MemSlot, bytes: i64) {
        let d = &mut self.slots[slot.0].dynamic;
        *d = (*d as i64 + bytes).max(0) as u64;
    }

    /// Total modeled resident bytes: baseline + all bases + all dynamics.
    pub fn total(&self) -> u64 {
        self.baseline + self.slots.iter().map(|s| s.base + s.dynamic).sum::<u64>()
    }

    /// The fixed baseline.
    pub fn baseline(&self) -> u64 {
        self.baseline
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.slots.len()
    }

    /// Per-component `(name, base, dynamic)` view for reports.
    pub fn components(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.slots
            .iter()
            .map(|s| (s.name.as_str(), s.base, s.dynamic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut l = MemLedger::new(1_000);
        let a = l.register("a", 500);
        let b = l.register("b", 300);
        assert_eq!(l.total(), 1_800);
        l.set_dynamic(a, 50);
        l.add_dynamic(b, 25);
        assert_eq!(l.total(), 1_875);
        l.add_dynamic(b, -100); // clamps at zero
        assert_eq!(l.total(), 1_850);
        assert_eq!(l.component_count(), 2);
    }

    #[test]
    fn components_view() {
        let mut l = MemLedger::new(0);
        let s = l.register("broker", 400);
        l.set_dynamic(s, 7);
        let v: Vec<_> = l.components().collect();
        assert_eq!(v, vec![("broker", 400, 7)]);
    }
}
