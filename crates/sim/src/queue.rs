//! Event-queue implementations for the scheduler.
//!
//! Two queues live here, both preserving the exact `(at, seq)` total order:
//!
//! * [`CalendarQueue`] — the default. A bucketed calendar queue: a
//!   timing-wheel ring of sorted buckets covers the near future (where
//!   virtually all timer/delivery traffic lands), and a far-future overflow
//!   heap catches the rest. Push and pop are O(1) for in-horizon events,
//!   entries live in a slab with a freelist (no per-event allocation), and
//!   timer cancellation removes the entry's payload eagerly via a
//!   generation-tagged token → slot index instead of a grow-forever
//!   tombstone set.
//! * [`ReferenceQueue`] — the original `BinaryHeap` scheduler, kept as the
//!   differential-testing baseline. The `reference-sched` cargo feature
//!   flips [`Sim`](crate::Sim)'s default to this implementation; tests can
//!   always pick per-instance via `Sim::with_scheduler`.
//!
//! The differential property tests (in-module and `tests/differential.rs`)
//! assert that both implementations yield identical pop order and identical
//! `SimStats` on randomized workloads.

use std::cmp::Reverse;
use std::collections::BinaryHeap; // s2g-lint: allow(event-queue) — reference scheduler + overflow heap live here
use std::collections::{HashMap, HashSet};

use crate::process::{Message, ProcessId, TimerToken};
use crate::time::SimTime;

/// What a scheduled event does when it fires.
pub(crate) enum EventKind {
    /// Deliver `on_start` to a newly spawned process.
    Start(ProcessId),
    /// Deliver a message.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payload.
        msg: Box<dyn Message>,
    },
    /// Fire a timer.
    Timer {
        /// Owning process.
        pid: ProcessId,
        /// Token handed back from `set_timer`, for cancellation.
        token: TimerToken,
        /// Caller-chosen tag passed to `on_timer`.
        tag: u64,
    },
    /// A CPU slice finished.
    CpuDone {
        /// Owning process.
        pid: ProcessId,
        /// Caller-chosen tag passed to `on_cpu_done`.
        tag: u64,
    },
}

impl EventKind {
    /// The process this event is destined for.
    pub(crate) fn target(&self) -> ProcessId {
        match self {
            EventKind::Start(pid) => *pid,
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { pid, .. } => *pid,
            EventKind::CpuDone { pid, .. } => *pid,
        }
    }
}

/// Which event-queue implementation a [`Sim`](crate::Sim) runs on.
///
/// The default is [`Calendar`](SchedulerKind::Calendar); building the crate
/// with the `reference-sched` feature flips the default to
/// [`Reference`](SchedulerKind::Reference). Both orders are identical — the
/// reference exists for differential testing and benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Bucketed calendar queue (timing-wheel ring + far-future overflow
    /// heap): O(1) push/pop for near-future traffic, pooled entries, O(1)
    /// cancel.
    Calendar,
    /// The original `BinaryHeap` scheduler, kept as the differential
    /// baseline.
    Reference,
}

/// An event handed back by [`EventQueue::pop`].
pub(crate) struct Popped {
    pub at: SimTime,
    /// Scheduling sequence number; the dispatcher keys only on `at`, but
    /// the differential tests assert the full `(at, seq)` stream.
    #[allow(dead_code)]
    pub seq: u64,
    pub inc: u32,
    /// The entry is a cancelled timer: it still counts as a processed event
    /// (both queues agree), but must not dispatch or count as fired.
    pub cancelled: bool,
    pub kind: EventKind,
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// log2 of the bucket width in nanoseconds: 65.536 µs per bucket.
const WIDTH_BITS: u32 = 16;
/// Width of one wheel bucket in nanoseconds.
const BUCKET_WIDTH_NS: u64 = 1 << WIDTH_BITS;
/// log2 of the wheel size: 2048 buckets.
const WHEEL_BITS: u32 = 11;
/// Number of buckets in the wheel ring.
const WHEEL_BUCKETS: usize = 1 << WHEEL_BITS;
/// How far past `cur_start` the wheel reaches: ~134 ms. Events beyond this
/// land in the overflow heap and migrate in as the wheel turns.
const HORIZON_NS: u64 = BUCKET_WIDTH_NS << WHEEL_BITS;

/// A scheduled event's position: key in the bucket, payload in the slab.
///
/// Keeping `(at, seq)` inline in the bucket keeps the pop-order comparisons
/// on a dense, cache-friendly array; the slab is only touched once per event.
#[derive(Clone, Copy)]
struct BucketItem {
    at: u64,
    seq: u64,
    slot: u32,
}

impl BucketItem {
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// A pooled event payload. `gen` increments every time the slot is freed, so
/// a stale [`TimerToken`] (encoding an older generation) can never cancel an
/// unrelated event that later reuses the slot.
struct Slot {
    gen: u32,
    state: SlotState,
}

enum SlotState {
    Free {
        next: u32,
    },
    Occupied {
        inc: u32,
        cancelled: bool,
        kind: EventKind,
    },
}

const NO_SLOT: u32 = u32::MAX;

/// Bucketed calendar queue: near-future timing wheel + far-future overflow
/// heap + slab/freelist event pool. See the module docs for the layout.
///
/// Ordering invariants:
///
/// * `cur_start` never exceeds the `at` of any un-popped event (it only
///   advances inside [`pop`](CalendarQueue::pop), committing to a bucket
///   exactly when everything earlier has been drained), so a later push can
///   never alias into a bucket behind the cursor.
/// * Only the *current* bucket is sorted by `(at, seq)`: future buckets are
///   filed append-only (O(1) push, no memmove) and sorted exactly once when
///   the wheel advances into them. The popped prefix of the current bucket
///   is retained (cursor index) and cleared when the bucket is exhausted;
///   pushes landing in the current bucket insert in sorted position at or
///   after the cursor, so mid-bucket pushes stay ordered.
/// * Overflow items migrate into the wheel only when their bucket comes
///   inside the horizon, each exactly once, by plain append — the
///   activation sort establishes their order.
pub(crate) struct CalendarQueue {
    wheel: Vec<Vec<BucketItem>>,
    /// Index of the bucket `cur_start` maps into.
    cur_bucket: usize,
    /// Start (inclusive) of the current bucket's time window, in ns.
    cur_start: u64,
    /// How many items of `wheel[cur_bucket]` are already popped.
    cursor: usize,
    /// Total un-popped items across all wheel buckets.
    wheel_len: usize,
    /// Far-future events as `(at_ns, seq, slot)`, min-first.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>, // s2g-lint: allow(event-queue) — far-future spillover of the calendar queue itself
    slab: Vec<Slot>,
    free_head: u32,
    /// Occupied slots (un-popped events, including cancelled tombstones).
    len: usize,
    /// Cancelled-but-not-yet-popped timers still occupying slots.
    tombstones: usize,
    /// Cached `(at, seq)` of the queue minimum; cleared on pop, tightened on
    /// push, so repeated peeks are O(1) without committing a wheel advance.
    peek_cache: Option<(u64, u64)>,
}

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            cur_bucket: 0,
            cur_start: 0,
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(), // s2g-lint: allow(event-queue) — far-future spillover of the calendar queue itself
            slab: Vec::new(),
            free_head: NO_SLOT,
            len: 0,
            tombstones: 0,
            peek_cache: None,
        }
    }

    /// Takes a slot off the freelist (or grows the slab) without filling it.
    fn reserve(&mut self) -> u32 {
        if self.free_head != NO_SLOT {
            let idx = self.free_head;
            match self.slab[idx as usize].state {
                SlotState::Free { next } => self.free_head = next,
                SlotState::Occupied { .. } => unreachable!("freelist head is occupied"),
            }
            idx
        } else {
            let idx = u32::try_from(self.slab.len()).expect("slab exceeds u32 slots");
            self.slab.push(Slot {
                gen: 0,
                state: SlotState::Free { next: NO_SLOT },
            });
            idx
        }
    }

    fn occupy(&mut self, slot: u32, inc: u32, kind: EventKind) {
        self.slab[slot as usize].state = SlotState::Occupied {
            inc,
            cancelled: false,
            kind,
        };
        self.len += 1;
    }

    /// Files the slot's key into its wheel bucket or the overflow heap.
    fn file(&mut self, at: u64, seq: u64, slot: u32) {
        debug_assert!(
            at >= self.cur_start,
            "event scheduled behind the wheel window"
        );
        // Robustness clamp: a contract-violating past push still lands in a
        // poppable position (the current bucket, at or after the cursor).
        let eff = at.max(self.cur_start);
        if eff < self.cur_start.saturating_add(HORIZON_NS) {
            let b = ((eff >> WIDTH_BITS) as usize) & (WHEEL_BUCKETS - 1);
            let item = BucketItem { at, seq, slot };
            let bucket = &mut self.wheel[b];
            if b == self.cur_bucket {
                // Only the bucket being consumed must stay sorted (past the
                // cursor); future buckets are filed append-only and sorted
                // once on activation.
                match bucket.last() {
                    Some(last) if last.key() > item.key() => {
                        let pos = bucket
                            .partition_point(|x| x.key() < item.key())
                            .max(self.cursor);
                        bucket.insert(pos, item);
                    }
                    _ => bucket.push(item),
                }
            } else {
                bucket.push(item);
            }
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse((at, seq, slot)));
        }
        if let Some(cached) = self.peek_cache {
            if (at, seq) < cached {
                self.peek_cache = Some((at, seq));
            }
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, inc: u32, kind: EventKind) {
        let slot = self.reserve();
        self.occupy(slot, inc, kind);
        self.file(at.as_nanos(), seq, slot);
    }

    /// Pushes a timer event, minting a token that encodes `(generation,
    /// slot)` so cancellation is a direct index — no hashing, no lookup
    /// table, and stale tokens (the slot was freed and reused) are rejected
    /// by the generation check.
    pub(crate) fn push_timer(
        &mut self,
        at: SimTime,
        seq: u64,
        inc: u32,
        pid: ProcessId,
        tag: u64,
    ) -> TimerToken {
        let slot = self.reserve();
        let gen = self.slab[slot as usize].gen;
        let token = TimerToken((u64::from(gen) << 32) | u64::from(slot));
        self.occupy(slot, inc, EventKind::Timer { pid, token, tag });
        self.file(at.as_nanos(), seq, slot);
        token
    }

    /// Marks a pending timer cancelled, dropping its payload eagerly.
    /// Returns the owning `(pid, inc)` if the token named a live, not yet
    /// cancelled timer; `None` for stale/fired/double-cancelled tokens.
    pub(crate) fn cancel(&mut self, token: TimerToken) -> Option<(ProcessId, u32)> {
        let slot_idx = (token.0 & u64::from(u32::MAX)) as usize;
        let gen = (token.0 >> 32) as u32;
        let slot = self.slab.get_mut(slot_idx)?;
        if slot.gen != gen {
            return None; // already fired (slot freed, generation bumped)
        }
        match &mut slot.state {
            SlotState::Occupied {
                inc,
                cancelled,
                kind: EventKind::Timer { pid, .. },
            } if !*cancelled => {
                let owner = (*pid, *inc);
                *cancelled = true;
                self.tombstones += 1;
                Some(owner)
            }
            _ => None,
        }
    }

    /// The `(at, seq)` key of the next event, without committing a wheel
    /// advance. The wheel position only moves in [`pop`](CalendarQueue::pop):
    /// a committing peek could advance `cur_start` past the caller's `now`,
    /// and a later push between `now` and the advanced `cur_start` would
    /// alias into the wrong wheel revolution.
    fn peek_key(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(cached) = self.peek_cache {
            return Some(cached);
        }
        let key = if self.wheel_len > 0 {
            // First non-empty bucket scanning forward from the current one.
            // Every wheel item is within one horizon of cur_start, so the
            // first non-empty bucket in ring order holds the wheel minimum,
            // and any overflow item is at or beyond the horizon — strictly
            // later than every wheel item. The current bucket is sorted past
            // its cursor; any other bucket is unsorted until activation, so
            // its minimum is found by a linear scan (short, and amortized to
            // once per bucket by the peek cache).
            let mut b = self.cur_bucket;
            loop {
                if b == self.cur_bucket {
                    if let Some(item) = self.wheel[b].get(self.cursor) {
                        break item.key();
                    }
                } else if let Some(min) = self.wheel[b].iter().map(BucketItem::key).min() {
                    break min;
                }
                b = (b + 1) & (WHEEL_BUCKETS - 1);
            }
        } else {
            let &Reverse((at, seq, _)) = self.overflow.peek().expect("len > 0 with empty wheel");
            (at, seq)
        };
        self.peek_cache = Some(key);
        Some(key)
    }

    /// The next event's time without popping (test/diagnostic aid; the run
    /// loop uses the fused [`pop_at_most`](CalendarQueue::pop_at_most)).
    #[cfg(test)]
    fn next_at(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| SimTime::from_nanos(at))
    }

    /// Pops the next event only if its time is at most `limit`.
    ///
    /// This is the run loop's fused peek+pop: the common case (the current
    /// bucket still has items) is a single bounds-checked read, with none of
    /// [`peek_key`](CalendarQueue::peek_key)'s scan-and-cache machinery.
    pub(crate) fn pop_at_most(&mut self, limit: SimTime) -> Option<Popped> {
        if let Some(&item) = self.wheel[self.cur_bucket].get(self.cursor) {
            if item.at > limit.as_nanos() {
                return None;
            }
            self.peek_cache = None;
            self.cursor += 1;
            self.wheel_len -= 1;
            return Some(self.take(item));
        }
        if self.peek_key()? > (limit.as_nanos(), u64::MAX) {
            return None;
        }
        self.pop()
    }

    pub(crate) fn pop(&mut self) -> Option<Popped> {
        if self.len == 0 {
            return None;
        }
        self.peek_cache = None;
        loop {
            if let Some(&item) = self.wheel[self.cur_bucket].get(self.cursor) {
                self.cursor += 1;
                self.wheel_len -= 1;
                return Some(self.take(item));
            }
            // Current bucket exhausted: clear its popped prefix and advance.
            self.wheel[self.cur_bucket].clear();
            self.cursor = 0;
            if self.wheel_len > 0 {
                // Single-step advance. The window entering the horizon maps
                // to exactly the bucket just cleared.
                self.cur_start += BUCKET_WIDTH_NS;
                self.cur_bucket = (self.cur_bucket + 1) & (WHEEL_BUCKETS - 1);
            } else {
                // Wheel empty: jump straight to the overflow minimum's
                // bucket (all buckets are empty, so re-anchoring is safe).
                let &Reverse((at, _, _)) = self
                    .overflow
                    .peek()
                    .expect("non-empty queue with empty wheel");
                self.cur_start = at & !(BUCKET_WIDTH_NS - 1);
                self.cur_bucket = ((at >> WIDTH_BITS) as usize) & (WHEEL_BUCKETS - 1);
            }
            self.migrate();
            // Activate the new current bucket: it was filed append-only (and
            // may have just received migrated items), so establish its sort
            // order exactly once, now that it is about to be consumed.
            let b = self.cur_bucket;
            self.wheel[b].sort_unstable_by_key(BucketItem::key);
        }
    }

    /// Frees the popped item's slot back to the pool.
    fn take(&mut self, item: BucketItem) -> Popped {
        let slot = &mut self.slab[item.slot as usize];
        let state = std::mem::replace(
            &mut slot.state,
            SlotState::Free {
                next: self.free_head,
            },
        );
        slot.gen = slot.gen.wrapping_add(1);
        self.free_head = item.slot;
        self.len -= 1;
        match state {
            SlotState::Occupied {
                inc,
                cancelled,
                kind,
            } => {
                if cancelled {
                    self.tombstones -= 1;
                }
                Popped {
                    at: SimTime::from_nanos(item.at),
                    seq: item.seq,
                    inc,
                    cancelled,
                    kind,
                }
            }
            SlotState::Free { .. } => unreachable!("popped slot {} is free", item.slot),
        }
    }

    /// Pulls every overflow event whose bucket is now inside the horizon
    /// into the wheel. Ascending heap drain + empty target buckets keep the
    /// per-bucket sort invariant.
    fn migrate(&mut self) {
        let horizon = self.cur_start.saturating_add(HORIZON_NS);
        while let Some(&Reverse((at, seq, slot))) = self.overflow.peek() {
            if at >= horizon {
                break;
            }
            self.overflow.pop();
            let b = ((at >> WIDTH_BITS) as usize) & (WHEEL_BUCKETS - 1);
            self.wheel[b].push(BucketItem { at, seq, slot });
            self.wheel_len += 1;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn residue(&self) -> usize {
        self.tombstones
    }
}

// ---------------------------------------------------------------------------
// Reference queue
// ---------------------------------------------------------------------------

struct HeapEntry {
    at: SimTime,
    seq: u64,
    inc: u32,
    kind: EventKind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The original `BinaryHeap` scheduler, kept as the differential baseline.
///
/// Cancellation is lazy (a tombstone set consulted at pop), as it always
/// was — but the historical leak is fixed: `pending_timers` tracks which
/// tokens are still in flight, cancelling an already-fired token is a no-op
/// (nothing is inserted into `cancelled`), and popping a timer prunes its
/// token from both maps, so neither grows beyond the live timer count.
pub(crate) struct ReferenceQueue {
    heap: BinaryHeap<Reverse<HeapEntry>>, // s2g-lint: allow(event-queue) — this is the reference implementation
    cancelled: HashSet<u64>,
    /// Token → owning `(pid, inc)` for every timer still in the heap.
    pending_timers: HashMap<u64, (ProcessId, u32)>,
    next_timer: u64,
}

impl ReferenceQueue {
    pub(crate) fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(), // s2g-lint: allow(event-queue) — this is the reference implementation
            cancelled: HashSet::new(),
            pending_timers: HashMap::new(),
            next_timer: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, inc: u32, kind: EventKind) {
        self.heap.push(Reverse(HeapEntry { at, seq, inc, kind }));
    }

    pub(crate) fn push_timer(
        &mut self,
        at: SimTime,
        seq: u64,
        inc: u32,
        pid: ProcessId,
        tag: u64,
    ) -> TimerToken {
        let token = TimerToken(self.next_timer);
        self.next_timer += 1;
        self.pending_timers.insert(token.0, (pid, inc));
        self.push(at, seq, inc, EventKind::Timer { pid, token, tag });
        token
    }

    pub(crate) fn cancel(&mut self, token: TimerToken) -> Option<(ProcessId, u32)> {
        let owner = self.pending_timers.remove(&token.0)?;
        self.cancelled.insert(token.0);
        Some(owner)
    }

    /// Pops the next event only if its time is at most `limit`.
    pub(crate) fn pop_at_most(&mut self, limit: SimTime) -> Option<Popped> {
        let Reverse(next) = self.heap.peek()?;
        if next.at > limit {
            return None;
        }
        self.pop()
    }

    pub(crate) fn pop(&mut self) -> Option<Popped> {
        let Reverse(entry) = self.heap.pop()?;
        let mut cancelled = false;
        if let EventKind::Timer { token, .. } = &entry.kind {
            // Prune regardless of how the timer ends (fired, cancelled, or
            // voided by an incarnation bump) — this keeps both sets bounded.
            self.pending_timers.remove(&token.0);
            cancelled = self.cancelled.remove(&token.0);
        }
        Some(Popped {
            at: entry.at,
            seq: entry.seq,
            inc: entry.inc,
            cancelled,
            kind: entry.kind,
        })
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn residue(&self) -> usize {
        self.cancelled.len()
    }
}

// ---------------------------------------------------------------------------
// Dispatch enum
// ---------------------------------------------------------------------------

/// The scheduler's event queue: one of the two implementations above.
pub(crate) enum EventQueue {
    Calendar(CalendarQueue),
    Reference(ReferenceQueue),
}

impl EventQueue {
    pub(crate) fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            SchedulerKind::Reference => EventQueue::Reference(ReferenceQueue::new()),
        }
    }

    pub(crate) fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::Calendar(_) => SchedulerKind::Calendar,
            EventQueue::Reference(_) => SchedulerKind::Reference,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, at: SimTime, seq: u64, inc: u32, kind: EventKind) {
        match self {
            EventQueue::Calendar(q) => q.push(at, seq, inc, kind),
            EventQueue::Reference(q) => q.push(at, seq, inc, kind),
        }
    }

    #[inline]
    pub(crate) fn push_timer(
        &mut self,
        at: SimTime,
        seq: u64,
        inc: u32,
        pid: ProcessId,
        tag: u64,
    ) -> TimerToken {
        match self {
            EventQueue::Calendar(q) => q.push_timer(at, seq, inc, pid, tag),
            EventQueue::Reference(q) => q.push_timer(at, seq, inc, pid, tag),
        }
    }

    #[inline]
    pub(crate) fn cancel(&mut self, token: TimerToken) -> Option<(ProcessId, u32)> {
        match self {
            EventQueue::Calendar(q) => q.cancel(token),
            EventQueue::Reference(q) => q.cancel(token),
        }
    }

    /// Pops the next event only if its time is at most `limit` — the run
    /// loop's fused peek+pop.
    #[inline]
    pub(crate) fn pop_at_most(&mut self, limit: SimTime) -> Option<Popped> {
        match self {
            EventQueue::Calendar(q) => q.pop_at_most(limit),
            EventQueue::Reference(q) => q.pop_at_most(limit),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Reference(q) => q.len(),
        }
    }

    /// Entries retained purely for lazy deletion: cancelled-timer
    /// tombstones (calendar) or the cancelled-token set (reference).
    pub(crate) fn residue(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.residue(),
            EventQueue::Reference(q) => q.residue(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// Deterministic splitmix64 for workload generation (no external deps).
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn calendar_pops_in_at_seq_order_across_buckets() {
        let mut q = CalendarQueue::new();
        // Same-tick ties break by seq; spread across buckets and overflow.
        let ats = [5u64, 5, 70_000, 1, BUCKET_WIDTH_NS * 3, HORIZON_NS + 7, 2];
        for (seq, &at) in ats.iter().enumerate() {
            q.push(
                SimTime::from_nanos(at),
                seq as u64,
                0,
                EventKind::Start(pid(seq as u32)),
            );
        }
        let mut got = Vec::new();
        while let Some(p) = q.pop() {
            got.push((p.at.as_nanos(), p.seq));
        }
        let mut want: Vec<(u64, u64)> = ats
            .iter()
            .enumerate()
            .map(|(s, &a)| (a, s as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn calendar_peek_does_not_commit_the_wheel() {
        let mut q = CalendarQueue::new();
        // Only a far-future event: peeking must not advance cur_start, so a
        // subsequent near push still pops first.
        q.push(SimTime::from_secs(2), 0, 0, EventKind::Start(pid(0)));
        assert_eq!(q.next_at(), Some(SimTime::from_secs(2)));
        q.push(SimTime::from_nanos(10), 1, 0, EventKind::Start(pid(1)));
        assert_eq!(q.next_at(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_cancel_is_exact_and_generation_safe() {
        let mut q = CalendarQueue::new();
        let t0 = q.push_timer(SimTime::from_nanos(100), 0, 0, pid(1), 7);
        assert_eq!(q.cancel(t0), Some((pid(1), 0)));
        assert_eq!(q.cancel(t0), None, "double cancel is a no-op");
        assert_eq!(q.residue(), 1);
        let p = q.pop().unwrap();
        assert!(p.cancelled);
        assert_eq!(q.residue(), 0);
        // The slot is reused for the next timer; the stale token's
        // generation no longer matches, so it cannot cancel the new timer.
        let t1 = q.push_timer(SimTime::from_nanos(200), 1, 0, pid(2), 8);
        assert_ne!(t0, t1);
        assert_eq!(q.cancel(t0), None);
        let p = q.pop().unwrap();
        assert!(!p.cancelled, "stale token must not cancel a reused slot");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn calendar_cancel_after_fire_is_noop() {
        let mut q = CalendarQueue::new();
        let t = q.push_timer(SimTime::from_nanos(50), 0, 0, pid(1), 1);
        let p = q.pop().unwrap();
        assert!(!p.cancelled);
        assert_eq!(q.cancel(t), None);
        assert_eq!(q.residue(), 0);
    }

    #[test]
    fn calendar_slab_is_pooled() {
        let mut q = CalendarQueue::new();
        for round in 0..100u64 {
            for i in 0..8u64 {
                q.push(
                    SimTime::from_nanos(round * 1000 + i),
                    round * 8 + i,
                    0,
                    EventKind::Start(pid(i as u32)),
                );
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        assert!(
            q.slab.len() <= 8,
            "slab grew to {} despite pooling",
            q.slab.len()
        );
    }

    #[test]
    fn reference_cancel_sets_stay_bounded() {
        let mut q = ReferenceQueue::new();
        for i in 0..1000u64 {
            let t = q.push_timer(SimTime::from_nanos(i + 1), i, 0, pid(0), i);
            if i % 2 == 0 {
                q.cancel(t);
            }
            let p = q.pop().unwrap();
            assert_eq!(p.cancelled, i % 2 == 0);
            // Cancelling after the pop must not repopulate the tombstones.
            q.cancel(t);
        }
        assert_eq!(q.residue(), 0);
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[ignore = "manual profiling aid: cargo test --release -p s2g-sim raw_queue -- --ignored --nocapture"]
    fn raw_queue_throughput() {
        const LIVE: u64 = 72_000;
        const OPS: u64 = 2_000_000;
        fn delay(rng: &mut Mix) -> u64 {
            if rng.below(16) == 0 {
                200_000_000 + rng.below(300_000_000)
            } else {
                1_000_000 + rng.below(119_000_000)
            }
        }
        macro_rules! churn {
            ($q:ident) => {{
                let mut rng = Mix(7);
                let mut seq = 0u64;
                let mut tokens = Vec::new();
                for _ in 0..LIVE {
                    let d = delay(&mut rng);
                    tokens.push($q.push_timer(SimTime::from_nanos(d), seq, 0, pid(0), 0));
                    seq += 1;
                }
                for i in 0..OPS {
                    let p = $q.pop().expect("live");
                    let d = delay(&mut rng);
                    tokens[(i % LIVE) as usize] =
                        $q.push_timer(SimTime::from_nanos(p.at.as_nanos() + d), seq, 0, pid(0), 0);
                    seq += 1;
                    if i % 8 == 0 {
                        $q.cancel(tokens[rng.below(LIVE) as usize]);
                    }
                }
            }};
        }
        let mut cal = CalendarQueue::new();
        let t0 = std::time::Instant::now();
        churn!(cal);
        let cal_s = t0.elapsed().as_secs_f64();
        let mut rq = ReferenceQueue::new();
        let t0 = std::time::Instant::now();
        churn!(rq);
        let ref_s = t0.elapsed().as_secs_f64();
        println!(
            "raw queue: calendar {:.0} ops/s ({:.1} ns/op) | reference {:.0} ops/s ({:.1} ns/op) | ratio {:.2}x",
            OPS as f64 / cal_s,
            cal_s * 1e9 / OPS as f64,
            OPS as f64 / ref_s,
            ref_s * 1e9 / OPS as f64,
            ref_s / cal_s
        );
    }

    /// Randomized differential: both queues see the same interleaving of
    /// pushes, timer pushes, cancels, and pops; the popped streams must be
    /// identical in `(at, seq, cancelled)`.
    #[test]
    fn differential_pop_order_matches_reference() {
        for seed in 0..30u64 {
            let mut cal = CalendarQueue::new();
            let mut refq = ReferenceQueue::new();
            let mut rng = Mix(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
            let mut now = 0u64;
            let mut seq = 0u64;
            let mut live: Vec<(TimerToken, TimerToken)> = Vec::new();
            let mut cal_out = Vec::new();
            let mut ref_out = Vec::new();
            for _ in 0..4000 {
                match rng.below(10) {
                    0..=3 => {
                        // Delays spanning in-bucket, cross-bucket, and
                        // overflow distances.
                        let d = match rng.below(3) {
                            0 => rng.below(BUCKET_WIDTH_NS),
                            1 => rng.below(HORIZON_NS),
                            _ => HORIZON_NS + rng.below(HORIZON_NS * 4),
                        };
                        let at = SimTime::from_nanos(now + d);
                        cal.push(at, seq, 0, EventKind::Start(pid(0)));
                        refq.push(at, seq, 0, EventKind::Start(pid(0)));
                        seq += 1;
                    }
                    4..=6 => {
                        let d = rng.below(HORIZON_NS * 2);
                        let at = SimTime::from_nanos(now + d);
                        let tc = cal.push_timer(at, seq, 0, pid(1), seq);
                        let tr = refq.push_timer(at, seq, 0, pid(1), seq);
                        seq += 1;
                        live.push((tc, tr));
                    }
                    7 => {
                        if !live.is_empty() {
                            let i = rng.below(live.len() as u64) as usize;
                            let (tc, tr) = live.swap_remove(i);
                            assert_eq!(cal.cancel(tc).is_some(), refq.cancel(tr).is_some());
                        }
                    }
                    _ => {
                        let a = cal.pop();
                        let b = refq.pop();
                        match (a, b) {
                            (None, None) => {}
                            (Some(x), Some(y)) => {
                                assert_eq!(
                                    (x.at, x.seq, x.cancelled),
                                    (y.at, y.seq, y.cancelled),
                                    "seed {seed}"
                                );
                                now = x.at.as_nanos();
                                cal_out.push((x.at, x.seq));
                                ref_out.push((y.at, y.seq));
                            }
                            _ => panic!("seed {seed}: queues disagree on emptiness"),
                        }
                    }
                }
                assert_eq!(cal.len(), refq.len(), "seed {seed}");
            }
            // Drain the rest.
            loop {
                match (cal.pop(), refq.pop()) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!((x.at, x.seq, x.cancelled), (y.at, y.seq, y.cancelled));
                    }
                    _ => panic!("seed {seed}: drain length mismatch"),
                }
            }
            assert_eq!(cal_out, ref_out);
        }
    }
}
