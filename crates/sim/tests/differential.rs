//! Differential property tests: the calendar-queue scheduler must be
//! observably identical to the reference `BinaryHeap` scheduler.
//!
//! A randomized fault-heavy workload (timers at mixed horizons, message
//! chatter, cancellations, CPU slices, kills and respawns) runs once under
//! each [`SchedulerKind`]; the full trace (every handler invocation, in
//! order, with its timestamp), the final [`SimStats`], and the clock must
//! match exactly.

use s2g_sim::{
    downcast, Ctx, Message, Process, ProcessId, QueueDiag, SchedulerKind, Sim, SimDuration,
    SimStats, SimTime, TimerToken,
};

#[derive(Debug)]
struct Note {
    ttl: u64,
}
impl Message for Note {
    fn wire_size(&self) -> usize {
        32
    }
}

/// Deterministic splitmix64; the workload must not depend on anything that
/// differs between schedulers (like token values), only on this stream.
struct Mix(u64);
impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Chaos {
    id: u32,
    peers: u32,
    rng: Mix,
    tokens: Vec<TimerToken>,
    fires: u64,
}

impl Chaos {
    fn new(id: u32, peers: u32, seed: u64) -> Self {
        Chaos {
            id,
            peers,
            rng: Mix(seed ^ (u64::from(id) << 32) ^ 0xabcd_ef01),
            tokens: Vec::new(),
            fires: 0,
        }
    }

    /// Delays spanning in-bucket (< 65 µs), in-wheel (< 134 ms), and
    /// overflow-heap (up to ~800 ms) distances.
    fn delay(&mut self) -> SimDuration {
        match self.rng.below(10) {
            0..=3 => SimDuration::from_micros(1 + self.rng.below(60)),
            4..=7 => SimDuration::from_micros(100 + self.rng.below(100_000)),
            _ => SimDuration::from_millis(150 + self.rng.below(650)),
        }
    }

    fn peer(&mut self) -> ProcessId {
        ProcessId(self.rng.below(u64::from(self.peers)) as u32)
    }
}

impl Process for Chaos {
    fn name(&self) -> &str {
        "chaos"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.trace_with("chaos", || format!("start {}", self.id));
        for tag in 0..3 {
            let d = self.delay();
            let t = ctx.set_timer(d, tag);
            self.tokens.push(t);
        }
        let to = self.peer();
        ctx.send(to, Note { ttl: 2 });
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
        let note = downcast::<Note>(msg).expect("note");
        ctx.trace_with("chaos", || format!("msg ttl={} from={from}", note.ttl));
        if note.ttl > 0 {
            let to = self.peer();
            ctx.send(to, Note { ttl: note.ttl - 1 });
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.fires += 1;
        ctx.trace_with("chaos", || format!("timer tag={tag} fire={}", self.fires));
        match self.rng.below(10) {
            0..=4 => {
                let d = self.delay();
                let t = ctx.set_timer(d, tag);
                self.tokens.push(t);
            }
            5..=6 => {
                // Cancel a random stored token — possibly already fired or
                // cancelled, which must be a no-op on both schedulers.
                if !self.tokens.is_empty() {
                    let i = self.rng.below(self.tokens.len() as u64) as usize;
                    ctx.cancel_timer(self.tokens[i]);
                }
                let d = self.delay();
                let t = ctx.set_timer(d, tag);
                self.tokens.push(t);
            }
            7..=8 => {
                let to = self.peer();
                ctx.send(to, Note { ttl: 1 });
                let d = self.delay();
                self.tokens.push(ctx.set_timer(d, tag));
            }
            _ => {
                ctx.exec(SimDuration::from_micros(1 + self.rng.below(500)), tag);
            }
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        ctx.trace_with("chaos", || format!("cpu tag={tag}"));
        let d = self.delay();
        self.tokens.push(ctx.set_timer(d, tag));
    }
}

/// Runs the chaos workload under `kind`, returning the full observable
/// surface: trace, stats, final clock, and queue diagnostics.
fn run(kind: SchedulerKind, seed: u64) -> (Vec<(u64, u32, String)>, SimStats, SimTime, QueueDiag) {
    const PROCS: u32 = 12;
    let mut sim = Sim::with_scheduler(seed, kind);
    sim.set_tracing(true);
    sim.set_event_limit(2_000_000);
    for i in 0..PROCS {
        sim.spawn(Box::new(Chaos::new(i, PROCS, seed)));
    }
    let mut driver = Mix(seed ^ 0x5eed);
    let mut t = SimTime::ZERO;
    for step in 0..30u64 {
        t += SimDuration::from_millis(60);
        sim.run_until(t);
        // Fault schedule: rotate kills and respawns, deterministically.
        let victim = ProcessId((step % u64::from(PROCS)) as u32);
        if sim.is_alive(victim) && driver.below(3) != 0 {
            sim.kill(victim).expect("alive");
        } else if !sim.is_alive(victim) {
            sim.respawn(victim, Box::new(Chaos::new(victim.0, PROCS, seed ^ step)));
        }
    }
    // Respawn everything and drain the far-future tail.
    for i in 0..PROCS {
        let pid = ProcessId(i);
        if !sim.is_alive(pid) {
            sim.respawn(pid, Box::new(Chaos::new(i, PROCS, seed ^ 0x77)));
        }
    }
    sim.run_until(t + SimDuration::from_secs(3));
    let trace: Vec<(u64, u32, String)> = sim
        .trace()
        .iter()
        .map(|e| (e.at.as_nanos(), e.pid.0, e.text.clone()))
        .collect();
    (trace, sim.stats(), sim.now(), sim.queue_diag())
}

#[test]
fn calendar_matches_reference_on_randomized_fault_sweeps() {
    for seed in 0..12u64 {
        let (cal_trace, cal_stats, cal_now, cal_diag) = run(SchedulerKind::Calendar, seed);
        let (ref_trace, ref_stats, ref_now, ref_diag) = run(SchedulerKind::Reference, seed);
        assert!(
            cal_stats.events_processed > 1_000,
            "seed {seed}: workload too small to be meaningful ({} events)",
            cal_stats.events_processed
        );
        assert_eq!(
            cal_trace.len(),
            ref_trace.len(),
            "seed {seed}: trace length diverged"
        );
        for (i, (c, r)) in cal_trace.iter().zip(&ref_trace).enumerate() {
            assert_eq!(c, r, "seed {seed}: traces diverge at entry {i}");
        }
        assert_eq!(cal_stats, ref_stats, "seed {seed}: stats diverged");
        assert_eq!(cal_now, ref_now, "seed {seed}: clocks diverged");
        assert_eq!(
            cal_diag.live_events, ref_diag.live_events,
            "seed {seed}: live accounting diverged"
        );
        // Cancel bookkeeping must stay bounded by what is actually pending.
        for (kind, diag) in [("calendar", cal_diag), ("reference", ref_diag)] {
            assert!(
                diag.residue <= diag.queue_len,
                "seed {seed} {kind}: residue {} exceeds queue {}",
                diag.residue,
                diag.queue_len
            );
        }
    }
}

#[test]
fn same_seed_same_scheduler_is_reproducible() {
    let a = run(SchedulerKind::Calendar, 99);
    let b = run(SchedulerKind::Calendar, 99);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
