//! # stream2gym — fast prototyping of distributed stream processing applications
//!
//! Root façade crate: re-exports the whole workspace under one name.
//! See the README for a tour, `docs/` for the architecture and
//! fault-tolerance guides, and `examples/` for runnable pipelines.

#![warn(missing_docs)]

pub use s2g_analyze as analyze;
pub use s2g_apps as apps;
pub use s2g_broker as broker;
pub use s2g_core as core;
pub use s2g_ml as ml;
pub use s2g_net as net;
pub use s2g_proto as proto;
pub use s2g_sim as sim;
pub use s2g_spe as spe;
pub use s2g_store as store;
pub use s2g_telemetry as telemetry;
