//! Consumer-group membership: server-side sticky assignment, heartbeat
//! sessions, survivor takeover of a crashed member's partitions, and
//! generation fencing.

use std::collections::BTreeSet;

use stream2gym::broker::{
    Broker, BrokerConfig, CollectingSink, ConsumerConfig, ConsumerProcess, TopicSpec,
};
use stream2gym::core::{MonitoredSink, RunResult, Scenario, SourceSpec};
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};

const RECORDS: u64 = 400;

fn membership_cfg() -> ConsumerConfig {
    ConsumerConfig {
        group: Some("readers".into()),
        group_membership: true,
        auto_commit_interval: SimDuration::from_millis(500),
        ..ConsumerConfig::default()
    }
}

fn build(faults: Option<FaultPlan>) -> Scenario {
    let mut sc = Scenario::new("rebalance");
    sc.seed(9)
        .duration(SimTime::from_secs(30))
        .topic(TopicSpec::new("events").partitions(6));
    // A quick session sweep so the takeover happens well inside the run.
    let bcfg = BrokerConfig {
        group_session_timeout: SimDuration::from_secs(3),
        heartbeat_interval: SimDuration::from_secs(1),
        ..BrokerConfig::default()
    };
    sc.broker_with("h0", bcfg);
    sc.producer(
        "hp",
        SourceSpec::Rate {
            topic: "events".into(),
            count: RECORDS,
            interval: SimDuration::from_millis(25),
            payload: 64,
        },
        Default::default(),
    );
    for i in 0..3 {
        sc.consumer(&format!("hc{i}"), membership_cfg(), &["events"]);
    }
    if let Some(f) = faults {
        sc.faults(f);
    }
    sc
}

/// Record sequences a (still-alive) consumer stub delivered; empty when
/// the stub crashed and never came back (its sink died with it).
fn delivered_seqs(result: &RunResult, consumer: usize) -> Vec<u64> {
    let pid = result.consumer_pids[consumer];
    let Some(cp) = result.sim.process_ref::<ConsumerProcess>(pid) else {
        return Vec::new();
    };
    let monitored = cp.sink_as::<MonitoredSink>().expect("monitored");
    let sink = (monitored.inner() as &dyn std::any::Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting");
    sink.deliveries
        .iter()
        .map(|(_, _, r)| r.producer_seq)
        .collect()
}

#[test]
fn members_split_partitions_disjointly() {
    let result = build(None).run().expect("runs");
    // Every member got a non-empty, disjoint slice of the 6 partitions.
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut total = 0usize;
    for pid in &result.consumer_pids {
        let cp = result
            .sim
            .process_ref::<ConsumerProcess>(*pid)
            .expect("consumer");
        let assigned = cp.client().group_assignment();
        assert_eq!(assigned.len(), 2, "6 partitions over 3 members");
        for tp in &assigned {
            assert!(seen.insert(tp.partition), "partition owned twice");
        }
        total += assigned.len();
        assert!(cp.client().stats().group_joins >= 1);
    }
    assert_eq!(total, 6, "every partition owned");
    // Between them the members saw every record, and once the group
    // settled (all three joined within the first heartbeat intervals) the
    // disjoint assignment means no duplicates — overlapping reads are
    // possible only in the formation window, while an early joiner still
    // holds partitions a later joiner was assigned.
    let mut all: Vec<u64> = (0..3).flat_map(|i| delivered_seqs(&result, i)).collect();
    all.sort_unstable();
    let unique: BTreeSet<u64> = all.iter().copied().collect();
    assert_eq!(unique.len() as u64, RECORDS, "every record delivered");
    let dup_after_settle = all
        .windows(2)
        .filter(|w| w[0] == w[1] && w[0] >= 100)
        .count();
    assert_eq!(
        dup_after_settle, 0,
        "no duplicates once the membership settled"
    );
    // The coordinator settled at one generation bump per join.
    let broker = result
        .sim
        .process_ref::<Broker>(result.broker_pids[0])
        .expect("broker");
    assert_eq!(broker.group_coordinator().generation("readers"), 3);
    assert_eq!(broker.group_coordinator().members("readers").len(), 3);
}

#[test]
fn survivors_absorb_a_crashed_members_partitions() {
    let result = build(Some(
        FaultPlan::new().crash_process("consumer-1", SimTime::from_secs(5)),
    ))
    .run()
    .expect("runs");
    let broker = result
        .sim
        .process_ref::<Broker>(result.broker_pids[0])
        .expect("broker");
    let coord = broker.group_coordinator();
    // The dead member was evicted and its partitions reassigned.
    assert_eq!(coord.members("readers"), vec!["consumer-0", "consumer-2"]);
    assert!(coord.stats().evictions >= 1);
    let survivors: usize = [0usize, 2]
        .iter()
        .map(|i| {
            let cp = result
                .sim
                .process_ref::<ConsumerProcess>(result.consumer_pids[*i])
                .expect("consumer");
            let assigned = cp.client().group_assignment();
            assert!(
                cp.client().stats().rebalances >= 1,
                "observed the rebalance"
            );
            assigned.len()
        })
        .sum();
    assert_eq!(survivors, 6, "survivors own every partition between them");
    // Coverage: the crashed member's sink died with it, but the survivors
    // took over its partitions from the group's committed offsets — so
    // everything produced from the crash point on reached a survivor (and
    // more: the uncommitted tail before the crash is re-read).
    let crash_seq = 5_000 / 25; // crash at 5 s, one record per 25 ms
    let union: BTreeSet<u64> = [0usize, 2]
        .iter()
        .flat_map(|i| delivered_seqs(&result, *i))
        .collect();
    for seq in crash_seq..RECORDS {
        assert!(
            union.contains(&seq),
            "record {seq} went dark after takeover"
        );
    }
}

#[test]
fn respawned_member_rejoins_stickily() {
    let result = build(Some(FaultPlan::new().crash_restart(
        "consumer-1",
        SimTime::from_secs(5),
        SimDuration::from_secs(6),
    )))
    .run()
    .expect("runs");
    let broker = result
        .sim
        .process_ref::<Broker>(result.broker_pids[0])
        .expect("broker");
    let coord = broker.group_coordinator();
    assert_eq!(
        coord.members("readers"),
        vec!["consumer-0", "consumer-1", "consumer-2"],
        "the respawned stub rejoined under its stable member id"
    );
    // Balance is restored after the rejoin.
    for m in ["consumer-0", "consumer-1", "consumer-2"] {
        assert_eq!(coord.assignment("readers", m).len(), 2, "member {m}");
    }
    // Fenced commits (a zombie generation) never clobbered offsets.
    let mut union: BTreeSet<u64> = BTreeSet::new();
    for i in 0..3 {
        union.extend(delivered_seqs(&result, i));
    }
    assert_eq!(union.len() as u64, RECORDS);
}
