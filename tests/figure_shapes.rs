//! Shape assertions for every reproduced figure, at Quick scale so the
//! whole suite runs in a debug build. The full-scale sweeps live in
//! `s2g-bench` (`cargo run --release -p s2g-bench --bin figures`).

use s2g_bench::{
    broker_recovery_sweep, compaction_sweep, fig5_sweep, fig6_run, fig7a_sweep, fig7b_sweep,
    fig8_sweep, fig9_sweep, hotpath_sweep, scaling_sweep, throughput_sweep, Component, Scale,
};
use stream2gym::broker::CoordinationMode;

/// Fig. 5: every curve rises with delay, and the broker/SPE curves dominate
/// the producer/consumer curves at high delay — the paper's key finding
/// ("the impact was more prominent when the data broker and the stream
/// processing engine delays increase").
#[test]
fn fig5_broker_and_spe_links_dominate() {
    let data = fig5_sweep(&[25, 150], Scale::Quick, 42);
    let get = |c: Component, ms: u64| -> f64 {
        data.iter()
            .find(|(dc, dms, _)| *dc == c && *dms == ms)
            .map(|(_, _, v)| *v)
            .expect("swept point")
    };
    for c in Component::ALL {
        assert!(
            get(c, 150) > get(c, 25),
            "{}: latency must grow with delay ({} vs {})",
            c.label(),
            get(c, 25),
            get(c, 150)
        );
    }
    let broker = get(Component::Broker, 150);
    let spe = get(Component::Spe, 150);
    let producer = get(Component::Producer, 150);
    let consumer = get(Component::Consumer, 150);
    assert!(
        broker > producer,
        "broker link hurts more than producer link"
    );
    assert!(
        broker > consumer,
        "broker link hurts more than consumer link"
    );
    assert!(spe > producer, "SPE link hurts more than producer link");
}

/// Fig. 6: ZooKeeper mode silently loses acknowledged messages across the
/// partition; KRaft mode does not. Losses come only from the disconnected
/// leader's topic.
#[test]
fn fig6_zk_loses_kraft_does_not() {
    let zk = fig6_run(CoordinationMode::Zk, 4, Scale::Quick, 1);
    assert!(
        zk.truncated_records > 0,
        "healing must truncate the divergent suffix"
    );
    assert!(
        zk.lost_messages > 0,
        "ZooKeeper mode must silently lose messages"
    );
    // Losses confined to topic A (whose leader was disconnected): messages
    // missed by every consumer must be topic-a.
    for (topic, _, _) in zk.matrix.total_losses() {
        assert_eq!(
            topic, "topic-a",
            "only the disconnected leader's topic loses data"
        );
    }
    // Leadership cycled away and back (events 1 and 4 of Fig. 6d).
    let became: Vec<bool> = zk.leader_events.iter().map(|(_, b)| *b).collect();
    assert!(became.contains(&false), "original leader must step down");
    assert_eq!(
        became.last(),
        Some(&true),
        "preferred election must restore it"
    );

    let kraft = fig6_run(CoordinationMode::Kraft, 4, Scale::Quick, 1);
    assert_eq!(kraft.lost_messages, 0, "KRaft mode must lose nothing acked");
}

/// Fig. 6c: both topics show a latency spike (election hold for topic A,
/// retry-until-heal for topic B's disconnected producer).
#[test]
fn fig6_latency_spikes_per_topic() {
    let zk = fig6_run(CoordinationMode::Zk, 4, Scale::Quick, 2);
    let peak = |s: &[(f64, f64)]| s.iter().map(|(_, l)| *l).fold(0.0f64, f64::max);
    let typical = |s: &[(f64, f64)]| {
        let mut v: Vec<f64> = s.iter().map(|(_, l)| *l).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    for (name, series) in [("topic-a", &zk.latency_a), ("topic-b", &zk.latency_b)] {
        assert!(
            peak(series) > typical(series) * 10.0 && peak(series) > 5.0,
            "{name} must spike well above its median: peak {} median {}",
            peak(series),
            typical(series)
        );
    }
}

/// Fig. 7a: aggregate throughput scales with consumers below the core count
/// and stops scaling above it.
#[test]
fn fig7a_throughput_plateaus_at_core_count() {
    let data = fig7a_sweep(&[1, 4, 8, 16], 5);
    let t = |n: usize| {
        data.iter()
            .find(|(c, _)| *c == n)
            .map(|(_, v)| *v)
            .expect("point")
    };
    assert!(t(4) > t(1) * 2.5, "4 consumers scale: {} vs {}", t(1), t(4));
    assert!(t(8) > t(4) * 1.5, "8 consumers scale: {} vs {}", t(4), t(8));
    // Beyond the 8 cores: no significant gain (paper: "does not cause a
    // significant impact").
    assert!(
        t(16) < t(8) * 1.25,
        "16 consumers must not scale past the core count: {} vs {}",
        t(8),
        t(16)
    );
}

/// Fig. 7b: normalized runtime grows with users, overhead-dominated
/// (sub-linear), in the paper's 1.0 → ~1.6-1.9 band.
#[test]
fn fig7b_normalized_runtime_band() {
    let data = fig7b_sweep(&[20, 100], Scale::Quick, 3);
    assert_eq!(data[0].1, 1.0);
    let at_100 = data[1].1;
    assert!(
        (1.3..2.2).contains(&at_100),
        "normalized runtime at 100 users must be in the paper's band, got {at_100}"
    );
}

/// Fig. 8: the emulation and hardware backends produce near-identical
/// latency curves ("the results match almost exactly").
#[test]
fn fig8_backends_match() {
    for component in [Component::Broker, Component::Spe] {
        let data = fig8_sweep(&[50, 150], component, Scale::Quick, 42);
        for ms in [50u64, 150] {
            let emu = data
                .iter()
                .find(|(b, d, _)| *b == "stream2gym" && *d == ms)
                .map(|(_, _, v)| *v)
                .expect("point");
            let hw = data
                .iter()
                .find(|(b, d, _)| *b == "hardware" && *d == ms)
                .map(|(_, _, v)| *v)
                .expect("point");
            let gap = (emu - hw).abs() / hw;
            assert!(
                gap < 0.05,
                "backends must agree within 5% at {ms}ms, gap {gap:.3}"
            );
        }
    }
}

/// Fig. 9: CPU stays low (<60% for >90% of samples at max sites), median
/// CPU grows modestly with sites, memory grows linearly and responds to the
/// producer buffer size.
#[test]
fn fig9_resource_model_shapes() {
    let sweep32 = fig9_sweep(&[2, 10], 32 << 20, Scale::Quick, 7);
    let small = &sweep32[0];
    let large = &sweep32[1];

    // CDF claim: at 10 sites, >90% of samples below 60% CPU.
    let below = large.cpu_samples.iter().filter(|u| **u < 0.6).count();
    assert!(
        below as f64 / large.cpu_samples.len() as f64 > 0.9,
        "CPU must stay under 60% for >90% of time at 10 sites"
    );
    // Median grows with sites but stays low overall.
    assert!(
        large.cpu_median > small.cpu_median,
        "median CPU grows with sites"
    );
    assert!(large.cpu_median < 0.25, "overall CPU demand stays low");

    // Memory: linear-ish growth, and bigger producer buffers cost more.
    let sweep16 = fig9_sweep(&[2, 10], 16 << 20, Scale::Quick, 7);
    assert!(
        large.peak_mem_fraction > small.peak_mem_fraction,
        "memory grows with sites"
    );
    assert!(
        sweep32[1].peak_mem_fraction > sweep16[1].peak_mem_fraction,
        "32 MB buffers must cost more than 16 MB: {} vs {}",
        sweep32[1].peak_mem_fraction,
        sweep16[1].peak_mem_fraction
    );
}

/// Broker recovery latency: replay work grows with the pre-crash log, and
/// the unavailability window always includes the configured downtime plus a
/// positive replay phase (the durable backend's read round trips).
#[test]
fn broker_recovery_latency_grows_with_log_size() {
    let points = broker_recovery_sweep(&[100, 600], Scale::Quick, 9);
    assert_eq!(points.len(), 2);
    for p in &points {
        assert!(p.records > 0, "records were replayed");
        assert!(p.replayed_bytes > 0, "segment bytes were read back");
        assert!(p.replay_latency_s > 0.0, "replay takes simulated time");
        assert!(
            p.unavailability_s >= 1.0 + p.replay_latency_s,
            "unavailability covers downtime plus replay"
        );
    }
    let (small, large) = (&points[0], &points[1]);
    assert!(
        large.records > small.records,
        "bigger sweep point replays more records"
    );
    assert!(
        large.replayed_segments > small.replayed_segments,
        "bigger log means more segments"
    );
    assert!(
        large.replay_latency_s > small.replay_latency_s,
        "replay latency grows with log size: {} vs {}",
        large.replay_latency_s,
        small.replay_latency_s
    );
}

/// Bounded recovery (`--fig compaction`): full snapshots and raw-log replay
/// grow with history; incremental deltas and compacted replay stay
/// sub-linear (≈ flat in live data) — the acceptance shape of the
/// incremental-checkpoint + log-compaction subsystem.
#[test]
fn compaction_bounds_snapshot_bytes_and_replay() {
    let points = compaction_sweep(&[200, 1_200], Scale::Quick, 13);
    assert_eq!(points.len(), 2);
    let (small, large) = (&points[0], &points[1]);
    let history_ratio = large.history as f64 / small.history as f64; // 6x

    // Baselines grow roughly linearly with history.
    assert!(
        large.full_snapshot_bytes as f64 >= 3.0 * small.full_snapshot_bytes as f64,
        "full snapshots must grow with history: {} vs {}",
        small.full_snapshot_bytes,
        large.full_snapshot_bytes
    );
    assert!(
        large.raw_replay_records > 2 * small.raw_replay_records,
        "raw replay must grow with history: {} vs {}",
        small.raw_replay_records,
        large.raw_replay_records
    );

    // Bounded variants grow sub-linearly: far slower than the 6x history.
    let delta_growth = large.delta_snapshot_bytes as f64 / small.delta_snapshot_bytes.max(1) as f64;
    let full_growth = large.full_snapshot_bytes as f64 / small.full_snapshot_bytes.max(1) as f64;
    assert!(
        delta_growth < full_growth && delta_growth < history_ratio,
        "delta bytes must grow sub-linearly: delta x{delta_growth:.2} vs full x{full_growth:.2}"
    );
    let compacted_growth =
        large.compacted_replay_records as f64 / small.compacted_replay_records.max(1) as f64;
    assert!(
        compacted_growth < 2.0,
        "compacted replay must stay ≈ flat in live keys: {} vs {} records",
        small.compacted_replay_records,
        large.compacted_replay_records
    );
    assert!(
        large.compacted_replay_records < large.raw_replay_records / 4,
        "compaction must cut replay records: {} vs {}",
        large.compacted_replay_records,
        large.raw_replay_records
    );
    assert!(
        large.compacted_replay_s < large.raw_replay_s,
        "compaction must cut replay latency"
    );
    assert!(
        large.replay_saved_bytes > small.replay_saved_bytes,
        "cleaning savings accumulate with history"
    );
}

#[test]
fn replication_sweep_trades_latency_for_availability() {
    use s2g_bench::store_replication_sweep;
    let points = store_replication_sweep(&[1, 3], Scale::Smoke, 21);
    assert_eq!(points.len(), 2);
    let standalone = &points[0];
    let replicated = &points[1];
    assert!(standalone.checkpoints > 0 && replicated.checkpoints > 0);
    assert!(
        standalone.checkpoint_latency_s.is_finite() && replicated.checkpoint_latency_s.is_finite()
    );
    // Quorum replication makes each capture dearer...
    assert!(
        replicated.checkpoint_latency_s > standalone.checkpoint_latency_s,
        "quorum round trips must cost something: {} vs {}",
        replicated.checkpoint_latency_s,
        standalone.checkpoint_latency_s
    );
    // ...but failover beats a full store restart around the crash.
    assert!(
        replicated.unavailability_s < standalone.unavailability_s,
        "failover must shrink the durability outage: {} vs {}",
        replicated.unavailability_s,
        standalone.unavailability_s
    );
    // Only a group member resyncs an op log.
    assert_eq!(standalone.resync_ops, 0);
    assert!(replicated.resync_ops > 0);
}

/// Broker replication (`--fig broker-replication`): with a mid-run leader
/// crash, growing the replication factor at `acks=all` buys availability —
/// an RF=3 cluster elects a replica and keeps serving inside the SLO while
/// the RF=1 "cluster" is down until its only broker returns.
#[test]
fn broker_replication_availability_grows_with_rf() {
    use s2g_bench::broker_replication_sweep;
    let points = broker_replication_sweep(&[1, 3], Scale::Smoke, 27);
    assert_eq!(points.len(), 2);
    let (single, replicated) = (&points[0], &points[1]);
    assert!(
        replicated.availability_pct > single.availability_pct,
        "replication must raise availability: rf=1 {:.1}% vs rf=3 {:.1}%",
        single.availability_pct,
        replicated.availability_pct
    );
    assert!(
        replicated.unavailability_s < single.unavailability_s,
        "failover must shrink the produce outage: rf=1 {:.2}s vs rf=3 {:.2}s",
        single.unavailability_s,
        replicated.unavailability_s
    );
    // RF=1 has nowhere to move leadership; RF=3 must have elected.
    assert_eq!(single.leadership_moves, 0, "no replicas, no election");
    assert!(
        replicated.leadership_moves > 0,
        "the crash must move partition leadership to a replica"
    );
    assert!(
        replicated.produce_p99_ms.is_finite() && single.produce_p99_ms.is_finite(),
        "p99 produce latency measured at both points"
    );
}

/// Scaling: throughput is monotone non-decreasing in the parallelism
/// degree of a compute-bound keyed job, parallel configurations genuinely
/// beat the single worker, and an instance crash at higher parallelism
/// costs only the crashed instance's share.
#[test]
fn scaling_throughput_is_monotone_in_parallelism() {
    let points = scaling_sweep(&[1, 2, 4], Scale::Smoke, 33);
    assert_eq!(points.len(), 3);
    for w in points.windows(2) {
        assert!(
            w[1].throughput_rps >= w[0].throughput_rps * 0.98,
            "throughput must not drop with parallelism: p={} {:.1} vs p={} {:.1}",
            w[0].parallelism,
            w[0].throughput_rps,
            w[1].parallelism,
            w[1].throughput_rps
        );
    }
    assert!(
        points[2].throughput_rps > points[0].throughput_rps * 1.1,
        "parallelism 4 must beat parallelism 1: {:.1} vs {:.1}",
        points[2].throughput_rps,
        points[0].throughput_rps
    );
    for p in &points {
        assert!(
            p.recovery_s.is_finite() && p.recovery_s > 0.0,
            "recovery latency measured at p={}",
            p.parallelism
        );
        assert!(p.crash_throughput_rps > 0.0);
    }
    // At parallelism > 1 the crash stalls one instance's share only, so
    // the hit is bounded; at parallelism 1 it stalls the whole pipeline.
    let p4 = &points[2];
    assert!(
        p4.crash_throughput_rps >= p4.throughput_rps * 0.8,
        "a single-instance crash must not halve a 4-way job: {:.1} vs {:.1}",
        p4.crash_throughput_rps,
        p4.throughput_rps
    );
}

/// Hotpath bench (`--bench hotpath`): batching buys at least the 3x the
/// acceptance gate demands over the one-record-per-request baseline, at a
/// far lower produce p99, with the zero-copy data plane intact. These are
/// the same numbers CI's `perf-gate` job checks against the committed
/// floor file, so a regression fails here first.
#[test]
fn hotpath_batching_beats_unbatched_by_3x() {
    let points = hotpath_sweep(Scale::Smoke, 11);
    assert_eq!(points.len(), 5);
    let unbatched = points
        .iter()
        .find(|p| p.setting == "unbatched")
        .expect("baseline point");
    assert!(unbatched.records_per_sec > 0.0);
    let best = points
        .iter()
        .filter(|p| p.setting != "unbatched")
        .map(|p| p.records_per_sec)
        .fold(0.0f64, f64::max);
    assert!(
        best >= unbatched.records_per_sec * 3.0,
        "batching must buy >= 3x simulated records/s: {:.1} vs {:.1}",
        best,
        unbatched.records_per_sec
    );
    for p in &points {
        assert!(
            p.records_per_sec.is_finite() && p.records_per_sec > 0.0,
            "{}: throughput measured",
            p.setting
        );
        assert_eq!(p.shared_batch_copies, 0, "{}: zero-copy holds", p.setting);
        if p.setting != "unbatched" {
            assert!(
                p.produce_p99_ms < unbatched.produce_p99_ms,
                "{}: batched produce p99 must beat the saturated baseline",
                p.setting
            );
        }
    }
}

/// Throughput figure (`--fig throughput`): across the batching grid, big
/// batches beat small ones at the saturating offered rate, and every point
/// is measurable.
#[test]
fn throughput_grows_with_batch_size() {
    let points = throughput_sweep(Scale::Smoke, 11);
    assert!(!points.is_empty());
    for p in &points {
        assert!(
            p.records_per_sec.is_finite() && p.records_per_sec > 0.0,
            "{} B / {} ms: throughput measured",
            p.batch_max_bytes,
            p.linger_ms
        );
        assert!(p.produce_p99_ms.is_finite());
    }
    let rps_at = |bytes: usize, compression: bool| {
        points
            .iter()
            .filter(|p| p.batch_max_bytes == bytes && p.compression == compression)
            .map(|p| p.records_per_sec)
            .fold(0.0f64, f64::max)
    };
    assert!(
        rps_at(65_536, false) > rps_at(1_024, false),
        "64 KiB batches must out-run 1 KiB batches at saturation: {:.1} vs {:.1}",
        rps_at(65_536, false),
        rps_at(1_024, false)
    );
    assert!(
        rps_at(65_536, true) > rps_at(1_024, false),
        "compressed 64 KiB batches still beat small plain batches"
    );
}

/// Timeline figure: the mid-run crash leaves visible telemetry —
/// per-instance lag and throughput series with a real lag hump on the
/// crashed instance, fault/recovery markers, and schema-valid exports.
#[test]
fn timeline_figure_has_series_markers_and_trace() {
    use s2g_bench::timeline_sweep;
    use stream2gym::telemetry::validate_chrome_trace;

    let data = timeline_sweep(Scale::Smoke, 17);
    assert!(!data.lag.is_empty(), "per-instance lag series present");
    assert!(
        !data.throughput.is_empty(),
        "per-instance throughput present"
    );
    assert!(
        data.lag
            .iter()
            .any(|(_, pts)| pts.iter().any(|(_, v)| *v > 0.0)),
        "the crash backlog must register as non-zero consumer lag"
    );
    assert!(
        data.markers.iter().any(|(_, _, n)| n == "fault:crash"),
        "fault marker present"
    );
    assert!(
        data.markers
            .iter()
            .any(|(_, _, n)| n.starts_with("recovery:")),
        "recovery-phase markers present"
    );
    assert!(
        data.tidy_csv.starts_with("t_s,scope,metric,value"),
        "tidy CSV header"
    );
    let summary = validate_chrome_trace(&data.chrome_json).expect("valid Chrome trace");
    assert!(
        summary.spans > 0 && summary.instants > 0,
        "trace has spans and instants"
    );
}
