//! Worker crash/recovery: the checkpoint subsystem end to end.
//!
//! A producer streams single-word records through a broker into a stateful
//! running-count SPE job whose `(word, count)` updates land on a downstream
//! topic. Mid-stream the fault plan kills the worker and restarts it.
//!
//! * With **exactly-once** checkpointing the final per-word counts equal the
//!   no-fault baseline: state, buffered input, and offsets are restored from
//!   one consistent capture, and offsets are only committed after the
//!   pre-capture output is acknowledged.
//! * With **at-least-once** checkpointing the broker's committed offsets
//!   deliberately trail the persisted state, so recovery replays up to one
//!   checkpoint interval of records into state that already counted them:
//!   counts inflate by a bounded number of duplicates, and nothing is lost.
//!
//! The broker-bounce tests crash the *broker* instead: with a recoverable
//! (or store-backed durable) log the restarted broker replays its segments
//! and the exactly-once pipeline's output still equals the no-fault
//! baseline; without one, acknowledged records vanish with the process.

use std::any::Any;
use std::collections::BTreeMap;

use stream2gym::apps::word_count::{recovery_scenario, word_stream};
use stream2gym::broker::{CollectingSink, ConsumerProcess};
use stream2gym::core::{MonitoredSink, RunResult, Scenario};
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, CheckpointMode, Event};

const WORDS: usize = 120;
const WORD_INTERVAL_MS: u64 = 50;
const CHECKPOINT_INTERVAL: SimDuration = SimDuration::from_secs(1);
const CRASH_AT_MS: u64 = 4_300;
const DOWN_FOR_MS: u64 = 1_000;
const SEED: u64 = 23;

fn build(mode: Option<CheckpointMode>, crash: bool) -> Scenario {
    let mut sc = recovery_scenario(
        WORDS,
        SimDuration::from_millis(WORD_INTERVAL_MS),
        SimTime::from_secs(30),
        SEED,
    );
    if let Some(mode) = mode {
        sc.with_checkpointing(CheckpointCfg::new(CHECKPOINT_INTERVAL, mode));
    }
    if crash {
        sc.faults(FaultPlan::new().crash_restart(
            "wordcount",
            SimTime::from_millis(CRASH_AT_MS),
            SimDuration::from_millis(DOWN_FOR_MS),
        ));
    }
    sc
}

/// The consumer's view: highest count seen per word on the `counts` topic.
fn final_counts(result: &RunResult) -> BTreeMap<String, i64> {
    let pid = result.consumer_pids[0];
    let cp = result
        .sim
        .process_ref::<ConsumerProcess>(pid)
        .expect("consumer");
    let monitored = cp.sink_as::<MonitoredSink>().expect("monitored sink");
    let sink = (monitored.inner() as &dyn Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting sink");
    let mut counts = BTreeMap::new();
    for (_, _, rec) in &sink.deliveries {
        let e = Event::from_bytes(&rec.value).expect("SPE output decodes");
        let word = e.key.clone().expect("keyed by word");
        let n = e.value.as_int().expect("count value");
        let entry = counts.entry(word).or_insert(0);
        *entry = (*entry).max(n);
    }
    counts
}

fn ground_truth() -> BTreeMap<String, i64> {
    let mut tally = BTreeMap::new();
    for w in word_stream(WORDS, SEED) {
        *tally.entry(w).or_insert(0) += 1;
    }
    tally
}

#[test]
fn baseline_counts_every_word() {
    let result = build(Some(CheckpointMode::ExactlyOnce), false)
        .run()
        .expect("runs");
    assert_eq!(final_counts(&result), ground_truth());
    let spe = &result.report.spe["wordcount"];
    assert!(spe.checkpoints.checkpoints > 0, "checkpoints were taken");
    assert!(spe.checkpoints.snapshot_bytes > 0, "snapshots have size");
    assert!(spe.recovery.is_none(), "no crash, no recovery report");
}

#[test]
fn exactly_once_recovery_matches_baseline() {
    let result = build(Some(CheckpointMode::ExactlyOnce), true)
        .run()
        .expect("runs");
    assert_eq!(
        final_counts(&result),
        ground_truth(),
        "exactly-once recovery must reproduce the no-fault output"
    );
    let spe = &result.report.spe["wordcount"];
    let rec = spe.recovery.expect("crash recorded");
    assert_eq!(rec.crashed_at, SimTime::from_millis(CRASH_AT_MS));
    assert_eq!(
        rec.restarted_at,
        Some(SimTime::from_millis(CRASH_AT_MS + DOWN_FOR_MS))
    );
    assert!(rec.restored_at.is_some(), "state was restored");
    assert!(rec.snapshot_bytes > 0, "a snapshot was loaded");
    let latency = rec
        .recovery_latency()
        .expect("worker processed after restart");
    assert!(latency > SimDuration::ZERO);
    assert!(
        latency < SimDuration::from_secs(5),
        "recovery latency {latency}"
    );
    // The recovering worker resumed from snapshot/committed offsets, never
    // from a high-watermark reset.
    assert_eq!(spe.consumer_stats.offset_resets, 0);
    assert!(
        spe.consumer_stats.resumed_partitions >= 1,
        "positions were seeded"
    );
    assert!(
        spe.checkpoints.checkpoints > 0,
        "post-restart checkpoints continue"
    );
}

#[test]
fn at_least_once_recovery_duplicates_are_bounded() {
    let result = build(Some(CheckpointMode::AtLeastOnce), true)
        .run()
        .expect("runs");
    let base = ground_truth();
    let alo = final_counts(&result);
    assert_eq!(
        alo.keys().collect::<Vec<_>>(),
        base.keys().collect::<Vec<_>>(),
        "no word lost"
    );
    let mut excess_total = 0;
    for (word, n) in &alo {
        let b = base[word];
        assert!(*n >= b, "word `{word}` lost occurrences: {n} < {b}");
        excess_total += n - b;
    }
    // Replay covers at most the records between the lagging commit and the
    // crash: two checkpoint intervals at one record per WORD_INTERVAL_MS,
    // plus slack for in-flight batches.
    let bound = (2 * CHECKPOINT_INTERVAL.as_millis() / WORD_INTERVAL_MS + 10) as i64;
    assert!(
        excess_total > 0,
        "crash between checkpoints must replay something"
    );
    assert!(
        excess_total <= bound,
        "duplicates {excess_total} exceed bound {bound}"
    );

    let spe = &result.report.spe["wordcount"];
    assert_eq!(
        spe.consumer_stats.offset_resets, 0,
        "resume came from committed offsets"
    );
    assert!(
        spe.consumer_stats.resumed_partitions >= 1,
        "broker offset fetch resumed positions"
    );
    assert!(spe.recovery.expect("crash recorded").restored_at.is_some());
}

#[test]
fn durable_backend_recovery_pays_restore_round_trip() {
    use stream2gym::store::StoreConfig;
    let mut sc = build(None, true);
    sc.store("h6", StoreConfig::default());
    sc.with_durable_checkpointing(CheckpointCfg::exactly_once(CHECKPOINT_INTERVAL), "h6");
    let result = sc.run().expect("runs");
    assert_eq!(
        final_counts(&result),
        ground_truth(),
        "durable exactly-once recovery must reproduce the no-fault output"
    );
    let spe = &result.report.spe["wordcount"];
    let rec = spe.recovery.expect("crash recorded");
    // The durable backend restores via a store read round trip, so the
    // restore completes strictly after the restart.
    let restore = rec.restore_latency().expect("restored");
    assert!(
        restore > SimDuration::ZERO,
        "store round trip takes simulated time"
    );
    assert!(rec.snapshot_bytes > 0);
    assert_eq!(spe.consumer_stats.offset_resets, 0);
    // Snapshots live in the store, not the in-memory handle.
    assert!(result.checkpoint_snapshots.borrow().is_empty());
}

#[test]
fn durable_backend_retries_lost_store_rpcs() {
    use stream2gym::net::LinkSpec;
    use stream2gym::store::StoreConfig;
    // A 35%-lossy access link to the store host drops snapshot Puts, their
    // acks, and restore Gets; the worker's retry timer must re-issue them
    // until they land, and exactly-once recovery must still be exact.
    let mut sc = build(None, true);
    sc.store("h6", StoreConfig::default());
    sc.host_link(
        "h6",
        LinkSpec::new()
            .latency(SimDuration::from_millis(2))
            .loss_pct(35.0),
    );
    sc.with_durable_checkpointing(CheckpointCfg::exactly_once(CHECKPOINT_INTERVAL), "h6");
    let result = sc.run().expect("runs");
    assert_eq!(
        final_counts(&result),
        ground_truth(),
        "retried durable checkpointing must still recover exactly"
    );
    // The store host's link carries only checkpoint traffic, so observed
    // drops prove the retry path actually fired.
    assert!(
        result.report.sim_stats.messages_dropped > 0,
        "the lossy link must have dropped checkpoint RPCs"
    );
    let spe = &result.report.spe["wordcount"];
    assert!(
        spe.checkpoints.checkpoints > 0,
        "persists eventually succeed"
    );
    let rec = spe.recovery.expect("crash recorded");
    assert!(rec.restored_at.is_some(), "restore survives lost RPCs");
    assert!(rec.snapshot_bytes > 0);
}

const BROKER_CRASH_AT_MS: u64 = 3_700;
const BROKER_DOWN_FOR_MS: u64 = 1_500;

/// The broker-bounce scenario: exactly-once word count, broker 0 crashed
/// mid-run and restarted, with the chosen log-durability flavor.
fn build_broker_bounce(durable_store: bool, down_for_ms: u64) -> Scenario {
    use stream2gym::store::StoreConfig;
    let mut sc = build(Some(CheckpointMode::ExactlyOnce), false);
    if durable_store {
        sc.store("h6", StoreConfig::default());
        sc.with_durable_broker("h6");
    } else {
        sc.with_recoverable_broker();
    }
    sc.faults(FaultPlan::new().crash_restart_broker(
        0,
        SimTime::from_millis(BROKER_CRASH_AT_MS),
        SimDuration::from_millis(down_for_ms),
    ));
    sc
}

#[test]
fn exactly_once_survives_broker_bounce() {
    let result = build_broker_bounce(false, BROKER_DOWN_FOR_MS)
        .run()
        .expect("runs");
    assert_eq!(
        final_counts(&result),
        ground_truth(),
        "broker bounce with a recoverable log must not change the output"
    );
    let b = &result.report.brokers[0];
    let rec = b.recovery.expect("broker crash recorded");
    assert_eq!(rec.crashed_at, SimTime::from_millis(BROKER_CRASH_AT_MS));
    assert_eq!(
        rec.restarted_at,
        Some(SimTime::from_millis(
            BROKER_CRASH_AT_MS + BROKER_DOWN_FOR_MS
        ))
    );
    assert!(rec.recovered_at.is_some(), "log replay completed");
    assert!(rec.replayed_records > 0, "pre-crash records were replayed");
    let unavailability = rec.unavailability().expect("recovered");
    assert!(unavailability >= SimDuration::from_millis(BROKER_DOWN_FOR_MS));
    // The worker never crashed and never reset: it resumed against the
    // replayed log from its in-memory positions.
    let spe = &result.report.spe["wordcount"];
    assert_eq!(spe.consumer_stats.offset_resets, 0);
    // Producer retries rode out the downtime; dedup kept the log exact.
    assert_eq!(
        result.report.producers[0].stats.acked, WORDS as u64,
        "every word eventually acknowledged"
    );
}

#[test]
fn broker_bounce_past_session_timeout_recovers() {
    // Eight seconds of downtime exceeds the controller session timeout
    // (6 s): the broker is fenced, its partitions go offline (ISR keeps the
    // dead leader as the only eligible candidate), and re-registration
    // re-elects it. Output must still equal the baseline.
    let result = build_broker_bounce(false, 8_000).run().expect("runs");
    assert_eq!(final_counts(&result), ground_truth());
    let rec = result.report.brokers[0].recovery.expect("crash recorded");
    assert!(rec.recovered_at.is_some());
}

#[test]
fn durable_broker_bounce_pays_replay_round_trips() {
    let result = build_broker_bounce(true, BROKER_DOWN_FOR_MS)
        .run()
        .expect("runs");
    assert_eq!(
        final_counts(&result),
        ground_truth(),
        "store-backed durable broker log must preserve the output exactly"
    );
    let b = &result.report.brokers[0];
    assert!(b.stats.log_flushes > 0, "post-restart flushes continue");
    let rec = b.recovery.expect("broker crash recorded");
    // The durable backend replays via store read round trips, so recovery
    // completes strictly after the restart instant.
    let replay = rec.replay_latency().expect("replayed");
    assert!(replay > SimDuration::ZERO, "store round trips take time");
    assert!(rec.replayed_bytes > 0);
    assert!(rec.replayed_segments > 0);
    // Snapshot-style evidence the log really went through the store: the
    // words topic holds exactly the produced records, no loss and no dups.
    let broker = result
        .sim
        .process_ref::<stream2gym::broker::Broker>(result.broker_pids[0])
        .expect("broker");
    let words_log = broker
        .log(&stream2gym::proto::TopicPartition::new("words", 0))
        .expect("words log");
    assert_eq!(words_log.log_end().value(), WORDS as u64);
}

#[test]
fn broker_bounce_without_durability_loses_the_log() {
    // Same bounce, no log backend: the restarted broker comes back empty.
    // Records acknowledged before the crash are gone from the log, and the
    // final words log holds only what was produced (or retried) afterwards.
    let mut sc = build(Some(CheckpointMode::ExactlyOnce), false);
    sc.faults(FaultPlan::new().crash_restart_broker(
        0,
        SimTime::from_millis(BROKER_CRASH_AT_MS),
        SimDuration::from_millis(BROKER_DOWN_FOR_MS),
    ));
    let result = sc.run().expect("runs");
    let broker = result
        .sim
        .process_ref::<stream2gym::broker::Broker>(result.broker_pids[0])
        .expect("broker");
    let words_end = broker
        .log(&stream2gym::proto::TopicPartition::new("words", 0))
        .map(|l| l.log_end().value())
        .unwrap_or(0);
    assert!(
        words_end < WORDS as u64,
        "without a log backend the pre-crash suffix must be lost, got {words_end}"
    );
    let rec = result.report.brokers[0].recovery.expect("crash recorded");
    assert_eq!(rec.replayed_records, 0, "nothing to replay");
    assert!(
        rec.recovered_at.is_none(),
        "no replay phase without a backend"
    );
}

#[test]
fn exactly_once_recovery_with_incremental_checkpoints_matches_baseline() {
    // Same worker crash as `exactly_once_recovery_matches_baseline`, but
    // captures after the first base ship only dirty keys/windows. The
    // chained restore (base + deltas) must still reproduce the no-fault
    // output exactly.
    let mut sc = build(None, true);
    sc.with_incremental_checkpointing(CheckpointCfg::exactly_once(CHECKPOINT_INTERVAL), 4);
    let result = sc.run().expect("runs");
    assert_eq!(
        final_counts(&result),
        ground_truth(),
        "incremental exactly-once recovery must reproduce the no-fault output"
    );
    let spe = &result.report.spe["wordcount"];
    assert!(
        spe.checkpoints.delta_checkpoints > 0,
        "deltas were persisted"
    );
    assert!(spe.checkpoints.full_checkpoints > 0, "a base exists");
    assert!(
        spe.checkpoints.delta_bytes / spe.checkpoints.delta_checkpoints
            < spe.checkpoints.last_full_bytes,
        "mean delta is smaller than a full snapshot"
    );
    let rec = spe.recovery.expect("crash recorded");
    assert!(rec.restored_at.is_some());
    assert!(rec.snapshot_bytes > 0);
    assert_eq!(spe.consumer_stats.offset_resets, 0);
}

#[test]
fn exactly_once_survives_crashes_with_compaction_and_incremental_enabled() {
    // The acceptance gate: both bounded-recovery features on, worker crash
    // AND broker bounce in one run, output still equals the baseline.
    let mut sc = build(None, false);
    sc.with_incremental_checkpointing(CheckpointCfg::exactly_once(CHECKPOINT_INTERVAL), 4);
    sc.with_recoverable_broker();
    sc.with_log_compaction();
    sc.faults(
        FaultPlan::new()
            .crash_restart(
                "wordcount",
                SimTime::from_millis(CRASH_AT_MS),
                SimDuration::from_millis(DOWN_FOR_MS),
            )
            .crash_restart_broker(
                0,
                // After the 10 s cleaner pass, so the pre-crash broker has
                // compacted (and flushed) before dying.
                SimTime::from_millis(12_000),
                SimDuration::from_millis(1_200),
            ),
    );
    let result = sc.run().expect("runs");
    assert_eq!(
        final_counts(&result),
        ground_truth(),
        "compaction + incremental checkpoints must not change the output"
    );
    let spe = &result.report.spe["wordcount"];
    assert!(spe.checkpoints.delta_checkpoints > 0);
    let b = &result.report.brokers[0];
    let rec = b.recovery.expect("broker crash recorded");
    assert!(rec.recovered_at.is_some(), "broker replayed and resumed");
    // The pre-crash cleaner compacted the keyed counts topic and flushed
    // the cleaned manifest, so the restart replays live data only. (The
    // pre-crash incarnation's stats died with its process; the savings it
    // banked survive in the recovered meta blob.)
    assert!(
        rec.replay_saved_bytes > 0,
        "pre-crash cleaning reduced the replay bill"
    );
    assert!(
        rec.replayed_records < 2 * WORDS as u64,
        "replay is bounded by live data, got {}",
        rec.replayed_records
    );
}

#[test]
fn producer_stub_crash_restart_converges_without_loss_or_duplicates() {
    // Kill the producer stub itself (the open ROADMAP item): its buffered
    // records and source position die with the process. The respawn keeps
    // the same producer id and epoch and replays the source from record
    // zero; broker-side idempotent dedup acknowledges the already-appended
    // prefix without a second copy, so the pipeline output converges to the
    // no-fault baseline.
    let mut sc = build(Some(CheckpointMode::ExactlyOnce), false);
    sc.faults(FaultPlan::new().crash_restart(
        "producer-0",
        SimTime::from_millis(2_500),
        SimDuration::from_millis(1_000),
    ));
    let result = sc.run().expect("runs");
    assert_eq!(
        final_counts(&result),
        ground_truth(),
        "producer replay + broker dedup must converge to the baseline"
    );
    let p = &result.report.producers[0];
    let rec = p.recovery.expect("stub crash recorded");
    assert_eq!(rec.crashed_at, SimTime::from_millis(2_500));
    assert_eq!(rec.restarted_at, Some(SimTime::from_millis(3_500)));
    assert_eq!(
        p.stats.acked, WORDS as u64,
        "the respawned incarnation re-sent and had every word acknowledged"
    );
    // The broker filtered the replayed prefix instead of appending twice.
    let broker = result
        .sim
        .process_ref::<stream2gym::broker::Broker>(result.broker_pids[0])
        .expect("broker");
    assert!(broker.stats().duplicates_filtered > 0, "dedup engaged");
    let words_log = broker
        .log(&stream2gym::proto::TopicPartition::new("words", 0))
        .expect("words log");
    assert_eq!(
        words_log.log_end().value(),
        WORDS as u64,
        "no record lost, none duplicated"
    );
}

#[test]
fn consumer_stub_crash_restart_resumes_from_committed_offsets() {
    use stream2gym::broker::ConsumerConfig;
    // A grouped consumer stub with auto-commit is killed mid-run; the
    // respawn fetches the group's committed positions and resumes there.
    let mut sc = recovery_scenario(
        WORDS,
        SimDuration::from_millis(WORD_INTERVAL_MS),
        SimTime::from_secs(30),
        SEED,
    );
    sc.with_checkpointing(CheckpointCfg::exactly_once(CHECKPOINT_INTERVAL));
    // Replace the default consumer wiring by adding a grouped stub; the
    // scenario keeps both, and we crash the grouped one (index 1).
    sc.consumer(
        "h5",
        ConsumerConfig {
            group: Some("sink".into()),
            auto_commit_interval: SimDuration::from_millis(500),
            ..ConsumerConfig::default()
        },
        &["counts"],
    );
    sc.faults(FaultPlan::new().crash_restart(
        "consumer-1",
        SimTime::from_millis(4_000),
        SimDuration::from_millis(1_000),
    ));
    let result = sc.run().expect("runs");
    let c = &result.report.consumers[1];
    let rec = c.recovery.expect("stub crash recorded");
    assert_eq!(rec.restarted_at, Some(SimTime::from_millis(5_000)));
    assert!(
        c.stats.resumed_partitions >= 1,
        "respawn resumed from the group's committed offsets"
    );
    assert_eq!(
        c.stats.offset_resets, 0,
        "no high-watermark reset on the resume path"
    );
    // The un-crashed consumer still observed the full baseline output.
    assert_eq!(final_counts(&result), ground_truth());
}

#[test]
fn crash_without_checkpointing_replays_everything() {
    // Without checkpointing there are no committed offsets: the respawned
    // worker restarts from offset zero and re-processes the entire topic.
    // The counts eventually converge, but the downstream topic shows the
    // unbounded replay — far more duplicate emissions than the bounded
    // at-least-once window allows.
    let result = build(None, true).run().expect("runs");
    let emissions = result.monitor.borrow().for_topic("counts").count();
    let alo_bound = (2 * CHECKPOINT_INTERVAL.as_millis() / WORD_INTERVAL_MS + 10) as usize;
    assert!(
        emissions > WORDS + alo_bound,
        "full replay must exceed the checkpointed duplicate bound: {emissions} emissions"
    );
    let rec = result.report.spe["wordcount"]
        .recovery
        .expect("crash recorded");
    assert_eq!(
        rec.snapshot_bytes, 0,
        "nothing to restore without checkpointing"
    );
    assert!(rec.restored_at.is_none());
    // Restart metrics are recorded even without checkpointing.
    assert_eq!(
        rec.restarted_at,
        Some(SimTime::from_millis(CRASH_AT_MS + DOWN_FOR_MS))
    );
    assert!(
        rec.recovery_latency().is_some(),
        "first post-restart batch is tracked"
    );
}
