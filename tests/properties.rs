//! Property-style tests over the core invariants.
//!
//! The offline build environment has no `proptest`, so each property runs as
//! a seeded randomized sweep: many random cases drawn from the workspace's
//! deterministic [`StdRng`], so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stream2gym::broker::PartitionLog;
use stream2gym::net::{LinkSpec, Network, Topology};
use stream2gym::proto::{LeaderEpoch, Offset, Record};
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{Event, Operator, Value, WindowAggregate, WindowAssigner};

const CASES: usize = 256;

fn arb_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn arb_value(rng: &mut StdRng, depth: u32) -> Value {
    let leaf_only = depth == 0;
    let pick = if leaf_only {
        rng.gen_range(0..5)
    } else {
        rng.gen_range(0..7)
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0..2) == 1),
        2 => Value::Int(rng.gen_range(i64::MIN..i64::MAX)),
        3 => {
            let f = rng.gen_range(-1.0e12..1.0e12);
            Value::Float(f)
        }
        4 => Value::Str(arb_string(rng, 24)),
        5 => {
            let n = rng.gen_range(0..4);
            Value::List((0..n).map(|_| arb_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4);
            Value::Map(
                (0..n)
                    .map(|_| (arb_string(rng, 6), arb_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// The event codec round-trips every value shape exactly.
#[test]
fn event_codec_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for case in 0..CASES {
        let value = arb_value(&mut rng, 3);
        let key = if rng.gen_range(0..2) == 1 {
            Some(arb_string(&mut rng, 8))
        } else {
            None
        };
        let ts = rng.gen_range(0u64..1_000_000_000);
        let origin = rng.gen_range(0u64..1_000_000_000);
        let mut e =
            Event::new(value, SimTime::from_nanos(ts)).with_origin(SimTime::from_nanos(origin));
        e.key = key;
        let back = Event::from_bytes(&e.to_bytes()).expect("round trip");
        assert_eq!(back.key, e.key, "case {case}");
        assert_eq!(back.ts, e.ts, "case {case}");
        assert_eq!(back.origin, e.origin, "case {case}");
        assert_eq!(back.value, e.value, "case {case}");
    }
}

/// Windowed counting equals batch recomputation: for any event times, the
/// per-(window, key) counts emitted by the operator (after flush) match a
/// direct group-by.
#[test]
fn window_count_equals_batch_recount() {
    let mut rng = StdRng::seed_from_u64(0x517D0);
    for case in 0..CASES {
        let n = rng.gen_range(1..120usize);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..120_000)).collect();
        let keys: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4u8)).collect();
        let width = SimDuration::from_secs(10);
        let mut op = WindowAggregate::count("wc", WindowAssigner::Tumbling(width));
        let events: Vec<Event> = (0..n)
            .map(|i| {
                Event::new(Value::Int(1), SimTime::from_millis(times[i]))
                    .with_key(format!("k{}", keys[i]))
            })
            .collect();
        let mut emitted = op.process(SimTime::ZERO, events.clone());
        emitted.extend(op.flush(SimTime::ZERO));

        use std::collections::BTreeMap;
        let mut expected: BTreeMap<(u64, String), i64> = BTreeMap::new();
        for i in 0..n {
            let w = (times[i] * 1_000_000) / width.as_nanos() * width.as_nanos();
            *expected.entry((w, format!("k{}", keys[i]))).or_insert(0) += 1;
        }
        let mut got: BTreeMap<(u64, String), i64> = BTreeMap::new();
        for e in &emitted {
            let start = e.ts.as_nanos() - width.as_nanos();
            got.insert((start, e.key.clone().unwrap()), e.value.as_int().unwrap());
        }
        assert_eq!(got, expected, "case {case}");
    }
}

/// Partition-log truncation always preserves a prefix: after truncating to
/// any offset, the remaining log is exactly the old log's prefix and the
/// high watermark never exceeds the log end.
#[test]
fn log_truncation_preserves_prefix() {
    let mut rng = StdRng::seed_from_u64(0x106);
    for case in 0..CASES {
        let n = rng.gen_range(1..60usize);
        let cut = rng.gen_range(0u64..80);
        let hw = rng.gen_range(0u64..80);
        let mut log = PartitionLog::new();
        for i in 0..n {
            log.append(
                LeaderEpoch((i / 10) as u64),
                Record::keyless(format!("v{i}"), SimTime::ZERO),
            );
        }
        let before: Vec<String> = log
            .read(Offset::ZERO, n, false)
            .iter()
            .map(|r| r.value_utf8())
            .collect();
        log.advance_high_watermark(Offset(hw.min(n as u64)));
        log.truncate_to(Offset(cut));
        let after: Vec<String> = log
            .read(Offset::ZERO, n, false)
            .iter()
            .map(|r| r.value_utf8())
            .collect();
        let keep = (cut as usize).min(n);
        assert_eq!(&after[..], &before[..keep], "case {case}");
        assert!(log.high_watermark() <= log.log_end(), "case {case}");
    }
}

/// Routing reaches every host pair on arbitrary connected star-of-stars
/// topologies with the expected hop counts.
#[test]
fn routing_connects_all_pairs() {
    let mut rng = StdRng::seed_from_u64(0x2072);
    for _case in 0..32 {
        let arms = rng.gen_range(1..5usize);
        let per_arm = rng.gen_range(1..4usize);
        let lat_ms = rng.gen_range(1u64..20);
        let mut topo = Topology::new();
        topo.add_switch("hub").unwrap();
        let mut hosts = Vec::new();
        for a in 0..arms {
            let sw = format!("sw{a}");
            topo.add_switch(sw.as_str()).unwrap();
            topo.add_link(&sw, "hub", LinkSpec::new().latency_ms(lat_ms))
                .unwrap();
            for h in 0..per_arm {
                let host = format!("h{a}x{h}");
                topo.add_host(host.as_str()).unwrap();
                topo.add_link(&host, &sw, LinkSpec::new().latency_ms(lat_ms))
                    .unwrap();
                hosts.push(host);
            }
        }
        let net = Network::new(topo);
        for a in &hosts {
            for b in &hosts {
                if a == b {
                    continue;
                }
                let na = net.topology().lookup(a).unwrap();
                let nb = net.topology().lookup(b).unwrap();
                let route = net.route_between(na, nb);
                assert!(route.is_some(), "no route {a} -> {b}");
                // Same arm: 2 hops; across arms: 4 hops.
                let hops = route.unwrap().len();
                assert!(hops == 2 || hops == 4, "unexpected hop count {hops}");
            }
        }
    }
}
