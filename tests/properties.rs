//! Property-based tests over the core invariants.

use proptest::prelude::*;

use stream2gym::broker::PartitionLog;
use stream2gym::net::{LinkSpec, Network, Topology};
use stream2gym::proto::{LeaderEpoch, Offset, Record};
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{Event, Operator, Value, WindowAggregate, WindowAssigner};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        "[a-z ]{0,24}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Value::Map),
        ]
    })
}

proptest! {
    /// The event codec round-trips every value shape exactly.
    #[test]
    fn event_codec_round_trips(value in arb_value(), key in proptest::option::of("[a-z]{1,8}"),
                               ts in 0u64..1_000_000_000, origin in 0u64..1_000_000_000) {
        let mut e = Event::new(value, SimTime::from_nanos(ts)).with_origin(SimTime::from_nanos(origin));
        e.key = key;
        let back = Event::from_bytes(&e.to_bytes()).expect("round trip");
        prop_assert_eq!(back.key, e.key);
        prop_assert_eq!(back.ts, e.ts);
        prop_assert_eq!(back.origin, e.origin);
        prop_assert_eq!(back.value, e.value);
    }

    /// Windowed counting equals batch recomputation: for any event times,
    /// the per-(window, key) counts emitted by the operator (after flush)
    /// match a direct group-by.
    #[test]
    fn window_count_equals_batch_recount(times in prop::collection::vec(0u64..120_000, 1..120),
                                         keys in prop::collection::vec(0u8..4, 1..120)) {
        let width = SimDuration::from_secs(10);
        let mut op = WindowAggregate::count("wc", WindowAssigner::Tumbling(width));
        let n = times.len().min(keys.len());
        let events: Vec<Event> = (0..n)
            .map(|i| {
                Event::new(Value::Int(1), SimTime::from_millis(times[i]))
                    .with_key(format!("k{}", keys[i]))
            })
            .collect();
        let mut emitted = op.process(SimTime::ZERO, events.clone());
        emitted.extend(op.flush(SimTime::ZERO));

        use std::collections::BTreeMap;
        let mut expected: BTreeMap<(u64, String), i64> = BTreeMap::new();
        for i in 0..n {
            let w = (times[i] * 1_000_000) / width.as_nanos() * width.as_nanos();
            *expected.entry((w, format!("k{}", keys[i]))).or_insert(0) += 1;
        }
        let mut got: BTreeMap<(u64, String), i64> = BTreeMap::new();
        for e in &emitted {
            let start = e.ts.as_nanos() - width.as_nanos();
            got.insert((start, e.key.clone().unwrap()), e.value.as_int().unwrap());
        }
        prop_assert_eq!(got, expected);
    }

    /// Partition-log truncation always preserves a prefix: after truncating
    /// to any offset, the remaining log is exactly the old log's prefix and
    /// the high watermark never exceeds the log end.
    #[test]
    fn log_truncation_preserves_prefix(n in 1usize..60, cut in 0u64..80, hw in 0u64..80) {
        let mut log = PartitionLog::new();
        for i in 0..n {
            log.append(LeaderEpoch((i / 10) as u64), Record::keyless(format!("v{i}"), SimTime::ZERO));
        }
        let before: Vec<String> =
            log.read(Offset::ZERO, n, false).iter().map(|r| r.value_utf8()).collect();
        log.advance_high_watermark(Offset(hw.min(n as u64)));
        log.truncate_to(Offset(cut));
        let after: Vec<String> =
            log.read(Offset::ZERO, n, false).iter().map(|r| r.value_utf8()).collect();
        let keep = (cut as usize).min(n);
        prop_assert_eq!(&after[..], &before[..keep]);
        prop_assert!(log.high_watermark() <= log.log_end());
    }

    /// Routing reaches every host pair on arbitrary connected star-of-stars
    /// topologies, and delivery latency is at least the sum of link
    /// latencies on the path.
    #[test]
    fn routing_connects_all_pairs(arms in 1usize..5, per_arm in 1usize..4, lat_ms in 1u64..20) {
        let mut topo = Topology::new();
        topo.add_switch("hub").unwrap();
        let mut hosts = Vec::new();
        for a in 0..arms {
            let sw = format!("sw{a}");
            topo.add_switch(sw.as_str()).unwrap();
            topo.add_link(&sw, "hub", LinkSpec::new().latency_ms(lat_ms)).unwrap();
            for h in 0..per_arm {
                let host = format!("h{a}x{h}");
                topo.add_host(host.as_str()).unwrap();
                topo.add_link(&host, &sw, LinkSpec::new().latency_ms(lat_ms)).unwrap();
                hosts.push(host);
            }
        }
        let net = Network::new(topo);
        for a in &hosts {
            for b in &hosts {
                if a == b {
                    continue;
                }
                let na = net.topology().lookup(a).unwrap();
                let nb = net.topology().lookup(b).unwrap();
                let route = net.route_between(na, nb);
                prop_assert!(route.is_some(), "no route {a} -> {b}");
                // Same arm: 2 hops; across arms: 4 hops.
                let hops = route.unwrap().len();
                prop_assert!(hops == 2 || hops == 4, "unexpected hop count {hops}");
            }
        }
    }
}
