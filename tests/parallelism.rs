//! Partitioned parallel stream jobs: keyed shuffles, static key-group
//! ownership, exactly-once under instance crashes, and rescale-aware
//! restores.
//!
//! The acceptance gates:
//!
//! * a `parallelism(4)` job's merged output equals the sequential run's
//!   (keyed and windowed state);
//! * with transactional sinks, crashing one instance mid-epoch leaves the
//!   committed sink output equivalent to the fault-free parallel run —
//!   identical record-byte multiset and identical per-key update order
//!   (the global interleaving across four independent sink producers is a
//!   timing artifact, not a correctness property);
//! * a rescale N→M restart redistributes every key group: the final keyed
//!   state matches the fault-free run's exactly.

use std::collections::BTreeMap;

use stream2gym::apps::word_count::{running_count_plan, word_stream};
use stream2gym::broker::{CollectingSink, ConsumerProcess, TopicSpec};
use stream2gym::core::{MonitoredSink, RunResult, Scenario, SpeJobSpec, SpeSinkSpec};
use stream2gym::net::{FaultPlan, LinkSpec};
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, Event, Plan, SpeConfig, Value};

const WORDS: usize = 160;
const SEED: u64 = 77;

fn base_scenario(name: &str, parallelism: usize) -> Scenario {
    let mut sc = Scenario::new(name);
    sc.seed(SEED)
        .duration(SimTime::from_secs(30))
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
        .topic(TopicSpec::new("words").partitions(8))
        .topic(TopicSpec::new("counts"));
    sc.broker("h2");
    sc.producer(
        "h1",
        stream2gym::core::SourceSpec::Items {
            topic: "words".into(),
            items: word_stream(WORDS, SEED),
            interval: SimDuration::from_millis(40),
        },
        Default::default(),
    );
    let cfg = SpeConfig {
        batch_interval: SimDuration::from_millis(250),
        scheduling_overhead: SimDuration::from_millis(20),
        startup_cpu: SimDuration::from_millis(200),
        ..SpeConfig::default()
    };
    let mut job = SpeJobSpec::new(
        "wc",
        vec!["words".into()],
        running_count_plan,
        SpeSinkSpec::Topic("counts".into()),
        cfg,
    );
    if parallelism > 1 {
        job = job.parallelism(parallelism);
    }
    sc.spe_job("h3", job);
    sc.consumer("h5", Default::default(), &["counts"]);
    sc
}

/// Every record value the consumer observed on the sink topic, in delivery
/// order.
fn sink_bytes(result: &RunResult) -> Vec<Vec<u8>> {
    let pid = result.consumer_pids[0];
    let cp = result
        .sim
        .process_ref::<ConsumerProcess>(pid)
        .expect("consumer");
    let monitored = cp.sink_as::<MonitoredSink>().expect("monitored sink");
    let sink = (monitored.inner() as &dyn std::any::Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting sink");
    sink.deliveries
        .iter()
        .map(|(_, _, rec)| rec.value.to_vec())
        .collect()
}

/// Highest count per word the consumer saw — the final keyed state.
fn final_counts(result: &RunResult) -> BTreeMap<String, i64> {
    let mut counts = BTreeMap::new();
    for value in sink_bytes(result) {
        let e = Event::from_bytes(&value).expect("SPE output decodes");
        let word = e.key.clone().expect("keyed by word");
        let n = e.value.as_int().expect("count value");
        let entry = counts.entry(word).or_insert(0);
        *entry = (*entry).max(n);
    }
    counts
}

/// Per-key sequences of emitted count values, preserving each key's update
/// order. Exactly-once shows as the gapless sequence `1, 2, ..., n` per
/// key: a duplicate would repeat a value, a loss would skip one.
fn per_key_count_sequences(bytes: &[Vec<u8>]) -> BTreeMap<String, Vec<i64>> {
    let mut map: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for b in bytes {
        let e = Event::from_bytes(b).expect("decodes");
        map.entry(e.key.unwrap_or_default())
            .or_default()
            .push(e.value.as_int().expect("count value"));
    }
    map
}

/// The multiset of `(key, event-time)` pairs on the sink — one entry per
/// counted input record (input times are unique), so equality across runs
/// means every record was counted exactly once. Cross-partition arrival
/// order is a timing artifact (keyless production to 8 partitions has no
/// global order), so this deliberately ignores delivery order.
fn counted_inputs(bytes: &[Vec<u8>]) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = bytes
        .iter()
        .map(|b| {
            let e = Event::from_bytes(b).expect("decodes");
            (e.key.unwrap_or_default(), e.ts.as_nanos())
        })
        .collect();
    v.sort();
    v
}

fn ground_truth() -> BTreeMap<String, i64> {
    let mut tally = BTreeMap::new();
    for w in word_stream(WORDS, SEED) {
        *tally.entry(w).or_insert(0) += 1;
    }
    tally
}

#[test]
fn parallel_keyed_job_matches_sequential_output() {
    let sequential = base_scenario("wc-seq", 1).run().expect("runs");
    let parallel = base_scenario("wc-par", 4).run().expect("runs");
    assert_eq!(final_counts(&sequential), ground_truth());
    assert_eq!(
        final_counts(&parallel),
        final_counts(&sequential),
        "merged parallel output must equal the sequential run"
    );
    // Every input record counted exactly once, and per-key update order is
    // preserved through the keyed shuffle (each key's counts are gapless).
    assert_eq!(
        counted_inputs(&sink_bytes(&parallel)),
        counted_inputs(&sink_bytes(&sequential)),
    );
    assert_eq!(
        per_key_count_sequences(&sink_bytes(&parallel)),
        per_key_count_sequences(&sink_bytes(&sequential)),
    );
    // The work really was split: every last-stage instance processed some
    // records, and the report carries per-instance entries.
    let report = &parallel.report;
    let instances: Vec<&String> = report
        .spe_instances
        .keys()
        .filter(|k| k.starts_with("wc/1/"))
        .collect();
    assert_eq!(instances.len(), 4, "four keyed-stage instances reported");
    let busy = report
        .spe_instances
        .iter()
        .filter(|(k, r)| k.starts_with("wc/1/") && r.record_counts.0 > 0)
        .count();
    assert!(
        busy >= 3,
        "key groups spread across instances ({busy}/4 busy)"
    );
    // Aggregate counts match the stage totals.
    assert_eq!(
        report.spe["wc"].record_counts.0, WORDS as u64,
        "stage-0 aggregate input equals the corpus"
    );
}

#[test]
fn windowed_parallel_job_matches_sequential_output() {
    let build = |parallelism: usize| {
        let mut sc = Scenario::new("win");
        sc.seed(SEED)
            .duration(SimTime::from_secs(25))
            .topic(TopicSpec::new("words").partitions(8))
            .topic(TopicSpec::new("win-counts"));
        sc.broker("h2");
        sc.producer(
            "h1",
            stream2gym::core::SourceSpec::Items {
                topic: "words".into(),
                items: word_stream(WORDS, SEED),
                interval: SimDuration::from_millis(40),
            },
            Default::default(),
        );
        let mut job = SpeJobSpec::new(
            "win",
            vec!["words".into()],
            || {
                Plan::new()
                    .key_by("by-word", |e| e.value.as_str().unwrap_or("").to_string())
                    .window_count("w", SimDuration::from_secs(2))
            },
            SpeSinkSpec::Topic("win-counts".into()),
            SpeConfig {
                batch_interval: SimDuration::from_millis(250),
                ..SpeConfig::default()
            },
        );
        if parallelism > 1 {
            job = job.parallelism(parallelism);
        }
        sc.spe_job("h3", job);
        sc.consumer("h5", Default::default(), &["win-counts"]);
        sc.run().expect("runs")
    };
    let seq = build(1);
    let par = build(4);
    // Same windows, same per-window counts (order may interleave).
    let collect = |r: &RunResult| -> BTreeMap<(String, u64), i64> {
        let mut m = BTreeMap::new();
        for b in sink_bytes(r) {
            let e = Event::from_bytes(&b).expect("decodes");
            m.insert(
                (e.key.clone().unwrap_or_default(), e.ts.as_nanos()),
                e.value.as_int().unwrap_or(-1),
            );
        }
        m
    };
    let seq_windows = collect(&seq);
    assert!(!seq_windows.is_empty(), "windows fired");
    assert_eq!(collect(&par), seq_windows);
}

/// The exactly-once acceptance gate: `parallelism(4)` + transactional
/// sinks, one keyed-stage instance crashed mid-epoch — committed sink
/// output is equivalent to the fault-free parallel run (same record-byte
/// multiset, same per-key order), and the final state matches ground
/// truth.
#[test]
fn parallel_txn_sink_instance_crash_is_exactly_once() {
    let build = || {
        let mut sc = base_scenario("wc-par-txn", 4);
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
        sc.with_transactional_sinks();
        sc
    };
    let baseline = build().run().expect("baseline runs");
    let mut sc = build();
    sc.faults(FaultPlan::new().crash_restart(
        "wc/1/1",
        SimTime::from_millis(3_300),
        SimDuration::from_millis(800),
    ));
    let faulted = sc.run().expect("faulted runs");
    assert_eq!(final_counts(&faulted), ground_truth());
    assert_eq!(
        counted_inputs(&sink_bytes(&faulted)),
        counted_inputs(&sink_bytes(&baseline)),
        "every input must be counted exactly once, crash or not"
    );
    assert_eq!(
        per_key_count_sequences(&sink_bytes(&faulted)),
        per_key_count_sequences(&sink_bytes(&baseline)),
        "per-key update order must survive the crash"
    );
    // The crashed instance restored from its chain.
    let rec = faulted.report.spe_instances["wc/1/1"]
        .recovery
        .expect("instance crash recorded");
    assert!(rec.restored_at.is_some(), "state restored");
    // The aggregate report surfaces the same recovery.
    let agg = faulted.report.spe["wc"].recovery.expect("aggregated");
    assert_eq!(agg.crashed_at, rec.crashed_at);
}

/// The rescale acceptance gate: run at 4, crash the whole job, restart at
/// 2 — every key group is redistributed and restored, so the final keyed
/// state equals the fault-free run's.
#[test]
fn rescale_4_to_2_restores_all_key_groups() {
    // Cross-stage exactly-once needs the transactional shuffle: a crashed
    // epoch's uncommitted re-emissions are aborted, so the keyed stage
    // (reading committed) never double-counts the replay — the Kafka
    // Streams EOS discipline.
    let baseline = {
        let mut sc = base_scenario("wc-rescale-base", 4);
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
        sc.with_transactional_sinks();
        sc.run().expect("baseline runs")
    };
    let mut sc2 = Scenario::new("wc-rescale");
    sc2.seed(SEED)
        .duration(SimTime::from_secs(30))
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
        .topic(TopicSpec::new("words").partitions(8))
        .topic(TopicSpec::new("counts"));
    sc2.broker("h2");
    sc2.producer(
        "h1",
        stream2gym::core::SourceSpec::Items {
            topic: "words".into(),
            items: word_stream(WORDS, SEED),
            interval: SimDuration::from_millis(40),
        },
        Default::default(),
    );
    sc2.spe_job(
        "h3",
        SpeJobSpec::new(
            "wc",
            vec!["words".into()],
            running_count_plan,
            SpeSinkSpec::Topic("counts".into()),
            SpeConfig {
                batch_interval: SimDuration::from_millis(250),
                scheduling_overhead: SimDuration::from_millis(20),
                startup_cpu: SimDuration::from_millis(200),
                ..SpeConfig::default()
            },
        )
        .parallelism(4)
        .rescale_on_restart(2),
    );
    sc2.consumer("h5", Default::default(), &["counts"]);
    sc2.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
    sc2.with_transactional_sinks();
    sc2.faults(FaultPlan::new().crash_restart(
        "wc",
        SimTime::from_millis(3_600),
        SimDuration::from_millis(800),
    ));
    let rescaled = sc2.run().expect("rescaled runs");
    assert_eq!(
        final_counts(&rescaled),
        final_counts(&baseline),
        "rescaled final keyed state must equal the fault-free run"
    );
    assert_eq!(final_counts(&rescaled), ground_truth());
    // The job really runs at 2 after the restart: instances 2/3 of the
    // keyed stage died with the crash and never came back.
    let r = &rescaled.report;
    assert!(r.spe_instances.contains_key("wc/1/3"));
    let shrunk = &r.spe_instances["wc/1/3"];
    assert!(
        shrunk
            .recovery
            .is_some_and(|rec| rec.restarted_at.is_none()),
        "instance 3 crashed and was not part of the rescaled layout"
    );
    let survivor = &r.spe_instances["wc/1/0"];
    assert!(
        survivor
            .recovery
            .is_some_and(|rec| rec.restored_at.is_some()),
        "instance 0 restored merged key groups"
    );
}

/// The ported word-count app at `parallelism(4)` produces exactly the
/// sequential run's output.
#[test]
fn word_count_app_parallel_matches_sequential() {
    use stream2gym::apps::word_count::parallel_recovery_scenario;
    let seq = parallel_recovery_scenario(
        120,
        SimDuration::from_millis(40),
        SimTime::from_secs(25),
        11,
        1,
    )
    .run()
    .expect("sequential runs");
    let par = parallel_recovery_scenario(
        120,
        SimDuration::from_millis(40),
        SimTime::from_secs(25),
        11,
        4,
    )
    .run()
    .expect("parallel runs");
    assert_eq!(final_counts(&par), final_counts(&seq));
    assert_eq!(
        counted_inputs(&sink_bytes(&par)),
        counted_inputs(&sink_bytes(&seq)),
    );
    assert_eq!(
        per_key_count_sequences(&sink_bytes(&par)),
        per_key_count_sequences(&sink_bytes(&seq)),
    );
}

/// The ported fraud app at `parallelism(4)` flags exactly the transactions
/// the sequential run flags.
#[test]
fn fraud_app_parallel_matches_sequential() {
    use stream2gym::apps::fraud::parallel_scenario;
    let seq = parallel_scenario(300, 800, SimTime::from_secs(25), 5, 1)
        .run()
        .expect("sequential runs");
    let par = parallel_scenario(300, 800, SimTime::from_secs(25), 5, 4)
        .run()
        .expect("parallel runs");
    let alerts = |r: &RunResult| -> Vec<Vec<u8>> {
        let mut v = sink_bytes(r);
        v.sort();
        v
    };
    let seq_alerts = alerts(&seq);
    assert!(!seq_alerts.is_empty(), "some transactions are flagged");
    assert_eq!(alerts(&par), seq_alerts);
    // The scoring work really spread across the four instances.
    let busy = par
        .report
        .spe_instances
        .values()
        .filter(|r| r.record_counts.0 > 0)
        .count();
    assert!(
        busy >= 3,
        "instances split the source partitions ({busy}/4)"
    );
}

/// Rescale in the growing direction: run at 2, restart at 4 — state
/// spreads out instead of merging, with the same final result.
#[test]
fn rescale_2_to_4_redistributes_state() {
    let mut sc = Scenario::new("wc-grow");
    sc.seed(SEED)
        .duration(SimTime::from_secs(30))
        .topic(TopicSpec::new("words").partitions(8))
        .topic(TopicSpec::new("counts"));
    sc.broker("h2");
    sc.producer(
        "h1",
        stream2gym::core::SourceSpec::Items {
            topic: "words".into(),
            items: word_stream(WORDS, SEED),
            interval: SimDuration::from_millis(40),
        },
        Default::default(),
    );
    sc.spe_job(
        "h3",
        SpeJobSpec::new(
            "wc",
            vec!["words".into()],
            running_count_plan,
            SpeSinkSpec::Topic("counts".into()),
            SpeConfig {
                batch_interval: SimDuration::from_millis(250),
                ..SpeConfig::default()
            },
        )
        .parallelism(2)
        .rescale_on_restart(4),
    );
    sc.consumer("h5", Default::default(), &["counts"]);
    sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
    sc.with_transactional_sinks();
    sc.faults(FaultPlan::new().crash_restart(
        "wc",
        SimTime::from_millis(3_600),
        SimDuration::from_millis(800),
    ));
    let grown = sc.run().expect("runs");
    assert_eq!(final_counts(&grown), ground_truth());
    // Instances 2 and 3 of the keyed stage exist only after the restart.
    assert!(grown.report.spe_instances.contains_key("wc/1/2"));
    assert!(grown.report.spe_instances.contains_key("wc/1/3"));
}

/// Operator-level rescale property: for each stateful operator kind
/// (keyed map, windowed aggregate, windowed join), run a keyed stream
/// split across N operator instances, snapshot them mid-stream, merge the
/// snapshots into M fresh instances under the new key-group ownership,
/// finish the stream — and the union of outputs equals the single-instance
/// run's, for several (N, M) pairs.
#[test]
fn operator_state_rescales_exactly() {
    use stream2gym::proto::{key_group, owner_of_group};
    use stream2gym::spe::{Operator, StatefulMap, WindowAggregate, WindowAssigner, WindowJoin};

    const GROUPS: u32 = 16;
    let owner = |key: &str, par: u32| -> u32 {
        owner_of_group(key_group(key.as_bytes(), GROUPS), par, GROUPS)
    };
    // A keyed two-source stream with event times marching forward.
    let events: Vec<Event> = (0..120)
        .map(|i| {
            let mut e = Event::new(
                Value::Int(i),
                stream2gym::sim::SimTime::from_millis(100 * i as u64),
            )
            .with_key(format!("k{}", i % 10));
            e.source = (i % 2) as u8;
            e
        })
        .collect();
    let (head, tail) = events.split_at(70);

    // Output normalization: sort by (key, ts, value debug).
    let norm = |mut out: Vec<Event>| -> Vec<String> {
        out.sort_by_key(|e| {
            (
                e.key.clone().unwrap_or_default(),
                e.ts.as_nanos(),
                format!("{:?}", e.value),
            )
        });
        out.iter()
            .map(|e| format!("{:?}|{:?}|{}", e.key, e.value, e.ts))
            .collect()
    };

    #[allow(clippy::type_complexity)]
    let make_ops: Vec<(&str, Box<dyn Fn() -> Box<dyn Operator>>)> = vec![
        (
            "stateful-map",
            Box::new(|| {
                Box::new(StatefulMap::new("count", Value::Int(0), |state, e| {
                    let n = state.as_int().unwrap_or(0) + 1;
                    *state = Value::Int(n);
                    vec![Event {
                        value: Value::Int(n),
                        ..e.clone()
                    }]
                }))
            }),
        ),
        (
            "window-aggregate",
            Box::new(|| {
                Box::new(WindowAggregate::count(
                    "wc",
                    WindowAssigner::Tumbling(SimDuration::from_secs(3)),
                ))
            }),
        ),
        (
            "window-join",
            Box::new(|| {
                Box::new(WindowJoin::new(
                    "j",
                    WindowAssigner::Tumbling(SimDuration::from_secs(3)),
                    |l, r| Value::List(vec![l.value.clone(), r.value.clone()]),
                ))
            }),
        ),
    ];

    for (kind, make) in &make_ops {
        // Ground truth: one instance sees everything.
        let mut truth_op = make();
        let mut truth = truth_op.process(SimTime::ZERO, events.clone());
        truth.extend(truth_op.flush(SimTime::ZERO));
        let truth = norm(truth);

        for (n, m) in [(4usize, 2usize), (2, 4), (3, 3), (1, 4)] {
            // Phase 1: N instances process the head, split by ownership.
            let mut olds: Vec<Box<dyn Operator>> = (0..n).map(|_| make()).collect();
            let mut out: Vec<Event> = Vec::new();
            for (i, op) in olds.iter_mut().enumerate() {
                let share: Vec<Event> = head
                    .iter()
                    .filter(|e| owner(e.key.as_deref().unwrap(), n as u32) == i as u32)
                    .cloned()
                    .collect();
                out.extend(op.process(SimTime::ZERO, share));
            }
            let snapshots: Vec<Option<Value>> = olds.iter().map(|op| op.snapshot_state()).collect();
            // Phase 2: M fresh instances merge the snapshots under the new
            // ownership and process the tail.
            let mut news: Vec<Box<dyn Operator>> = (0..m).map(|_| make()).collect();
            for (j, op) in news.iter_mut().enumerate() {
                let keep = |k: &str| owner(k, m as u32) == j as u32;
                for snap in snapshots.iter().flatten() {
                    op.merge_restore(snap.clone(), &keep);
                }
            }
            for (j, op) in news.iter_mut().enumerate() {
                let share: Vec<Event> = tail
                    .iter()
                    .filter(|e| owner(e.key.as_deref().unwrap(), m as u32) == j as u32)
                    .cloned()
                    .collect();
                out.extend(op.process(SimTime::ZERO, share));
                out.extend(op.flush(SimTime::ZERO));
            }
            assert_eq!(
                norm(out),
                truth,
                "{kind}: rescale {n}→{m} must preserve every key group"
            );
        }
    }
}

/// A rescale merge must take the *min* watermark across the merged chains:
/// the max would fire windows restored from a less-advanced old instance
/// with only their checkpointed partial contents, and the replayed
/// remainder would then fire a re-created window a second time.
#[test]
fn merged_restore_watermark_is_min_across_chains() {
    use stream2gym::spe::{Operator, WindowAggregate, WindowAssigner};

    let width = SimDuration::from_secs(6);
    let ev =
        |key: &str, secs: u64| Event::new(Value::Int(1), SimTime::from_secs(secs)).with_key(key);
    // Old instance 0 owns key `a` and is far ahead (watermark 20s); old
    // instance 1 owns key `b` and is behind (watermark 3s) with an open
    // [0s, 6s) window of three events.
    let mut fast = WindowAggregate::count("wc", WindowAssigner::Tumbling(width));
    fast.process(SimTime::ZERO, vec![ev("a", 1), ev("a", 2), ev("a", 20)]);
    let mut slow = WindowAggregate::count("wc", WindowAssigner::Tumbling(width));
    slow.process(SimTime::ZERO, vec![ev("b", 1), ev("b", 2), ev("b", 3)]);

    // Rescale 2→1: one new instance adopts both chains.
    let mut merged = WindowAggregate::count("wc", WindowAssigner::Tumbling(width));
    let keep = |_: &str| true;
    merged.merge_restore(fast.snapshot_state().expect("state"), &keep);
    merged.merge_restore(slow.snapshot_state().expect("state"), &keep);

    // An input-less batch tick before `b`'s events replay: a max-merged
    // watermark (20s) would fire `b`'s restored window here, partial.
    let early = merged.process(SimTime::from_secs(20), Vec::new());
    assert!(
        early.is_empty(),
        "no window may fire before b's replay: {early:?}"
    );
    // With the min merge, the replayed events join the restored window and
    // it fires exactly once, complete.
    let mut out = merged.process(SimTime::from_secs(21), vec![ev("b", 4), ev("b", 5)]);
    out.extend(merged.flush(SimTime::from_secs(22)));
    let b_fires: Vec<i64> = out
        .iter()
        .filter(|e| e.key.as_deref() == Some("b"))
        .map(|e| e.value.as_int().expect("count"))
        .collect();
    assert_eq!(b_fires, vec![5], "b's window fires once, with every event");
}

/// A job-level rescale restart must bounce still-*alive* instances into
/// the new layout too: crash only one instance, then restart the whole
/// job with `rescale_on_restart(2)`. Survivors left at the old
/// parallelism would keep key-group ownership overlapping the new
/// layout's (duplicates) while orphaning the groups in between (loss).
#[test]
fn rescale_restart_after_partial_crash_rewires_survivors() {
    use stream2gym::net::FaultAction;

    let baseline = {
        let mut sc = base_scenario("wc-partial-base", 4);
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
        sc.with_transactional_sinks();
        sc.run().expect("baseline runs")
    };
    let mut sc2 = Scenario::new("wc-partial-rescale");
    sc2.seed(SEED)
        .duration(SimTime::from_secs(30))
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
        .topic(TopicSpec::new("words").partitions(8))
        .topic(TopicSpec::new("counts"));
    sc2.broker("h2");
    sc2.producer(
        "h1",
        stream2gym::core::SourceSpec::Items {
            topic: "words".into(),
            items: word_stream(WORDS, SEED),
            interval: SimDuration::from_millis(40),
        },
        Default::default(),
    );
    sc2.spe_job(
        "h3",
        SpeJobSpec::new(
            "wc",
            vec!["words".into()],
            running_count_plan,
            SpeSinkSpec::Topic("counts".into()),
            SpeConfig {
                batch_interval: SimDuration::from_millis(250),
                scheduling_overhead: SimDuration::from_millis(20),
                startup_cpu: SimDuration::from_millis(200),
                ..SpeConfig::default()
            },
        )
        .parallelism(4)
        .rescale_on_restart(2),
    );
    sc2.consumer("h5", Default::default(), &["counts"]);
    sc2.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
    sc2.with_transactional_sinks();
    sc2.faults(
        FaultPlan::new()
            .crash_process("wc/1/1", SimTime::from_millis(3_000))
            .at(
                SimTime::from_millis(3_800),
                FaultAction::RestartProcess("wc".into()),
            ),
    );
    let rescaled = sc2.run().expect("rescaled runs");
    assert_eq!(
        final_counts(&rescaled),
        final_counts(&baseline),
        "partial-crash rescale must neither duplicate nor orphan key groups"
    );
    assert_eq!(final_counts(&rescaled), ground_truth());
    // The whole job really moved to the new layout: survivors of stage 1
    // beyond the shrunk parallelism were retired at the restart.
    let r = &rescaled.report;
    assert!(
        r.spe_instances["wc/1/3"]
            .recovery
            .is_some_and(|rec| rec.restarted_at.is_none()),
        "instance 3 was retired by the shrink"
    );
    assert!(
        r.spe_instances["wc/1/0"]
            .recovery
            .is_some_and(|rec| rec.restored_at.is_some()),
        "the surviving instance 0 was bounced into the rescaled layout"
    );
}
