//! Replicated snapshot store + checkpoint-aligned transactional sinks.
//!
//! The acceptance gate for the store-replication / transactional-sink
//! subsystem: with `with_replicated_store(3)` and
//! `with_transactional_sinks()`, neither crashing the store primary
//! mid-checkpoint nor crashing an SPE worker mid-epoch may change a single
//! byte of the sink-topic output a read-committed consumer observes —
//! end-to-end exactly-once, not just state-level exactly-once.
//!
//! The durability-ordering tests pin the manifest-after-blob discipline of
//! the durable checkpoint backend: the chain manifest — the only pointer to
//! a checkpoint — is published only after the blob it references is acked,
//! so a store failure between the two leaves the previous complete chain
//! restorable (never a half-written one, never a cold start).

use std::any::Any;
use std::collections::BTreeMap;

use stream2gym::apps::word_count::{recovery_scenario, word_stream};
use stream2gym::broker::{Broker, CollectingSink, ConsumerProcess};
use stream2gym::core::{MonitoredSink, RunResult, Scenario};
use stream2gym::net::FaultPlan;
use stream2gym::sim::{downcast, Ctx, Message, Process, ProcessId, Sim, SimDuration, SimTime};
use stream2gym::spe::{
    BackendEvent, CheckpointCfg, CheckpointPayload, DurableBackend, Event, StateBackend,
    StateSnapshot,
};
use stream2gym::store::{StoreConfig, StoreRpc, StoreServer};

const WORDS: usize = 120;
const WORD_INTERVAL_MS: u64 = 50;
const CHECKPOINT_INTERVAL: SimDuration = SimDuration::from_secs(1);
const SEED: u64 = 23;

/// The transactional pipeline: word count into a sink topic, durable
/// checkpoints on a replicated store group, transactional sink commits.
fn build_txn(replicas: usize) -> Scenario {
    let mut sc = recovery_scenario(
        WORDS,
        SimDuration::from_millis(WORD_INTERVAL_MS),
        SimTime::from_secs(30),
        SEED,
    );
    sc.store("h6", StoreConfig::default());
    sc.with_replicated_store(replicas);
    sc.with_durable_checkpointing(CheckpointCfg::exactly_once(CHECKPOINT_INTERVAL), "h6");
    sc.with_transactional_sinks();
    sc
}

/// Every record value the (read-committed) consumer stub observed on the
/// sink topic, in delivery order — the byte-identity axis.
fn sink_bytes(result: &RunResult) -> Vec<Vec<u8>> {
    let pid = result.consumer_pids[0];
    let cp = result
        .sim
        .process_ref::<ConsumerProcess>(pid)
        .expect("consumer");
    let monitored = cp.sink_as::<MonitoredSink>().expect("monitored sink");
    let sink = (monitored.inner() as &dyn Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting sink");
    sink.deliveries
        .iter()
        .map(|(_, _, rec)| rec.value.to_vec())
        .collect()
}

/// Highest count per word the consumer saw (the state-level check).
fn final_counts(result: &RunResult) -> BTreeMap<String, i64> {
    let mut counts = BTreeMap::new();
    for value in sink_bytes(result) {
        let e = Event::from_bytes(&value).expect("SPE output decodes");
        let word = e.key.clone().expect("keyed by word");
        let n = e.value.as_int().expect("count value");
        let entry = counts.entry(word).or_insert(0);
        *entry = (*entry).max(n);
    }
    counts
}

fn ground_truth() -> BTreeMap<String, i64> {
    let mut tally = BTreeMap::new();
    for w in word_stream(WORDS, SEED) {
        *tally.entry(w).or_insert(0) += 1;
    }
    tally
}

#[test]
fn transactional_baseline_commits_every_epoch() {
    let result = build_txn(3).run().expect("runs");
    assert_eq!(final_counts(&result), ground_truth());
    let spe = &result.report.spe["wordcount"];
    assert!(spe.checkpoints.checkpoints > 0, "checkpoints were taken");
    assert!(
        spe.checkpoints.txn_commits > 0,
        "sink transactions were committed"
    );
    assert!(
        !spe.checkpoint_log.is_empty(),
        "per-checkpoint latency series recorded"
    );
    // Quorum persistence is not free: captures take simulated time.
    assert!(spe
        .checkpoint_log
        .iter()
        .all(|(accepted, durable)| durable >= accepted));
    // The broker flipped commit markers.
    let broker = result
        .sim
        .process_ref::<Broker>(result.broker_pids[0])
        .expect("broker");
    assert!(broker.stats().txns_committed > 0, "commit markers arrived");
    assert_eq!(broker.stats().txns_aborted, 0, "no fault, no aborts");
    // Every store replica holds the replicated checkpoint blobs.
    assert_eq!(result.report.stores.len(), 3);
    for replica in &result.report.stores {
        assert!(
            replica.kv_keys > 0,
            "replica {} holds checkpoint blobs",
            replica.replica
        );
    }
    assert!(result.report.stores[0].is_primary, "no fault, no failover");
}

#[test]
fn worker_crash_mid_epoch_is_end_to_end_exactly_once() {
    // The staged-but-uncommitted transaction of the crashed epoch must be
    // aborted and replayed; a read-committed consumer sees output
    // byte-identical to the fault-free run.
    let baseline = build_txn(3).run().expect("baseline runs");
    let mut sc = build_txn(3);
    sc.faults(FaultPlan::new().crash_restart(
        "wordcount",
        SimTime::from_millis(4_300),
        SimDuration::from_millis(1_000),
    ));
    let faulted = sc.run().expect("faulted runs");
    assert_eq!(
        sink_bytes(&faulted),
        sink_bytes(&baseline),
        "committed sink output must be byte-identical to the fault-free run"
    );
    let spe = &faulted.report.spe["wordcount"];
    let rec = spe.recovery.expect("crash recorded");
    assert!(rec.restored_at.is_some(), "state restored from the group");
    assert_eq!(spe.consumer_stats.offset_resets, 0);
    // The broker aborted the crashed epoch's staged transaction.
    let broker = faulted
        .sim
        .process_ref::<Broker>(faulted.broker_pids[0])
        .expect("broker");
    assert!(
        broker.stats().txns_aborted > 0,
        "the crashed epoch's staged output was aborted"
    );
}

#[test]
fn store_primary_crash_mid_checkpoint_fails_over_and_stays_exact() {
    // Crash the store-group primary while checkpoints are in flight: the
    // blob client rotates to a surviving member, the group fails over, the
    // restarted replica resyncs — and the sink output stays byte-identical.
    let baseline = build_txn(3).run().expect("baseline runs");
    let mut sc = build_txn(3);
    sc.faults(FaultPlan::new().crash_restart_store(
        0,
        SimTime::from_millis(3_900),
        SimDuration::from_secs(3),
    ));
    let faulted = sc.run().expect("faulted runs");
    assert_eq!(
        sink_bytes(&faulted),
        sink_bytes(&baseline),
        "a store crash must not change the committed sink output"
    );
    assert_eq!(final_counts(&faulted), ground_truth());
    let spe = &faulted.report.spe["wordcount"];
    assert!(
        spe.checkpoints.checkpoints > 0,
        "checkpoints kept landing through the failover"
    );
    // Checkpoints persisted after the crash prove the failover worked.
    let crash = SimTime::from_millis(3_900);
    assert!(
        spe.checkpoint_log
            .iter()
            .any(|(_, durable)| *durable > crash),
        "captures persisted after the primary died"
    );
    // The group's view: a surviving member claimed primary; the restarted
    // replica resynced the op log.
    let s0 = &faulted.report.stores[0];
    let rec = s0.recovery.expect("store crash recorded");
    assert_eq!(rec.crashed_at, crash);
    assert_eq!(rec.restarted_at, Some(SimTime::from_millis(6_900)));
    assert!(rec.resynced_at.is_some(), "op-log catch-up completed");
    assert!(rec.sync_ops > 0, "the rejoining replica pulled missed ops");
    assert!(rec.sync_bytes > 0);
    assert!(!s0.is_primary, "the bounced replica rejoins as a follower");
    assert!(
        faulted.report.stores.iter().any(|r| r.is_primary),
        "a surviving member holds the primary role"
    );
    // All live replicas converge to the same blob set.
    let keys: Vec<u64> = faulted.report.stores.iter().map(|r| r.kv_keys).collect();
    assert!(
        keys.iter().all(|k| *k == keys[0]),
        "replicas converged: {keys:?}"
    );
}

#[test]
fn lossy_store_link_worker_crash_stays_exactly_once() {
    // A 20%-lossy access link to the store primary drops snapshot puts,
    // quorum replication traffic, and transaction-control RPCs — forcing
    // the retry paths (blob-client rotation, re-sent EndTxn/TxnRecover).
    // The epoch fence on TxnRecover means even a duplicated recover can
    // never abort the new incarnation's staged output: the committed sink
    // stream must still match the fault-free run byte for byte.
    use stream2gym::net::LinkSpec;
    let lossy = |sc: &mut Scenario| {
        sc.host_link(
            "h6",
            LinkSpec::new()
                .latency(SimDuration::from_millis(2))
                .loss_pct(20.0),
        );
    };
    let mut base = build_txn(3);
    lossy(&mut base);
    let baseline = base.run().expect("baseline runs");
    let mut sc = build_txn(3);
    lossy(&mut sc);
    sc.faults(FaultPlan::new().crash_restart(
        "wordcount",
        SimTime::from_millis(4_300),
        SimDuration::from_millis(1_000),
    ));
    let faulted = sc.run().expect("faulted runs");
    assert!(
        faulted.report.sim_stats.messages_dropped > 0,
        "the lossy link must actually drop store traffic"
    );
    assert_eq!(
        sink_bytes(&faulted),
        sink_bytes(&baseline),
        "retried transaction control must stay idempotent"
    );
}

#[test]
fn unreplicated_store_group_still_works() {
    // `with_replicated_store(1)` degenerates to the standalone store.
    let result = build_txn(1).run().expect("runs");
    assert_eq!(final_counts(&result), ground_truth());
    assert_eq!(result.report.stores.len(), 1);
    assert!(result.report.stores[0].is_primary);
}

// ---------------------------------------------------------------------------
// Durability-ordering tests: manifest-after-blob.
// ---------------------------------------------------------------------------

fn sample_snapshot(tag: i64) -> StateSnapshot {
    StateSnapshot {
        taken_at: SimTime::from_millis(100 + tag as u64),
        plan_state: vec![Some(stream2gym::spe::Value::Int(tag))],
        records_in: tag as u64,
        records_out: 0,
        buffer: Vec::new(),
        offsets: Vec::new(),
        txn_seq: 0,
    }
}

/// Drives a [`DurableBackend`] against a real store: persists snapshot A to
/// completion, then plants an *orphan* chain-2 base blob (exactly the state
/// left by a store failure after the blob write but before the manifest
/// publish), then recovers through a fresh backend.
struct OrphanBlobHarness {
    store: ProcessId,
    backend: DurableBackend,
    recover_backend: Option<DurableBackend>,
    stage: u8,
    restored: Option<Option<StateSnapshot>>,
}

const ORPHAN_CORR: u64 = 424_242;

impl Process for OrphanBlobHarness {
    fn name(&self) -> &str {
        "harness"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let payload = CheckpointPayload::Full(sample_snapshot(1));
        self.backend.persist(ctx, "job", &payload);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        let Ok(rpc) = downcast::<StoreRpc>(msg) else {
            return;
        };
        if let StoreRpc::PutAck { corr: ORPHAN_CORR } = *rpc {
            // Orphan blob durable; now recover through a fresh backend,
            // exactly like a respawned worker would.
            self.stage = 2;
            let mut rb = DurableBackend::new(self.store);
            rb.recover(ctx, "job");
            self.recover_backend = Some(rb);
            return;
        }
        if let Some(rb) = self.recover_backend.as_mut() {
            if let BackendEvent::Recovered { chain, .. } = rb.on_store_rpc(ctx, "job", &rpc) {
                self.restored = Some(chain.map(|c| c.base));
            }
            return;
        }
        match self.backend.on_store_rpc(ctx, "job", &rpc) {
            BackendEvent::PersistCompleted if self.stage == 0 => {
                // Snapshot A is fully durable (blob + manifest). Plant the
                // chain-2 base blob WITHOUT its manifest: the post-failure
                // state of a persist interrupted between the two writes.
                self.stage = 1;
                ctx.send(
                    self.store,
                    StoreRpc::Put {
                        corr: ORPHAN_CORR,
                        key: "ckpt/job/2/base".into(),
                        value: sample_snapshot(2).to_bytes(),
                    },
                );
            }
            _ => {}
        }
    }
}

#[test]
fn store_failure_between_blob_and_manifest_falls_back_to_previous_chain() {
    let mut sim = Sim::new(7);
    let store = sim.spawn(Box::new(StoreServer::new(StoreConfig::default())));
    let harness = sim.spawn(Box::new(OrphanBlobHarness {
        store,
        backend: DurableBackend::new(store),
        recover_backend: None,
        stage: 0,
        restored: None,
    }));
    sim.run_until(SimTime::from_secs(10));
    let h = sim
        .process_ref::<OrphanBlobHarness>(harness)
        .expect("harness");
    let restored = h
        .restored
        .as_ref()
        .expect("recovery completed")
        .as_ref()
        .expect("no cold start: the previous chain is intact");
    assert_eq!(
        restored,
        &sample_snapshot(1),
        "restore must fall back to the last manifest-consistent chain, \
         never adopt the orphaned newer blob"
    );
}

/// A store stand-in that records arriving Put keys and deliberately
/// withholds the ack for blob keys, to pin the backend's write ordering.
struct BlackholeBlobStore {
    received: Vec<String>,
    ack_blobs: bool,
}

impl Process for BlackholeBlobStore {
    fn name(&self) -> &str {
        "blackhole-store"
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
        let Ok(rpc) = downcast::<StoreRpc>(msg) else {
            return;
        };
        if let StoreRpc::Put { corr, key, .. } = *rpc {
            let is_blob = key.contains("/base")
                || key
                    .rsplit('/')
                    .next()
                    .is_some_and(|t| t.parse::<u64>().is_ok());
            self.received.push(key);
            if !is_blob || self.ack_blobs {
                ctx.send(from, StoreRpc::PutAck { corr });
            }
        }
    }
}

/// Drives one persist against the blackhole store.
struct PersistDriver {
    backend: DurableBackend,
}

impl Process for PersistDriver {
    fn name(&self) -> &str {
        "persist-driver"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let payload = CheckpointPayload::Full(sample_snapshot(1));
        self.backend.persist(ctx, "job", &payload);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        if let Ok(rpc) = downcast::<StoreRpc>(msg) {
            let _ = self.backend.on_store_rpc(ctx, "job", &rpc);
        }
    }
}

#[test]
fn manifest_put_waits_for_the_blob_ack() {
    // Phase 1: the store never acks the blob — the manifest must never be
    // published, or a crash here would dangle the manifest on a missing
    // blob.
    let mut sim = Sim::new(3);
    let store = sim.spawn(Box::new(BlackholeBlobStore {
        received: Vec::new(),
        ack_blobs: false,
    }));
    sim.spawn(Box::new(PersistDriver {
        backend: DurableBackend::new(store),
    }));
    sim.run_until(SimTime::from_secs(5));
    let st = sim.process_ref::<BlackholeBlobStore>(store).expect("store");
    assert_eq!(
        st.received,
        vec!["ckpt/job/1/base".to_string()],
        "without the blob ack the manifest is withheld"
    );

    // Phase 2: acks flow — the manifest follows the blob, strictly after.
    let mut sim = Sim::new(3);
    let store = sim.spawn(Box::new(BlackholeBlobStore {
        received: Vec::new(),
        ack_blobs: true,
    }));
    sim.spawn(Box::new(PersistDriver {
        backend: DurableBackend::new(store),
    }));
    sim.run_until(SimTime::from_secs(5));
    let st = sim.process_ref::<BlackholeBlobStore>(store).expect("store");
    assert_eq!(
        st.received,
        vec!["ckpt/job/1/base".to_string(), "ckpt/job".to_string()],
        "the manifest publish strictly follows the blob's durability"
    );
}

/// Peer-acked op-log truncation: primaries discard the op-log prefix every
/// live member has applied, so long runs stop growing the log — and a
/// member restarted after truncation is bootstrapped by a full state
/// transfer instead of replaying from sequence zero.
#[test]
fn oplog_truncation_bounds_the_log_and_snapshot_resync_still_works() {
    // Fault-free long run: the log is truncated down to (near) nothing.
    let result = build_txn(3).run().expect("runs");
    let primary = &result.report.stores[0];
    assert!(
        primary.oplog_truncated > 0,
        "the primary must discard peer-acked prefixes"
    );
    assert!(
        (primary.oplog_len as i64) < (primary.oplog_truncated as i64),
        "retained log ({}) must stay well below lifetime ops ({})",
        primary.oplog_len,
        primary.oplog_truncated + primary.oplog_len
    );
    assert_eq!(final_counts(&result), ground_truth());

    // Crash replica 1 early and bring it back late — by then the primary
    // has truncated the prefix the rejoin would have replayed, so the
    // resync arrives as a state snapshot (still counted as sync work).
    let mut sc = build_txn(3);
    sc.faults(FaultPlan::new().crash_restart_store(
        1,
        SimTime::from_millis(2_500),
        SimDuration::from_secs(8),
    ));
    let faulted = sc.run().expect("runs");
    assert_eq!(
        sink_bytes(&faulted),
        sink_bytes(&result),
        "truncation must never change committed output"
    );
    let replica = &faulted.report.stores[1];
    let rec = replica.recovery.expect("replica crash recorded");
    assert!(rec.resynced_at.is_some(), "the replica rejoined");
    assert!(rec.sync_ops > 0, "the rejoin transferred state");
    // Truncation kept running on the primary throughout.
    assert!(faulted.report.stores[0].oplog_truncated > 0);
}
