//! The scenario analyzer: every `S2G0xx` diagnostic has a trigger/clean
//! pair here, the `run()` deny gate is exercised both ways, and every
//! shipped application scenario must analyze deny-free.

use stream2gym::analyze::Level;
use stream2gym::apps::word_count::{self, running_count_plan, ComponentDelays};
use stream2gym::apps::{
    fraud, maritime, ride_selection, sentiment, traffic_monitor, video_analytics,
};
use stream2gym::broker::{BrokerConfig, ConsumerConfig, TopicSpec};
use stream2gym::core::{Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use stream2gym::net::{FaultAction, FaultPlan, LinkSpec, Topology};
use stream2gym::proto::AckMode;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, SpeConfig};
use stream2gym::store::StoreConfig;

/// One declared topic pair, one broker — the smallest healthy cluster.
fn base(name: &str) -> Scenario {
    let mut sc = Scenario::new(name);
    sc.duration(SimTime::from_secs(30))
        .topic(TopicSpec::new("in"))
        .topic(TopicSpec::new("out"))
        .broker("bh1");
    sc
}

fn rate_source(topic: &str, interval: SimDuration, payload: usize) -> SourceSpec {
    SourceSpec::Rate {
        topic: topic.into(),
        count: 50,
        interval,
        payload,
    }
}

fn add_producer(sc: &mut Scenario) {
    sc.producer(
        "ph",
        rate_source("in", SimDuration::from_millis(100), 64),
        Default::default(),
    );
}

fn add_job(sc: &mut Scenario, name: &str) {
    sc.spe_job(
        "jh",
        SpeJobSpec::new(
            name,
            vec!["in".into()],
            running_count_plan,
            SpeSinkSpec::Topic("out".into()),
            SpeConfig::default(),
        ),
    );
}

fn level_of(sc: &Scenario, code: &str) -> Option<Level> {
    sc.analyze()
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .map(|d| d.level)
}

#[test]
fn s2g001_clients_without_brokers() {
    let mut sc = Scenario::new("t");
    sc.duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in"));
    sc.consumer("ch", Default::default(), &["in"]);
    assert_eq!(level_of(&sc, "S2G001"), Some(Level::Deny));

    let mut clean = Scenario::new("t");
    clean
        .duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in"));
    clean.broker("bh1");
    clean.consumer("ch", Default::default(), &["in"]);
    assert_eq!(level_of(&clean, "S2G001"), None);
}

#[test]
fn s2g002_unknown_topic_with_nearest_hint() {
    let mut sc = base("t");
    sc.producer(
        "ph",
        rate_source("inn", SimDuration::from_millis(100), 64),
        Default::default(),
    );
    let report = sc.analyze();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "S2G002")
        .expect("typo'd topic denied");
    assert_eq!(d.level, Level::Deny);
    assert!(
        d.suggestion.contains("did you mean `in`"),
        "nearest-name hint missing: {}",
        d.suggestion
    );

    let mut clean = base("t");
    add_producer(&mut clean);
    assert_eq!(level_of(&clean, "S2G002"), None);
}

#[test]
fn s2g003_store_sink_without_store() {
    let mut sc = base("t");
    sc.spe_job(
        "jh",
        SpeJobSpec::new(
            "jb",
            vec!["in".into()],
            running_count_plan,
            SpeSinkSpec::StoreOn {
                host: "sh".into(),
                table: "t".into(),
            },
            SpeConfig::default(),
        ),
    );
    assert_eq!(level_of(&sc, "S2G003"), Some(Level::Deny));

    let mut clean = base("t");
    clean.store("sh", StoreConfig::default());
    clean.spe_job(
        "jh",
        SpeJobSpec::new(
            "jb",
            vec!["in".into()],
            running_count_plan,
            SpeSinkSpec::StoreOn {
                host: "sh".into(),
                table: "t".into(),
            },
            SpeConfig::default(),
        ),
    );
    assert_eq!(level_of(&clean, "S2G003"), None);
}

#[test]
fn s2g004_duplicate_job_names() {
    let mut sc = base("t");
    add_job(&mut sc, "jb");
    add_job(&mut sc, "jb");
    assert_eq!(level_of(&sc, "S2G004"), Some(Level::Deny));

    let mut clean = base("t");
    add_job(&mut clean, "jb1");
    add_job(&mut clean, "jb2");
    assert_eq!(level_of(&clean, "S2G004"), None);
}

#[test]
fn s2g005_topology_missing_required_host() {
    let link = LinkSpec::new().latency(SimDuration::from_micros(50));
    let mut topo = Topology::new();
    topo.add_host("bh1").unwrap();
    topo.add_host("ctl1").unwrap();
    topo.add_link("bh1", "ctl1", link).unwrap();
    let mut sc = base("t");
    add_producer(&mut sc); // producer on `ph`, absent from the topology
    sc.topology(topo);
    assert_eq!(level_of(&sc, "S2G005"), Some(Level::Deny));

    let mut topo = Topology::new();
    topo.add_host("bh1").unwrap();
    topo.add_host("ctl1").unwrap();
    topo.add_host("ph").unwrap();
    topo.add_link("bh1", "ctl1", link).unwrap();
    topo.add_link("ph", "bh1", link).unwrap();
    let mut clean = base("t");
    add_producer(&mut clean);
    clean.topology(topo);
    assert_eq!(level_of(&clean, "S2G005"), None);
}

#[test]
fn s2g006_unknown_fault_process_with_hint() {
    let mut sc = base("t");
    add_job(&mut sc, "wordcount");
    sc.faults(FaultPlan::new().crash_process("wordcounts", SimTime::from_secs(5)));
    let report = sc.analyze();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "S2G006")
        .expect("typo'd process target denied");
    assert_eq!(d.level, Level::Deny);
    assert!(
        d.suggestion.contains("did you mean `wordcount`"),
        "nearest-target hint missing: {}",
        d.suggestion
    );

    let mut clean = base("t");
    add_job(&mut clean, "wordcount");
    clean.faults(FaultPlan::new().crash_restart(
        "wordcount",
        SimTime::from_secs(5),
        SimDuration::from_secs(2),
    ));
    assert_eq!(level_of(&clean, "S2G006"), None);
}

#[test]
fn s2g006_accepts_stage_instance_grammar() {
    let mut sc = base("t");
    sc.spe_job(
        "jh",
        SpeJobSpec::new(
            "jb",
            vec!["in".into()],
            running_count_plan,
            SpeSinkSpec::Topic("out".into()),
            SpeConfig::default(),
        )
        .parallelism(2),
    );
    // Full `<job>/<stage>/<instance>`, the `<job>/<instance>` shorthand,
    // and a stub name are all legal targets.
    sc.faults(
        FaultPlan::new()
            .crash_restart("jb/1/0", SimTime::from_secs(4), SimDuration::from_secs(1))
            .crash_restart("jb/1", SimTime::from_secs(8), SimDuration::from_secs(1)),
    );
    assert_eq!(level_of(&sc, "S2G006"), None);

    let mut bad = base("t");
    bad.spe_job(
        "jh",
        SpeJobSpec::new(
            "jb",
            vec!["in".into()],
            running_count_plan,
            SpeSinkSpec::Topic("out".into()),
            SpeConfig::default(),
        )
        .parallelism(2),
    );
    bad.faults(FaultPlan::new().crash_process("jb/9/9", SimTime::from_secs(4)));
    assert_eq!(level_of(&bad, "S2G006"), Some(Level::Deny));
}

#[test]
fn s2g007_broker_index_out_of_range() {
    let mut sc = base("t");
    add_producer(&mut sc);
    sc.faults(FaultPlan::new().crash_restart_broker(
        5,
        SimTime::from_secs(5),
        SimDuration::from_secs(8),
    ));
    assert_eq!(level_of(&sc, "S2G007"), Some(Level::Deny));

    let mut clean = base("t");
    add_producer(&mut clean);
    clean.faults(FaultPlan::new().crash_restart_broker(
        0,
        SimTime::from_secs(5),
        SimDuration::from_secs(8),
    ));
    assert_eq!(level_of(&clean, "S2G007"), None);
}

#[test]
fn s2g008_store_replica_out_of_range() {
    let mut sc = base("t");
    sc.store("sh", StoreConfig::default());
    sc.faults(FaultPlan::new().crash_restart_store(
        3,
        SimTime::from_secs(5),
        SimDuration::from_secs(5),
    ));
    assert_eq!(level_of(&sc, "S2G008"), Some(Level::Deny));

    let mut clean = base("t");
    clean.store("sh", StoreConfig::default());
    clean.with_replicated_store(2);
    clean.faults(FaultPlan::new().crash_restart_store(
        1,
        SimTime::from_secs(5),
        SimDuration::from_secs(5),
    ));
    assert_eq!(level_of(&clean, "S2G008"), None);
}

#[test]
fn s2g009_key_groups_below_parallelism() {
    let job = |groups: u32| {
        SpeJobSpec::new(
            "jb",
            vec!["in".into()],
            running_count_plan,
            SpeSinkSpec::Topic("out".into()),
            SpeConfig::default(),
        )
        .parallelism(4)
        .key_groups(groups)
    };
    let mut sc = base("t");
    sc.spe_job("jh", job(2));
    assert_eq!(level_of(&sc, "S2G009"), Some(Level::Deny));

    let mut clean = base("t");
    clean.spe_job("jh", job(8));
    assert_eq!(level_of(&clean, "S2G009"), None);
}

#[test]
fn s2g010_shuffle_namespace_squatting() {
    let mut sc = base("t");
    sc.topic(TopicSpec::new("__shuffle.jb.1"));
    assert_eq!(level_of(&sc, "S2G010"), Some(Level::Deny));
    assert_eq!(level_of(&base("t"), "S2G010"), None);
}

#[test]
fn s2g011_replication_above_broker_count() {
    let mut sc = Scenario::new("t");
    sc.duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in").replication(2))
        .broker("bh1");
    assert_eq!(level_of(&sc, "S2G011"), Some(Level::Deny));

    // The scenario-wide override is capped, not denied.
    let mut capped = Scenario::new("t");
    capped
        .duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in"))
        .broker("bh1")
        .broker("bh2")
        .with_replicated_partitions(3);
    assert_eq!(level_of(&capped, "S2G011"), Some(Level::Warn));

    let mut clean = Scenario::new("t");
    clean
        .duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in").replication(2))
        .broker("bh1")
        .broker("bh2");
    assert_eq!(level_of(&clean, "S2G011"), None);
}

#[test]
fn s2g012_min_insync_above_replication() {
    let strict = BrokerConfig {
        min_insync_replicas: 2,
        ..BrokerConfig::default()
    };
    let mut sc = Scenario::new("t");
    sc.duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in"))
        .broker_with("bh1", strict.clone())
        .with_acks(AckMode::All);
    add_producer(&mut sc);
    assert_eq!(level_of(&sc, "S2G012"), Some(Level::Deny));

    // Without an acks=all producer the knob is inert: warn, not deny.
    let mut inert = Scenario::new("t");
    inert
        .duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in"))
        .broker_with("bh1", strict);
    add_producer(&mut inert);
    assert_eq!(level_of(&inert, "S2G012"), Some(Level::Warn));

    let mut clean = base("t");
    add_producer(&mut clean);
    assert_eq!(level_of(&clean, "S2G012"), None);
}

#[test]
fn s2g013_transactional_sink_without_exactly_once() {
    let mut sc = base("t");
    add_job(&mut sc, "jb");
    sc.with_transactional_sinks();
    assert_eq!(level_of(&sc, "S2G013"), Some(Level::Deny));

    // At-least-once checkpointing is not enough either.
    let mut alo = base("t");
    add_job(&mut alo, "jb");
    alo.with_transactional_sinks()
        .with_checkpointing(CheckpointCfg::at_least_once(SimDuration::from_secs(2)));
    assert_eq!(level_of(&alo, "S2G013"), Some(Level::Deny));

    let mut clean = base("t");
    add_job(&mut clean, "jb");
    clean
        .with_transactional_sinks()
        .with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(2)));
    assert_eq!(level_of(&clean, "S2G013"), None);
}

#[test]
fn s2g014_heartbeat_at_or_above_session_timeout() {
    let slow = BrokerConfig {
        heartbeat_interval: SimDuration::from_secs(10),
        ..BrokerConfig::default()
    };
    let mut sc = Scenario::new("t");
    sc.duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in"))
        .broker_with("bh1", slow);
    add_producer(&mut sc);
    assert_eq!(level_of(&sc, "S2G014"), Some(Level::Deny));

    let mut clean = base("t");
    add_producer(&mut clean);
    assert_eq!(level_of(&clean, "S2G014"), None);
}

#[test]
fn s2g015_outage_shorter_than_failure_detection() {
    // The PR-7 trap: default 6 s session timeout waits out a 4 s outage.
    let replicated = |down_for: SimDuration| {
        let mut sc = Scenario::new("t");
        sc.duration(SimTime::from_secs(40))
            .topic(TopicSpec::new("in"))
            .broker("bh1")
            .broker("bh2")
            .with_replicated_partitions(2);
        sc.producer(
            "ph",
            rate_source("in", SimDuration::from_millis(100), 64),
            Default::default(),
        );
        sc.faults(FaultPlan::new().crash_restart_broker(0, SimTime::from_secs(10), down_for));
        sc
    };
    assert_eq!(
        level_of(&replicated(SimDuration::from_secs(4)), "S2G015"),
        Some(Level::Warn)
    );
    assert_eq!(
        level_of(&replicated(SimDuration::from_secs(10)), "S2G015"),
        None
    );
}

#[test]
fn s2g016_replicated_but_acks_leader() {
    let cluster = |acks: Option<AckMode>| {
        let mut sc = Scenario::new("t");
        sc.duration(SimTime::from_secs(10))
            .topic(TopicSpec::new("in"))
            .broker("bh1")
            .broker("bh2")
            .with_replicated_partitions(2);
        if let Some(a) = acks {
            sc.with_acks(a);
        }
        add_producer(&mut sc);
        sc
    };
    assert_eq!(level_of(&cluster(None), "S2G016"), Some(Level::Warn));
    assert_eq!(level_of(&cluster(Some(AckMode::All)), "S2G016"), None);
}

#[test]
fn s2g017_unbatched_acks_all_queueing_collapse() {
    let cluster = |interval: SimDuration| {
        let mut sc = Scenario::new("t");
        sc.duration(SimTime::from_secs(10))
            .topic(TopicSpec::new("in"))
            .broker("bh1")
            .broker("bh2")
            .with_replicated_partitions(2)
            .with_acks(AckMode::All)
            .with_batching(false);
        sc.producer("ph", rate_source("in", interval, 64), Default::default());
        sc
    };
    // 1 ms between records, ~50 ms replication round trip: collapse.
    assert_eq!(
        level_of(&cluster(SimDuration::from_millis(1)), "S2G017"),
        Some(Level::Warn)
    );
    assert_eq!(
        level_of(&cluster(SimDuration::from_millis(500)), "S2G017"),
        None
    );
}

#[test]
fn s2g018_retention_below_checkpoint_interval() {
    let with_retention = |age: SimDuration| {
        let mut sc = base("t");
        add_job(&mut sc, "jb");
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(5)))
            .with_log_retention(Some(age), None);
        sc
    };
    assert_eq!(
        level_of(&with_retention(SimDuration::from_secs(1)), "S2G018"),
        Some(Level::Warn)
    );
    assert_eq!(
        level_of(&with_retention(SimDuration::from_secs(20)), "S2G018"),
        None
    );
}

#[test]
fn s2g019_batch_bytes_below_payload() {
    let with_cap = |cap: usize| {
        let mut sc = base("t");
        sc.batch_max_bytes(cap);
        sc.producer(
            "ph",
            rate_source("in", SimDuration::from_millis(100), 2048),
            Default::default(),
        );
        sc
    };
    assert_eq!(level_of(&with_cap(512), "S2G019"), Some(Level::Warn));
    assert_eq!(level_of(&with_cap(65536), "S2G019"), None);
}

#[test]
fn s2g020_read_committed_without_transactions() {
    let consumer = |read_committed: bool| {
        let mut sc = base("t");
        add_producer(&mut sc);
        let cfg = ConsumerConfig {
            read_committed,
            ..ConsumerConfig::default()
        };
        sc.consumer("ch", cfg, &["in"]);
        sc
    };
    assert_eq!(level_of(&consumer(true), "S2G020"), Some(Level::Warn));
    assert_eq!(level_of(&consumer(false), "S2G020"), None);
}

#[test]
fn s2g021_fault_after_run_ends() {
    let fault_at = |secs: u64| {
        let mut sc = base("t");
        add_producer(&mut sc);
        sc.faults(FaultPlan::new().crash_restart_broker(
            0,
            SimTime::from_secs(secs),
            SimDuration::from_secs(8),
        ));
        sc
    };
    // Base duration is 30 s.
    assert_eq!(level_of(&fault_at(40), "S2G021"), Some(Level::Warn));
    assert_eq!(level_of(&fault_at(10), "S2G021"), None);
}

#[test]
fn s2g022_client_on_internal_shuffle_topic() {
    let consumer_on = |topic: &str| {
        let mut sc = base("t");
        sc.spe_job(
            "jh",
            SpeJobSpec::new(
                "jb",
                vec!["in".into()],
                running_count_plan,
                SpeSinkSpec::Topic("out".into()),
                SpeConfig::default(),
            )
            .parallelism(2),
        );
        sc.consumer("ch", Default::default(), &[topic]);
        sc
    };
    // `running_count_plan` splits at its key_by, so stage 1's shuffle
    // topic `__shuffle.jb.1` exists — peeking at it warns.
    assert_eq!(
        level_of(&consumer_on("__shuffle.jb.1"), "S2G022"),
        Some(Level::Warn)
    );
    assert_eq!(level_of(&consumer_on("out"), "S2G022"), None);
}

#[test]
fn s2g023_replica_lag_below_fetch_interval() {
    let with_lag = |lag: SimDuration| {
        let cfg = BrokerConfig {
            replica_lag_max: lag,
            ..BrokerConfig::default()
        };
        let mut sc = Scenario::new("t");
        sc.duration(SimTime::from_secs(10))
            .topic(TopicSpec::new("in"))
            .broker_with("bh1", cfg.clone())
            .broker_with("bh2", cfg)
            .with_replicated_partitions(2);
        add_producer(&mut sc);
        sc
    };
    // Default replica_fetch_interval is 50 ms; a 60 ms lag bound flaps.
    assert_eq!(
        level_of(&with_lag(SimDuration::from_millis(60)), "S2G023"),
        Some(Level::Warn)
    );
    assert_eq!(
        level_of(&with_lag(SimDuration::from_secs(10)), "S2G023"),
        None
    );
}

#[test]
fn s2g024_crashing_sole_durability_store() {
    let with_replicas = |n: usize| {
        let mut sc = base("t");
        add_job(&mut sc, "jb");
        sc.store("sh", StoreConfig::default());
        sc.with_replicated_store(n);
        sc.with_durable_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(2)), "sh");
        sc.faults(FaultPlan::new().crash_restart_store(
            0,
            SimTime::from_secs(5),
            SimDuration::from_secs(5),
        ));
        sc
    };
    assert_eq!(level_of(&with_replicas(1), "S2G024"), Some(Level::Warn));
    assert_eq!(level_of(&with_replicas(3), "S2G024"), None);
}

#[test]
fn s2g025_restart_without_crash() {
    let mut sc = base("t");
    add_producer(&mut sc);
    sc.faults(FaultPlan::new().at(SimTime::from_secs(5), FaultAction::RestartBroker(0)));
    assert_eq!(level_of(&sc, "S2G025"), Some(Level::Warn));

    let mut clean = base("t");
    add_producer(&mut clean);
    clean.faults(FaultPlan::new().crash_restart_broker(
        0,
        SimTime::from_secs(5),
        SimDuration::from_secs(8),
    ));
    assert_eq!(level_of(&clean, "S2G025"), None);
}

#[test]
fn report_collects_every_violation_not_just_the_first() {
    let mut sc = Scenario::new("t");
    sc.duration(SimTime::from_secs(10))
        .topic(TopicSpec::new("in"))
        .topic(TopicSpec::new("out"));
    // No broker, two unknown topics, duplicate job names: all reported.
    sc.consumer("ch", Default::default(), &["nope-1"]);
    sc.consumer("ch2", Default::default(), &["nope-2"]);
    add_job(&mut sc, "jb");
    add_job(&mut sc, "jb");
    let report = sc.analyze();
    assert!(report.has("S2G001"), "missing no-broker: {report}");
    assert!(report.has("S2G004"), "missing duplicate job: {report}");
    assert_eq!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.code == "S2G002")
            .count(),
        2,
        "both unknown topics reported"
    );
    assert!(report.denials().count() >= 4);
}

#[test]
fn report_orders_denials_first_and_serializes() {
    let mut sc = base("t");
    add_producer(&mut sc);
    // One deny (unknown topic) and one warn (restart without crash).
    sc.consumer("ch", Default::default(), &["typo"]);
    sc.faults(FaultPlan::new().at(SimTime::from_secs(5), FaultAction::RestartBroker(0)));
    let report = sc.analyze();
    assert!(report.has_deny() && report.warnings().count() > 0);
    let first = &report.diagnostics[0];
    assert_eq!(first.level, Level::Deny, "denials sort first");

    let json = report.to_json();
    assert!(json.contains("\"code\":\"S2G002\""), "json: {json}");
    assert!(json.contains("\"level\":\"deny\""), "json: {json}");
    let tidy = report.to_tidy();
    assert!(
        tidy.lines().all(|l| l.split('\t').count() >= 4),
        "tidy lines are tab-separated: {tidy}"
    );
}

#[test]
fn run_refuses_deny_diagnostics() {
    let mut sc = base("t");
    sc.consumer("ch", Default::default(), &["typo"]);
    let err = sc.run().expect_err("deny diagnostics must gate run()");
    assert!(err.has("S2G002"), "error carries the diagnostics: {err}");
    assert!(
        err.to_string().contains("S2G002"),
        "display names the code: {err}"
    );
}

#[test]
fn run_deny_gate_can_be_overridden() {
    // A transactional sink without checkpointing is denied by default…
    let mut sc = Scenario::new("t");
    sc.duration(SimTime::from_secs(3))
        .topic(TopicSpec::new("in"))
        .topic(TopicSpec::new("out"))
        .broker("bh1");
    add_job(&mut sc, "jb");
    sc.with_transactional_sinks();
    assert!(sc.analyze().has_deny());
    // …but an explicit override lets the (well-defined, if pointless)
    // run proceed.
    sc.allow_deny_diagnostics();
    sc.run().expect("override runs the scenario anyway");
}

#[test]
fn analyze_is_pure_and_repeatable() {
    let mut sc = base("t");
    add_producer(&mut sc);
    add_job(&mut sc, "jb");
    let a = sc.analyze();
    let b = sc.analyze();
    assert_eq!(a.codes(), b.codes());
    assert!(a.is_clean(), "healthy scenario analyzes clean: {a}");
}

#[test]
fn every_shipped_app_scenario_analyzes_deny_free() {
    let day = SimTime::from_secs(40);
    let cases: Vec<(&str, Scenario)> = vec![
        (
            "word-count",
            word_count::scenario(
                10,
                SimDuration::from_millis(100),
                ComponentDelays::default(),
                day,
                7,
            ),
        ),
        (
            "word-count-recovery",
            word_count::recovery_scenario(50, SimDuration::from_millis(50), day, 7),
        ),
        (
            "word-count-parallel",
            word_count::parallel_recovery_scenario(50, SimDuration::from_millis(50), day, 7, 4),
        ),
        ("fraud", fraud::scenario(40, 20, day, 7)),
        ("maritime", maritime::scenario(20, day, 7)),
        ("ride-selection", ride_selection::scenario(20, day, 7)),
        ("sentiment", sentiment::scenario(20, day, 7)),
        ("traffic-monitor", traffic_monitor::scenario(4, day, 7)),
        ("video-analytics", video_analytics::scenario(2, 7)),
    ];
    for (name, sc) in cases {
        let report = sc.analyze();
        assert!(
            !report.has_deny(),
            "shipped scenario `{name}` has deny diagnostics:\n{report}"
        );
    }
}
