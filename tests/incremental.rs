//! Property-style seeded sweeps for the bounded-recovery subsystem:
//!
//! * restoring a base snapshot plus its delta chain must equal restoring a
//!   single full snapshot, for arbitrary keyed/windowed churn;
//! * a compacted partition log must present the same reader-visible state
//!   (latest committed record per key, every keyless record) as the raw
//!   log, and survive the encode/recover round trip unchanged.
//!
//! The offline build environment has no `proptest`, so each property runs
//! as a seeded randomized sweep over the workspace's deterministic
//! [`StdRng`]; failures reproduce exactly from the printed seed.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stream2gym::broker::{LogSegment, PartitionLog};
use stream2gym::proto::{LeaderEpoch, Offset, Record};
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{Event, Plan, Value, WindowAggregate, WindowAssigner, WindowJoin};

const CASES: usize = 64;

fn make_plan() -> Plan {
    Plan::new()
        .key_by("by-key", |e| e.key.clone().unwrap_or_else(|| "none".into()))
        .stateful("running", Value::Int(0), |state, e| {
            let n = state.as_int().unwrap_or(0) + 1;
            *state = Value::Int(n);
            vec![e.clone()]
        })
        .window(WindowAggregate::count(
            "per-window",
            WindowAssigner::Tumbling(SimDuration::from_secs(5)),
        ))
}

fn make_join_plan() -> Plan {
    Plan::new().join(WindowJoin::new(
        "pair",
        WindowAssigner::Tumbling(SimDuration::from_secs(5)),
        |l, r| Value::List(vec![l.value.clone(), r.value.clone()]),
    ))
}

fn random_batch(rng: &mut StdRng, step: usize) -> Vec<Event> {
    let n = rng.gen_range(0..6);
    (0..n)
        .map(|i| {
            // Event time mostly advances, with occasional stragglers, so
            // windows keep opening and closing (churn + deletions).
            let ts_ms = (step as u64) * 700 + rng.gen_range(0..900u64);
            let key = format!("k{}", rng.gen_range(0..7u32));
            let mut e = Event::new(
                Value::Int((step * 10 + i) as i64),
                SimTime::from_millis(ts_ms),
            )
            .with_key(key);
            e.source = rng.gen_range(0..2u8);
            e
        })
        .collect()
}

/// Drives `make()` plans through random churn, captures one base plus a
/// delta per step on a second identical plan, and asserts the chained
/// restore equals the live plan's full state.
fn chain_restore_equals_full(make: fn() -> Plan, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live = make();
    let steps = rng.gen_range(4..12);
    let base_at = rng.gen_range(0..steps / 2);
    let mut base: Option<(Vec<Option<Value>>, u64, u64)> = None;
    let mut deltas: Vec<(Vec<Option<Value>>, u64, u64)> = Vec::new();
    for step in 0..steps {
        let batch = random_batch(&mut rng, step);
        live.run_batch(SimTime::from_millis(step as u64 * 700), batch);
        if step == base_at {
            let snap = live.snapshot_state();
            live.mark_clean();
            base = Some(snap);
        } else if step > base_at {
            let (ri, ro) = live.record_counts();
            deltas.push((live.snapshot_delta(), ri, ro));
        }
    }
    let (base_state, base_in, base_out) = base.expect("base captured");
    let mut restored = make();
    restored.restore_state(base_state, base_in, base_out);
    for (delta, ri, ro) in deltas {
        restored.apply_delta(delta, ri, ro);
    }
    let (live_state, live_in, live_out) = live.snapshot_state();
    let (rest_state, rest_in, rest_out) = restored.snapshot_state();
    assert_eq!(
        rest_state, live_state,
        "seed {seed}: base+deltas restore must equal the live state"
    );
    assert_eq!((rest_in, rest_out), (live_in, live_out), "seed {seed}");
}

#[test]
fn chained_restore_equals_full_restore_for_keyed_and_windowed_state() {
    for case in 0..CASES {
        chain_restore_equals_full(make_plan, 1_000 + case as u64);
    }
}

#[test]
fn chained_restore_equals_full_restore_for_window_joins() {
    for case in 0..CASES {
        chain_restore_equals_full(make_join_plan, 9_000 + case as u64);
    }
}

/// Reader-visible fold of a committed log: last value (and its offset) per
/// key, plus every committed keyless record.
type ReaderState = (BTreeMap<Vec<u8>, (u64, Vec<u8>)>, Vec<Vec<u8>>);

/// What a consumer folding the committed log ends up with: the last
/// committed value per key, plus every committed keyless record.
fn reader_visible(log: &PartitionLog) -> ReaderState {
    let mut latest: BTreeMap<Vec<u8>, (u64, Vec<u8>)> = BTreeMap::new();
    let mut keyless = Vec::new();
    for e in log.read_entries(Offset::ZERO, usize::MAX, true) {
        match &e.record.key {
            Some(k) => {
                latest.insert(k.to_vec(), (e.offset.value(), e.record.value.to_vec()));
            }
            None => keyless.push(e.record.value.to_vec()),
        }
    }
    (latest, keyless)
}

#[test]
fn compacted_log_presents_identical_reader_visible_state() {
    for case in 0..CASES {
        let seed = 40_000 + case as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = PartitionLog::with_segment_max(rng.gen_range(2..6));
        let n = rng.gen_range(10..120);
        for i in 0..n {
            let record = if rng.gen_range(0..5) == 0 {
                Record::keyless(format!("v{i}"), SimTime::from_millis(i))
            } else {
                let key = format!("k{}", rng.gen_range(0..9u32));
                Record::new(key, format!("v{i}"), SimTime::from_millis(i))
            };
            log.append(LeaderEpoch(0), record);
        }
        let hw = rng.gen_range(0..=n);
        log.advance_high_watermark(Offset(hw));
        let raw = log.clone();
        let outcome = log.compact();
        assert_eq!(
            reader_visible(&log),
            reader_visible(&raw),
            "seed {seed}: compaction changed the reader-visible state"
        );
        assert_eq!(log.log_end(), raw.log_end(), "seed {seed}: LEO moved");
        assert_eq!(
            log.high_watermark(),
            raw.high_watermark(),
            "seed {seed}: HW moved"
        );
        assert!(
            log.retained_bytes() + outcome.reclaimed_bytes as usize == raw.retained_bytes(),
            "seed {seed}: byte accounting broke"
        );

        // The compacted log must survive the flush/recover round trip with
        // identical reader-visible state.
        let bases: Vec<u64> = log
            .segments()
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| s.base_offset().value())
            .collect();
        let segments: Vec<LogSegment> = log
            .segments()
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| LogSegment::decode(&s.encode()).expect("segment decodes"))
            .collect();
        let rebuilt = PartitionLog::from_recovered_segments(
            segments,
            log.high_watermark(),
            log.log_start(),
            &bases,
            4,
        );
        assert_eq!(
            reader_visible(&rebuilt),
            reader_visible(&log),
            "seed {seed}: recovery changed the reader-visible state"
        );
        assert_eq!(rebuilt.log_end(), log.log_end(), "seed {seed}");
    }
}

#[test]
fn retention_only_drops_whole_committed_prefixes() {
    for case in 0..CASES {
        let seed = 70_000 + case as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = PartitionLog::with_segment_max(rng.gen_range(2..5));
        let n = rng.gen_range(8..60);
        for i in 0..n {
            log.append(
                LeaderEpoch(0),
                Record::keyless(format!("v{i}"), SimTime::from_secs(i)),
            );
        }
        let hw = rng.gen_range(0..=n);
        log.advance_high_watermark(Offset(hw));
        let raw = log.clone();
        let cutoff = SimDuration::from_secs(rng.gen_range(1..40));
        let now = SimTime::from_secs(n + 5);
        let outcome = log.apply_retention(now, Some(cutoff), None);
        // Retention never reaches at or past the high watermark, and what
        // remains is exactly the raw log's suffix from the new start.
        assert!(log.log_start() <= log.high_watermark(), "seed {seed}");
        let kept: Vec<u64> = log
            .read_entries(Offset::ZERO, usize::MAX, false)
            .iter()
            .map(|e| e.offset.value())
            .collect();
        let expected: Vec<u64> = raw
            .read_entries(log.log_start(), usize::MAX, false)
            .iter()
            .map(|e| e.offset.value())
            .collect();
        assert_eq!(kept, expected, "seed {seed}: retention cut mid-suffix");
        assert_eq!(
            outcome.removed_records as usize + log.len(),
            raw.len(),
            "seed {seed}: record accounting broke"
        );
    }
}
