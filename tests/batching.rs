//! The batch-first record hot path: codec properties, batched-vs-unbatched
//! output equivalence through a crash, and the zero-copy regression gate.
//!
//! The offline build environment has no `proptest`, so the codec property
//! runs as a seeded randomized sweep over the workspace's deterministic
//! [`StdRng`]; failures reproduce exactly.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stream2gym::broker::{CollectingSink, ConsumerProcess, ProducerConfig, TopicSpec};
use stream2gym::core::{MonitoredSink, RunResult, Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use stream2gym::proto::{Compression, Offset, ProducerId, Record, RecordBatch};
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, Event, SpeConfig};

const CASES: usize = 200;

fn arb_record(rng: &mut StdRng) -> Record {
    let key = if rng.gen_range(0..3) == 0 {
        None
    } else {
        let len = rng.gen_range(0..24usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        Some(bytes.into())
    };
    let len = rng.gen_range(0..200usize);
    let value: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
    Record {
        key,
        value: value.into(),
        // Deliberately unordered timestamps: the frame's signed timestamp
        // deltas must survive records that go backwards in time.
        timestamp: SimTime::from_nanos(rng.gen_range(0..u64::MAX / 4)),
        producer: ProducerId(rng.gen_range(0..64)),
        producer_epoch: rng.gen_range(0..16),
        producer_seq: rng.gen_range(0..1_000_000),
    }
}

/// The batch frame codec round-trips arbitrary record sets exactly —
/// empty, single-record, and max-size batches, compression on and off —
/// and rejects every strict truncation instead of mis-decoding it.
#[test]
fn batch_frame_codec_roundtrip_sweep() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    for case in 0..CASES {
        let n = match case % 8 {
            0 => 0,
            1 => 1,
            2 => 500, // the producer's default batch_max_records ceiling
            _ => rng.gen_range(2..120),
        };
        let records: Vec<Record> = (0..n).map(|_| arb_record(&mut rng)).collect();
        let compression = if rng.gen_range(0..2) == 0 {
            Compression::None
        } else {
            Compression::Lz4
        };
        let batch = RecordBatch::from_records(records.clone()).with_compression(compression);
        let base = Offset(rng.gen_range(0..1_000_000));
        let buf = batch.encode_frame(base);
        let (back, back_base) = RecordBatch::decode_frame(&buf).expect("round trip");
        assert_eq!(back_base, base, "case {case}");
        assert_eq!(back.compression(), compression, "case {case}");
        assert_eq!(back.records(), &records[..], "case {case}");

        // Every strict prefix must fail cleanly: each frame byte is load-
        // bearing (length prefixes, varints, payload bytes), so a cut
        // anywhere leaves an undecodable buffer — never a silent partial
        // batch.
        let cut = rng.gen_range(0..buf.len());
        assert!(
            RecordBatch::decode_frame(&buf[..cut]).is_none(),
            "case {case}: truncation at {cut}/{} must not decode",
            buf.len()
        );
    }
}

/// Compression only ever shrinks the wire footprint, never the in-memory
/// encoding, and an empty batch stays empty under both codecs.
#[test]
fn compressed_wire_len_never_exceeds_plain() {
    let mut rng = StdRng::seed_from_u64(0x17A4);
    for _ in 0..CASES {
        let n = rng.gen_range(0..64usize);
        let records: Vec<Record> = (0..n).map(|_| arb_record(&mut rng)).collect();
        let plain = RecordBatch::from_records(records.clone());
        let packed = RecordBatch::from_records(records).with_compression(Compression::Lz4);
        assert!(packed.wire_len() <= plain.wire_len());
        assert_eq!(packed.encoded_len(), plain.encoded_len());
    }
}

/// Decodes the committed sink output into per-key count sequences,
/// preserving each key's update order. Exactly-once shows as the gapless
/// sequence `1, 2, ..., n` per key: a duplicate repeats a value, a loss
/// skips one.
fn per_key_sequences(result: &RunResult) -> BTreeMap<String, Vec<i64>> {
    let pid = result.consumer_pids[0];
    let cp = result
        .sim
        .process_ref::<ConsumerProcess>(pid)
        .expect("consumer");
    let monitored = cp.sink_as::<MonitoredSink>().expect("monitored sink");
    let sink = (monitored.inner() as &dyn std::any::Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting sink");
    let mut map: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for (_, _, rec) in &sink.deliveries {
        let e = Event::from_bytes(&rec.value).expect("SPE output decodes");
        map.entry(e.key.unwrap_or_default())
            .or_default()
            .push(e.value.as_int().expect("count value"));
    }
    map
}

/// Runs a keyed parallelism-2 counting job with a mid-run instance crash
/// and exactly-once checkpoints + transactional sinks, returning the
/// per-key committed output sequences plus the run's shared-batch
/// deep-copy count.
fn run_keyed_crash_job(batching: bool) -> (BTreeMap<String, Vec<i64>>, u64) {
    let records = 300u64;
    let interval = SimDuration::from_millis(5);
    let produce_ms = records * 5 + 500;
    let mut sc = Scenario::new(if batching { "batched" } else { "unbatched" });
    sc.seed(42)
        .duration(SimTime::from_millis(produce_ms + 12_000))
        .topic(TopicSpec::new("events").partitions(4))
        .topic(TopicSpec::new("counts"));
    sc.broker("h0");
    sc.producer(
        "hp",
        SourceSpec::Custom {
            topics: vec!["events".into()],
            make: Box::new(move || {
                Box::new(
                    stream2gym::broker::RateSource::new("events", records, interval)
                        .payload_bytes(64)
                        .key_space(16),
                )
            }),
        },
        ProducerConfig::default(),
    );
    sc.spe_job(
        "hs",
        SpeJobSpec::new(
            "batchcount",
            vec!["events".into()],
            || {
                use stream2gym::spe::{Event, Plan, Value};
                Plan::new()
                    .key_by("by-key", |e| e.key.clone().unwrap_or_default())
                    .stateful("count", Value::Int(0), |state, e| {
                        let n = state.as_int().unwrap_or(0) + 1;
                        *state = Value::Int(n);
                        vec![Event {
                            value: Value::Int(n),
                            ..e.clone()
                        }]
                    })
            },
            SpeSinkSpec::Topic("counts".into()),
            SpeConfig {
                batch_interval: SimDuration::from_millis(250),
                scheduling_overhead: SimDuration::from_millis(10),
                cpu_per_record: SimDuration::from_millis(2),
                startup_cpu: SimDuration::from_millis(200),
                max_batch_records: 64,
                ..SpeConfig::default()
            },
        )
        .parallelism(2),
    );
    sc.consumer("hc", Default::default(), &["counts"]);
    sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
    // Committed-only sink output: without the transactional sink, outputs
    // buffered in the crashed instance's producer die with it (at-most-once
    // delivery for those records) and the two runs could legitimately
    // diverge by whatever happened to be in flight.
    sc.with_transactional_sinks();
    sc.with_batching(batching);
    sc.faults(stream2gym::net::FaultPlan::new().crash_restart(
        "batchcount/1/1",
        SimTime::from_millis(produce_ms / 2),
        SimDuration::from_millis(800),
    ));
    let result = sc.run().expect("valid scenario");
    (
        per_key_sequences(&result),
        result.report.shared_batch_copies,
    )
}

/// Batching is a transport optimization, not a semantics change: a keyed
/// parallel job crashed mid-run commits exactly the same output with
/// batching on (the default) and off (one record per produce request) —
/// same keys, same per-key update sequences, every input counted exactly
/// once.
#[test]
fn batched_and_unbatched_outputs_match_through_crash() {
    let (batched, batched_copies) = run_keyed_crash_job(true);
    let (unbatched, unbatched_copies) = run_keyed_crash_job(false);
    let total: usize = batched.values().map(Vec::len).sum();
    assert_eq!(
        total, 300,
        "every input record must be counted exactly once in committed output"
    );
    for (key, seq) in &batched {
        let expect: Vec<i64> = (1..=seq.len() as i64).collect();
        assert_eq!(seq, &expect, "{key}: committed counts must be gapless");
    }
    assert_eq!(
        batched, unbatched,
        "batched and unbatched runs must commit the same output"
    );
    // The zero-copy invariant holds in both modes and through the crash.
    assert_eq!(batched_copies, 0, "batched run must not deep-copy batches");
    assert_eq!(
        unbatched_copies, 0,
        "unbatched run must not deep-copy batches"
    );
}

/// The zero-copy regression gate: a plain produce→consume run performs no
/// shared-batch deep copies, and the count is exported both on the report
/// and as the `runtime/shared_batch_copies` telemetry counter.
#[test]
fn data_plane_performs_no_shared_batch_copies() {
    let mut sc = Scenario::new("zerocopy");
    sc.seed(7)
        .duration(SimTime::from_secs(5))
        .topic(TopicSpec::new("t"));
    sc.broker("h0");
    sc.producer(
        "hp",
        SourceSpec::Rate {
            topic: "t".into(),
            count: 500,
            interval: SimDuration::from_millis(2),
            payload: 64,
        },
        ProducerConfig::default(),
    );
    sc.consumer("hc", Default::default(), &["t"]);
    let result = sc.run().expect("valid scenario");
    assert_eq!(result.report.shared_batch_copies, 0);
    assert_eq!(
        result
            .telemetry
            .registry()
            .counter("runtime", "shared_batch_copies"),
        Some(0),
        "the counter must be exported even when zero"
    );
    // The monitor saw every record without cloning payloads per subscriber.
    assert_eq!(result.monitor.borrow().for_topic("t").count(), 500);
}
