//! Telemetry subsystem: seeded runs stay deterministic with telemetry
//! enabled (including a fault-heavy run), toggling telemetry never changes
//! what a run does, and the registry/series/histogram edge cases hold.

use stream2gym::apps::word_count::recovery_scenario;
use stream2gym::core::Scenario;
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::CheckpointCfg;
use stream2gym::telemetry::{validate_chrome_trace, Histogram, Registry, SeriesStore, Telemetry};

/// A checkpointed word-count run with a worker crash and restart mid-run —
/// the fault-heavy workload the determinism assertions run against.
fn fault_heavy(seed: u64) -> Scenario {
    let mut sc = recovery_scenario(
        100,
        SimDuration::from_millis(50),
        SimTime::from_secs(25),
        seed,
    );
    sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
    sc.telemetry_interval(SimDuration::from_millis(200));
    sc.with_telemetry_trace(true);
    sc.faults(FaultPlan::new().crash_restart(
        "wordcount",
        SimTime::from_millis(3_700),
        SimDuration::from_millis(800),
    ));
    sc
}

#[test]
fn same_seed_runs_emit_identical_telemetry() {
    let run = |seed: u64| {
        let result = fault_heavy(seed).run().expect("runs");
        (result.telemetry.tidy_csv(), result.telemetry.chrome_json())
    };
    let (csv_a, trace_a) = run(7);
    let (csv_b, trace_b) = run(7);
    assert_eq!(csv_a, csv_b, "same seed, same metric time series");
    assert_eq!(trace_a, trace_b, "same seed, same trace event sequence");
    assert!(
        csv_a.lines().count() > 50,
        "the sampler must have recorded a real series, got:\n{csv_a}"
    );
    let summary = validate_chrome_trace(&trace_a).expect("well-formed trace");
    assert!(summary.events > 0, "the tracer must have collected events");
    // The fault and every recovery phase appear in the trace.
    for marker in ["fault:crash", "fault:restart", "recovery:first_batch"] {
        assert!(trace_a.contains(marker), "trace must contain {marker}");
    }
}

#[test]
fn telemetry_toggle_does_not_change_the_run() {
    // The sampler is a pure observer spawned after every other process, so
    // switching it (or the tracer) on and off must leave the simulated
    // behavior — deliveries, recovery, checkpoints — byte-identical.
    let run = |telemetry: bool, trace: bool| {
        let mut sc = fault_heavy(11);
        sc.with_telemetry(telemetry);
        sc.with_telemetry_trace(trace);
        let result = sc.run().expect("runs");
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.spe,
            result.delivery_matrix(0),
            result.report.brokers,
        )
    };
    let on = run(true, true);
    assert_eq!(on, run(true, false), "tracer toggle must not shift the run");
    assert_eq!(
        on,
        run(false, false),
        "sampler toggle must not shift the run"
    );
}

#[test]
fn run_report_surfaces_sampled_series() {
    let result = fault_heavy(3).run().expect("runs");
    let series = &result.report.metric_series;
    assert!(!series.is_empty(), "report must carry the sampled series");
    let find = |name: &str| {
        series
            .iter()
            .find(|s| s.name == name || s.name.starts_with(name))
            .unwrap_or_else(|| panic!("series `{name}` missing from the report"))
    };
    // One signal per subsystem: broker, SPE worker, checkpoint
    // coordinator, consumer client, and the host CPU sampler.
    for name in [
        "records_appended",
        "records_in",
        "checkpoints",
        "lag/",
        "cpu_occupancy",
    ] {
        let s = find(name);
        assert!(
            !s.points.is_empty(),
            "series `{}`/`{}` sampled no points",
            s.scope,
            s.name
        );
    }
}

#[test]
fn unregistered_metrics_read_as_none() {
    let reg = Registry::new();
    assert_eq!(reg.counter("nowhere", "nothing"), None);
    assert_eq!(reg.gauge("nowhere", "nothing"), None);
    assert!(reg.histogram("nowhere", "nothing").is_none());
    assert!(reg.get("nowhere", "nothing").is_none());

    // A registered metric of one kind never answers for another.
    let mut reg = Registry::new();
    reg.counter_add("b", "c", 1);
    assert_eq!(reg.counter("b", "c"), Some(1));
    assert_eq!(reg.gauge("b", "c"), None);
    assert!(reg.histogram("b", "c").is_none());
}

#[test]
fn empty_series_store_is_well_behaved() {
    let store = SeriesStore::new();
    assert!(store.get("any", "thing").is_none());
    assert!(store.all().is_empty());
    assert_eq!(
        store.to_tidy_csv().lines().next(),
        Some("t_s,scope,metric,value")
    );

    // A fresh handle exports header-only CSV and an empty (but valid)
    // Chrome trace.
    let tele = Telemetry::new();
    assert_eq!(tele.tidy_csv().lines().count(), 1);
    let summary = validate_chrome_trace(&tele.chrome_json()).expect("valid empty trace");
    assert_eq!(summary.events, 0);
}

#[test]
fn histogram_overflow_bucket_keeps_quantiles_sane() {
    let mut h = Histogram::latency_seconds();
    assert!(
        h.quantile(0.5).is_none(),
        "empty histogram has no quantiles"
    );
    assert!(h.stats().is_none(), "empty histogram has no stats");

    // 99 in-range samples plus one far beyond the last bound (~100 s).
    for _ in 0..99 {
        h.observe(0.010);
    }
    h.observe(1.0e6);
    assert_eq!(h.count(), 100);
    assert_eq!(h.overflow_count(), 1, "the straggler lands in overflow");
    let stats = h.stats().expect("non-empty");
    assert_eq!(stats.max, 1.0e6, "overflow samples still track the max");
    assert!(
        stats.p50 < 0.02,
        "median stays in range despite overflow, got {}",
        stats.p50
    );
    assert_eq!(
        h.quantile(1.0),
        Some(1.0e6),
        "the top quantile is attributed to the recorded max"
    );
}
