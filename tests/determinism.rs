//! Determinism: identical seeds reproduce identical runs — the property
//! that makes emulated experiments replayable and debuggable.

use s2g_bench::{fig6_run, Scale};
use stream2gym::apps::word_count::{self, recovery_scenario, ComponentDelays};
use stream2gym::broker::CoordinationMode;
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, CheckpointMode};

#[test]
fn word_count_runs_reproduce_exactly() {
    let run = |seed: u64| {
        let sc = word_count::scenario(
            20,
            SimDuration::from_millis(100),
            ComponentDelays::default(),
            SimTime::from_secs(20),
            seed,
        );
        let result = sc.run().expect("runs");
        let monitor = result.monitor.borrow();
        let lat: Vec<(u64, u64)> = monitor
            .latency_series(0, "avg-words-per-topic")
            .iter()
            .map(|(t, l)| (t.as_nanos(), l.as_nanos()))
            .collect();
        (result.report.sim_stats.events_processed, lat)
    };
    assert_eq!(run(5), run(5), "same seed, same run");
    // (The word-count workload itself is deterministic, so different seeds
    // may legitimately coincide — seed sensitivity is asserted on the
    // stochastic partition workload below.)
}

#[test]
fn crash_recovery_runs_reproduce_exactly() {
    let run = |seed: u64, mode: CheckpointMode| {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.with_checkpointing(CheckpointCfg::new(SimDuration::from_secs(1), mode));
        sc.faults(FaultPlan::new().crash_restart(
            "wordcount",
            SimTime::from_millis(3_700),
            SimDuration::from_millis(800),
        ));
        let result = sc.run().expect("runs");
        let matrix = result.delivery_matrix(0);
        let spe = result.report.spe["wordcount"].clone();
        let lat: Vec<(u64, u64)> = result
            .monitor
            .borrow()
            .latency_series(0, "counts")
            .iter()
            .map(|(t, l)| (t.as_nanos(), l.as_nanos()))
            .collect();
        (
            matrix,
            lat,
            spe.recovery,
            spe.checkpoints,
            spe.record_counts,
            result.report.sim_stats,
        )
    };
    for mode in [CheckpointMode::ExactlyOnce, CheckpointMode::AtLeastOnce] {
        assert_eq!(
            run(11, mode),
            run(11, mode),
            "same seed must reproduce the crash/recover run exactly ({mode:?})"
        );
    }
}

#[test]
fn partition_experiment_reproduces_exactly() {
    let run = |seed: u64| {
        let d = fig6_run(CoordinationMode::Zk, 3, Scale::Quick, seed);
        let topic_mix: Vec<String> = d
            .matrix
            .messages
            .iter()
            .map(|(t, _, _)| t.clone())
            .collect();
        (
            topic_mix,
            d.lost_messages,
            d.truncated_records,
            d.matrix.delivery_rate().to_bits(),
        )
    };
    assert_eq!(run(9), run(9), "same seed, same partition run");
    // The random-topic producers make different seeds visibly different.
    assert_ne!(
        run(9).0,
        run(10).0,
        "different seeds produce different message mixes"
    );
}

#[test]
fn broker_bounce_runs_reproduce_exactly() {
    use stream2gym::store::StoreConfig;
    let run = |seed: u64, durable_store: bool| {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
        if durable_store {
            sc.store("h6", StoreConfig::default());
            sc.with_durable_broker("h6");
        } else {
            sc.with_recoverable_broker();
        }
        sc.faults(FaultPlan::new().crash_restart_broker(
            0,
            SimTime::from_millis(3_700),
            SimDuration::from_millis(1_200),
        ));
        let result = sc.run().expect("runs");
        let broker = result.report.brokers[0].clone();
        (
            result.delivery_matrix(0),
            broker.recovery,
            broker.stats.log_flushes,
            broker.stats.records_appended,
            broker.stats.duplicates_filtered,
            result.report.sim_stats,
        )
    };
    for durable in [false, true] {
        assert_eq!(
            run(13, durable),
            run(13, durable),
            "same seed must reproduce the broker-bounce run exactly (durable_store={durable})"
        );
    }
}

/// The CI determinism gate: a fault-heavy scenario — producer stub crash,
/// SPE worker crash, broker bounce, and a network partition, with
/// incremental checkpointing and log compaction both on — run twice with
/// the same seed, diffing the full run reports.
#[test]
fn fault_heavy_runs_reproduce_exactly() {
    let run = |seed: u64| -> String {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.with_incremental_checkpointing(
            CheckpointCfg::exactly_once(SimDuration::from_secs(1)),
            4,
        );
        sc.with_recoverable_broker();
        sc.with_log_compaction();
        sc.faults(
            FaultPlan::new()
                .crash_restart(
                    "producer-0",
                    SimTime::from_millis(2_000),
                    SimDuration::from_millis(700),
                )
                .crash_restart(
                    "wordcount",
                    SimTime::from_millis(4_300),
                    SimDuration::from_millis(800),
                )
                .crash_restart_broker(
                    0,
                    SimTime::from_millis(9_000),
                    SimDuration::from_millis(1_200),
                )
                .transient_disconnect("h5", SimTime::from_secs(13), SimDuration::from_secs(2)),
        );
        let result = sc.run().expect("runs");
        // Diff the whole observable surface: producer/consumer/broker/SPE
        // reports, the delivery matrix, and the kernel counters.
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.consumers,
            result.report.brokers,
            result.report.spe,
            result.delivery_matrix(0),
            result.report.sim_stats,
        )
    };
    let a = run(17);
    let b = run(17);
    assert_eq!(a, b, "same seed must reproduce the fault-heavy run exactly");
    assert_ne!(
        a,
        run(18),
        "a different seed must shift the fault-heavy run"
    );
}

/// The replicated-store half of the determinism gate: transactional sinks
/// over a 3-replica store group, with the group primary crashed and
/// restarted mid-run (failover, client rotation, op-log resync) plus an SPE
/// worker crash — run twice with the same seed, diffing the full run
/// reports including the store-replica reports.
#[test]
fn store_failover_runs_reproduce_exactly() {
    use stream2gym::store::StoreConfig;
    let run = |seed: u64| -> String {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.store("h6", StoreConfig::default());
        sc.with_replicated_store(3);
        sc.with_durable_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)), "h6");
        sc.with_transactional_sinks();
        sc.faults(
            FaultPlan::new()
                .crash_restart_store(0, SimTime::from_millis(3_900), SimDuration::from_secs(3))
                .crash_restart(
                    "wordcount",
                    SimTime::from_millis(9_300),
                    SimDuration::from_millis(800),
                ),
        );
        let result = sc.run().expect("runs");
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.consumers,
            result.report.brokers,
            result.report.stores,
            result.report.spe,
            result.report.sim_stats,
        )
    };
    let a = run(29);
    let b = run(29);
    assert_eq!(
        a, b,
        "same seed must reproduce the store-failover run exactly"
    );
}

/// The parallel half of the determinism gate: a `parallelism(4)` keyed job
/// with transactional sinks, one keyed-stage instance crashed and
/// restarted, plus a broker bounce — run twice with the same seed, diffing
/// the full run reports including every stage instance's.
#[test]
fn parallel_fault_runs_reproduce_exactly() {
    use stream2gym::apps::word_count::parallel_recovery_scenario;
    let run = |seed: u64| -> String {
        let mut sc = parallel_recovery_scenario(
            120,
            SimDuration::from_millis(40),
            SimTime::from_secs(25),
            seed,
            4,
        );
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
        sc.with_transactional_sinks();
        sc.with_recoverable_broker();
        sc.faults(
            FaultPlan::new()
                .crash_restart(
                    "wordcount/1/1",
                    SimTime::from_millis(3_300),
                    SimDuration::from_millis(800),
                )
                .crash_restart_broker(
                    0,
                    SimTime::from_millis(8_000),
                    SimDuration::from_millis(1_200),
                ),
        );
        let result = sc.run().expect("runs");
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.brokers,
            result.report.spe,
            result.report.spe_instances,
            result.delivery_matrix(0),
            result.report.sim_stats,
        )
    };
    let a = run(31);
    let b = run(31);
    assert_eq!(a, b, "same seed must reproduce the parallel run exactly");
    assert_ne!(a, run(32), "a different seed must shift the parallel run");
}

/// Telemetry determinism: with the sampler on a fine interval and the
/// causal tracer enabled, a fault-heavy seeded run emits byte-identical
/// metric time series and trace event sequences every time — and enabling
/// telemetry never shifts the simulation itself (the sampler is a pure
/// observer spawned after every other process, so pids are unchanged).
#[test]
fn telemetry_runs_reproduce_exactly() {
    let run = |seed: u64, trace: bool| {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
        sc.telemetry_interval(SimDuration::from_millis(200));
        sc.with_telemetry_trace(trace);
        sc.faults(FaultPlan::new().crash_restart(
            "wordcount",
            SimTime::from_millis(3_700),
            SimDuration::from_millis(800),
        ));
        let result = sc.run().expect("runs");
        let behavior = format!(
            "{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.spe,
            result.delivery_matrix(0)
        );
        (
            result.telemetry.tidy_csv(),
            result.telemetry.chrome_json(),
            behavior,
        )
    };
    let (csv_a, trace_a, behavior_a) = run(19, true);
    let (csv_b, trace_b, behavior_b) = run(19, true);
    assert_eq!(csv_a, csv_b, "same seed, same metric time series");
    assert_eq!(trace_a, trace_b, "same seed, same trace events");
    assert_eq!(behavior_a, behavior_b, "same seed, same behavior");
    assert!(
        trace_a.contains("fault:crash"),
        "fault markers in the trace"
    );
    // Tracing off must leave the simulated behavior untouched.
    let (_, _, behavior_off) = run(19, false);
    assert_eq!(
        behavior_a, behavior_off,
        "toggling the tracer must not change the run"
    );
}
