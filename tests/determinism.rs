//! Determinism: identical seeds reproduce identical runs — the property
//! that makes emulated experiments replayable and debuggable.

use s2g_bench::{fig6_run, Scale};
use stream2gym::apps::word_count::{self, recovery_scenario, ComponentDelays};
use stream2gym::broker::CoordinationMode;
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, CheckpointMode};

#[test]
fn word_count_runs_reproduce_exactly() {
    let run = |seed: u64| {
        let sc = word_count::scenario(
            20,
            SimDuration::from_millis(100),
            ComponentDelays::default(),
            SimTime::from_secs(20),
            seed,
        );
        let result = sc.run().expect("runs");
        let monitor = result.monitor.borrow();
        let lat: Vec<(u64, u64)> = monitor
            .latency_series(0, "avg-words-per-topic")
            .iter()
            .map(|(t, l)| (t.as_nanos(), l.as_nanos()))
            .collect();
        (result.report.sim_stats.events_processed, lat)
    };
    assert_eq!(run(5), run(5), "same seed, same run");
    // (The word-count workload itself is deterministic, so different seeds
    // may legitimately coincide — seed sensitivity is asserted on the
    // stochastic partition workload below.)
}

#[test]
fn crash_recovery_runs_reproduce_exactly() {
    let run = |seed: u64, mode: CheckpointMode| {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.with_checkpointing(CheckpointCfg::new(SimDuration::from_secs(1), mode));
        sc.faults(FaultPlan::new().crash_restart(
            "wordcount",
            SimTime::from_millis(3_700),
            SimDuration::from_millis(800),
        ));
        let result = sc.run().expect("runs");
        let matrix = result.delivery_matrix(0);
        let spe = result.report.spe["wordcount"].clone();
        let lat: Vec<(u64, u64)> = result
            .monitor
            .borrow()
            .latency_series(0, "counts")
            .iter()
            .map(|(t, l)| (t.as_nanos(), l.as_nanos()))
            .collect();
        (
            matrix,
            lat,
            spe.recovery,
            spe.checkpoints,
            spe.record_counts,
            result.report.sim_stats,
        )
    };
    for mode in [CheckpointMode::ExactlyOnce, CheckpointMode::AtLeastOnce] {
        assert_eq!(
            run(11, mode),
            run(11, mode),
            "same seed must reproduce the crash/recover run exactly ({mode:?})"
        );
    }
}

#[test]
fn partition_experiment_reproduces_exactly() {
    let run = |seed: u64| {
        let d = fig6_run(CoordinationMode::Zk, 3, Scale::Quick, seed);
        let topic_mix: Vec<String> = d
            .matrix
            .messages
            .iter()
            .map(|(t, _, _)| t.clone())
            .collect();
        (
            topic_mix,
            d.lost_messages,
            d.truncated_records,
            d.matrix.delivery_rate().to_bits(),
        )
    };
    assert_eq!(run(9), run(9), "same seed, same partition run");
    // The random-topic producers make different seeds visibly different.
    assert_ne!(
        run(9).0,
        run(10).0,
        "different seeds produce different message mixes"
    );
}

#[test]
fn broker_bounce_runs_reproduce_exactly() {
    use stream2gym::store::StoreConfig;
    let run = |seed: u64, durable_store: bool| {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
        if durable_store {
            sc.store("h6", StoreConfig::default());
            sc.with_durable_broker("h6");
        } else {
            sc.with_recoverable_broker();
        }
        sc.faults(FaultPlan::new().crash_restart_broker(
            0,
            SimTime::from_millis(3_700),
            SimDuration::from_millis(1_200),
        ));
        let result = sc.run().expect("runs");
        let broker = result.report.brokers[0].clone();
        (
            result.delivery_matrix(0),
            broker.recovery,
            broker.stats.log_flushes,
            broker.stats.records_appended,
            broker.stats.duplicates_filtered,
            result.report.sim_stats,
        )
    };
    for durable in [false, true] {
        assert_eq!(
            run(13, durable),
            run(13, durable),
            "same seed must reproduce the broker-bounce run exactly (durable_store={durable})"
        );
    }
}

/// The CI determinism gate: a fault-heavy scenario — producer stub crash,
/// SPE worker crash, broker bounce, and a network partition, with
/// incremental checkpointing and log compaction both on — run twice with
/// the same seed, diffing the full run reports.
#[test]
fn fault_heavy_runs_reproduce_exactly() {
    let run = |seed: u64| -> String {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.with_incremental_checkpointing(
            CheckpointCfg::exactly_once(SimDuration::from_secs(1)),
            4,
        );
        sc.with_recoverable_broker();
        sc.with_log_compaction();
        sc.faults(
            FaultPlan::new()
                .crash_restart(
                    "producer-0",
                    SimTime::from_millis(2_000),
                    SimDuration::from_millis(700),
                )
                .crash_restart(
                    "wordcount",
                    SimTime::from_millis(4_300),
                    SimDuration::from_millis(800),
                )
                .crash_restart_broker(
                    0,
                    SimTime::from_millis(9_000),
                    SimDuration::from_millis(1_200),
                )
                .transient_disconnect("h5", SimTime::from_secs(13), SimDuration::from_secs(2)),
        );
        let result = sc.run().expect("runs");
        // Diff the whole observable surface: producer/consumer/broker/SPE
        // reports, the delivery matrix, and the kernel counters.
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.consumers,
            result.report.brokers,
            result.report.spe,
            result.delivery_matrix(0),
            result.report.sim_stats,
        )
    };
    let a = run(17);
    let b = run(17);
    assert_eq!(a, b, "same seed must reproduce the fault-heavy run exactly");
    assert_ne!(
        a,
        run(18),
        "a different seed must shift the fault-heavy run"
    );
}

/// The replicated-store half of the determinism gate: transactional sinks
/// over a 3-replica store group, with the group primary crashed and
/// restarted mid-run (failover, client rotation, op-log resync) plus an SPE
/// worker crash — run twice with the same seed, diffing the full run
/// reports including the store-replica reports.
#[test]
fn store_failover_runs_reproduce_exactly() {
    use stream2gym::store::StoreConfig;
    let run = |seed: u64| -> String {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.store("h6", StoreConfig::default());
        sc.with_replicated_store(3);
        sc.with_durable_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)), "h6");
        sc.with_transactional_sinks();
        sc.faults(
            FaultPlan::new()
                .crash_restart_store(0, SimTime::from_millis(3_900), SimDuration::from_secs(3))
                .crash_restart(
                    "wordcount",
                    SimTime::from_millis(9_300),
                    SimDuration::from_millis(800),
                ),
        );
        let result = sc.run().expect("runs");
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.consumers,
            result.report.brokers,
            result.report.stores,
            result.report.spe,
            result.report.sim_stats,
        )
    };
    let a = run(29);
    let b = run(29);
    assert_eq!(
        a, b,
        "same seed must reproduce the store-failover run exactly"
    );
}

/// The parallel half of the determinism gate: a `parallelism(4)` keyed job
/// with transactional sinks, one keyed-stage instance crashed and
/// restarted, plus a broker bounce — run twice with the same seed, diffing
/// the full run reports including every stage instance's.
#[test]
fn parallel_fault_runs_reproduce_exactly() {
    use stream2gym::apps::word_count::parallel_recovery_scenario;
    let run = |seed: u64| -> String {
        let mut sc = parallel_recovery_scenario(
            120,
            SimDuration::from_millis(40),
            SimTime::from_secs(25),
            seed,
            4,
        );
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
        sc.with_transactional_sinks();
        sc.with_recoverable_broker();
        sc.faults(
            FaultPlan::new()
                .crash_restart(
                    "wordcount/1/1",
                    SimTime::from_millis(3_300),
                    SimDuration::from_millis(800),
                )
                .crash_restart_broker(
                    0,
                    SimTime::from_millis(8_000),
                    SimDuration::from_millis(1_200),
                ),
        );
        let result = sc.run().expect("runs");
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.brokers,
            result.report.spe,
            result.report.spe_instances,
            result.delivery_matrix(0),
            result.report.sim_stats,
        )
    };
    let a = run(31);
    let b = run(31);
    assert_eq!(a, b, "same seed must reproduce the parallel run exactly");
    assert_ne!(a, run(32), "a different seed must shift the parallel run");
}

/// The replicated-partition half of the determinism gate: a 3-broker
/// cluster at RF=3 and `acks=all` with the partitions' initial leader
/// killed mid-run and a follower bounced later (election, epoch-fenced
/// catch-up, ISR shrink/expand) — run twice with the same seed, diffing
/// the full run reports including each broker's recovery report.
#[test]
fn replicated_partition_fault_runs_reproduce_exactly() {
    use stream2gym::apps::word_count::{running_count_plan, word_stream};
    use stream2gym::broker::{
        BrokerConfig, CollectingSink, ConsumerProcess, ControllerConfig, ProducerConfig, TopicSpec,
    };
    use stream2gym::core::{MonitoredSink, Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
    use stream2gym::net::LinkSpec;
    use stream2gym::proto::AckMode;
    use stream2gym::spe::SpeConfig;

    let run = |seed: u64| -> (String, u64) {
        let mut sc = Scenario::new("replicated-partition-determinism");
        sc.seed(seed)
            .duration(SimTime::from_secs(30))
            .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
            .topic(TopicSpec::new("words").partitions(4))
            .topic(TopicSpec::new("counts"));
        let broker_cfg = BrokerConfig {
            heartbeat_interval: SimDuration::from_millis(300),
            session_timeout: SimDuration::from_secs(1),
            replica_fetch_interval: SimDuration::from_millis(10),
            replica_lag_max: SimDuration::from_secs(1),
            ..BrokerConfig::default()
        };
        for h in ["h1", "h2", "h3"] {
            sc.broker_with(h, broker_cfg.clone());
        }
        sc.controller_config(ControllerConfig {
            session_timeout: SimDuration::from_secs(1),
            session_check_interval: SimDuration::from_millis(250),
            ..ControllerConfig::default()
        });
        sc.with_replicated_partitions(3);
        sc.with_acks(AckMode::All);
        sc.producer(
            "hp",
            SourceSpec::Items {
                topic: "words".into(),
                items: word_stream(300, seed),
                interval: SimDuration::from_millis(50),
            },
            ProducerConfig {
                request_timeout: SimDuration::from_millis(500),
                ..ProducerConfig::default()
            },
        );
        sc.spe_job(
            "h4",
            SpeJobSpec::new(
                "wordcount",
                vec!["words".into()],
                running_count_plan,
                SpeSinkSpec::Topic("counts".into()),
                SpeConfig {
                    batch_interval: SimDuration::from_millis(250),
                    ..SpeConfig::default()
                },
            ),
        );
        sc.consumer("h5", Default::default(), &["counts"]);
        sc.faults(
            FaultPlan::new()
                // Leadership round-robins across brokers, so killing
                // broker 0 deposes the leaders of its partition share.
                .crash_restart_broker(0, SimTime::from_secs(6), SimDuration::from_secs(3))
                // The second bounce catches broker 2 as a follower for the
                // moved partitions: epoch-based truncation on rejoin.
                .crash_restart_broker(2, SimTime::from_secs(13), SimDuration::from_secs(3)),
        );
        let result = sc.run().expect("runs");
        let moves: u64 = result
            .report
            .brokers
            .iter()
            .filter_map(|b| b.recovery)
            .map(|r| r.leadership_moves)
            .sum();
        // The aggregate reports don't carry record *content* (this
        // workload's timing is fixed-interval, so two seeds can tie on
        // every counter); fold the consumer's sink bytes in so seed
        // sensitivity is visible.
        let sink: Vec<Vec<u8>> = {
            let cp = result
                .sim
                .process_ref::<ConsumerProcess>(result.consumer_pids[0])
                .expect("consumer");
            let monitored = cp.sink_as::<MonitoredSink>().expect("monitored sink");
            let s = (monitored.inner() as &dyn std::any::Any)
                .downcast_ref::<CollectingSink>()
                .expect("collecting sink");
            s.deliveries
                .iter()
                .map(|(_, _, r)| r.value.to_vec())
                .collect()
        };
        let diff = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.consumers,
            result.report.brokers,
            result.report.spe,
            result.delivery_matrix(0),
            result.report.sim_stats,
            sink,
        );
        (diff, moves)
    };
    let a = run(43);
    let b = run(43);
    assert_eq!(
        a, b,
        "same seed must reproduce the replicated-partition run exactly"
    );
    assert_ne!(
        a.0,
        run(44).0,
        "a different seed must shift the replicated-partition run"
    );
    // The gate only bites if the machinery actually ran: the crashes must
    // have moved real partition leadership.
    assert!(
        a.1 > 0,
        "the leader kill must register leadership moves in the reports"
    );
}

/// Telemetry determinism: with the sampler on a fine interval and the
/// causal tracer enabled, a fault-heavy seeded run emits byte-identical
/// metric time series and trace event sequences every time — and enabling
/// telemetry never shifts the simulation itself (the sampler is a pure
/// observer spawned after every other process, so pids are unchanged).
#[test]
fn telemetry_runs_reproduce_exactly() {
    let run = |seed: u64, trace: bool| {
        let mut sc = recovery_scenario(
            100,
            SimDuration::from_millis(50),
            SimTime::from_secs(25),
            seed,
        );
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
        sc.telemetry_interval(SimDuration::from_millis(200));
        sc.with_telemetry_trace(trace);
        sc.faults(FaultPlan::new().crash_restart(
            "wordcount",
            SimTime::from_millis(3_700),
            SimDuration::from_millis(800),
        ));
        let result = sc.run().expect("runs");
        let behavior = format!(
            "{:?}|{:?}|{:?}",
            result.report.producers,
            result.report.spe,
            result.delivery_matrix(0)
        );
        (
            result.telemetry.tidy_csv(),
            result.telemetry.chrome_json(),
            behavior,
        )
    };
    let (csv_a, trace_a, behavior_a) = run(19, true);
    let (csv_b, trace_b, behavior_b) = run(19, true);
    assert_eq!(csv_a, csv_b, "same seed, same metric time series");
    assert_eq!(trace_a, trace_b, "same seed, same trace events");
    assert_eq!(behavior_a, behavior_b, "same seed, same behavior");
    assert!(
        trace_a.contains("fault:crash"),
        "fault markers in the trace"
    );
    // Tracing off must leave the simulated behavior untouched.
    let (_, _, behavior_off) = run(19, false);
    assert_eq!(
        behavior_a, behavior_off,
        "toggling the tracer must not change the run"
    );
}
