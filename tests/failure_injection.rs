//! Failure-injection behaviors beyond the Fig. 6 partition: gray loss,
//! flapping links, host crashes, and CPU caps — the "various operational
//! conditions (e.g., network loads, failure models)" of the paper's §I.

use stream2gym::broker::TopicSpec;
use stream2gym::core::{Scenario, SourceSpec};
use stream2gym::net::{FaultAction, FaultPlan, LinkSpec};
use stream2gym::sim::{SimDuration, SimTime};

fn base_scenario(name: &str, seed: u64) -> Scenario {
    let mut sc = Scenario::new(name);
    sc.seed(seed)
        .duration(SimTime::from_secs(60))
        .default_link(LinkSpec::new().latency_ms(3))
        .topic(TopicSpec::new("events"));
    sc.broker("hb");
    sc.producer(
        "hp",
        SourceSpec::Rate {
            topic: "events".into(),
            count: 300,
            interval: SimDuration::from_millis(50),
            payload: 400,
        },
        Default::default(),
    );
    sc.consumer("hc", Default::default(), &["events"]);
    sc
}

/// Gray failure: a lossy consumer link degrades latency but client retries
/// keep the pipeline correct — every acked record is eventually delivered.
#[test]
fn gray_loss_delays_but_does_not_lose() {
    let clean = base_scenario("clean", 3).run().expect("runs");
    let mut sc = base_scenario("gray", 3);
    sc.host_link("hc", LinkSpec::new().latency_ms(3).loss_pct(20.0));
    let lossy = sc.run().expect("runs");

    assert_eq!(clean.total_deliveries(), 300);
    assert_eq!(
        lossy.total_deliveries(),
        300,
        "fetch retries must mask the gray loss"
    );
    let clean_lat = clean.mean_latency("events").expect("deliveries");
    let lossy_lat = lossy.mean_latency("events").expect("deliveries");
    assert!(
        lossy_lat > clean_lat,
        "20% loss must inflate latency: {clean_lat} vs {lossy_lat}"
    );
    // And the network actually dropped packets.
    assert!(lossy.net.borrow().drops(stream2gym::net::DropCause::Loss) > 0);
}

/// A flapping producer link: delivery completes despite repeated short
/// outages (producer-side request retries).
#[test]
fn flapping_link_is_survivable() {
    let mut sc = base_scenario("flapping", 5);
    sc.faults(FaultPlan::new().flapping_link(
        "hp",
        "s1",
        SimTime::from_secs(5),
        SimDuration::from_secs(2),
        SimDuration::from_secs(8),
        4,
    ));
    let result = sc.run().expect("runs");
    let p = &result.report.producers[0];
    assert!(p.stats.retries > 0, "flaps must force produce retries");
    assert_eq!(
        p.stats.failed, 0,
        "no record may exhaust its delivery timeout"
    );
    assert_eq!(
        result.total_deliveries(),
        300,
        "all records delivered after flaps"
    );
}

/// Crashing the consumer host mid-run: deliveries stop during the outage
/// and the backlog is served after recovery.
#[test]
fn crashed_consumer_catches_up_on_restart() {
    let mut sc = base_scenario("crash", 7);
    sc.faults(
        FaultPlan::new()
            .at(SimTime::from_secs(5), FaultAction::NodeDown("hc".into()))
            .at(SimTime::from_secs(25), FaultAction::NodeUp("hc".into())),
    );
    let result = sc.run().expect("runs");
    assert_eq!(
        result.total_deliveries(),
        300,
        "backlog must be served after the consumer host recovers"
    );
    // Nothing arrived while the host was down.
    let during_outage = result
        .monitor
        .borrow()
        .deliveries
        .iter()
        .filter(|d| {
            let s = d.delivered.as_secs();
            (6..25).contains(&s)
        })
        .count();
    assert_eq!(during_outage, 0, "a down host receives nothing");
}

/// The `cpuPercentage` cap: halving a host's CPU share slows its stream
/// job's batch runtimes measurably.
#[test]
fn cpu_percentage_cap_slows_processing() {
    use stream2gym::core::{SpeJobSpec, SpeSinkSpec};
    use stream2gym::spe::{Plan, SpeConfig};

    let build = |pct: f64, seed: u64| {
        let mut sc = Scenario::new("cpu-cap");
        sc.seed(seed)
            .duration(SimTime::from_secs(40))
            .default_link(LinkSpec::new().latency_ms(2))
            .topic(TopicSpec::new("in"));
        sc.host_cpu_percentage("hs", pct);
        sc.broker("hb");
        sc.producer(
            "hp",
            SourceSpec::Rate {
                topic: "in".into(),
                count: 2_000,
                interval: SimDuration::from_millis(10),
                payload: 200,
            },
            Default::default(),
        );
        sc.spe_job(
            "hs",
            SpeJobSpec::new(
                "identity",
                vec!["in".into()],
                Plan::new,
                SpeSinkSpec::Collect,
                SpeConfig::default(),
            ),
        );
        sc.run().expect("runs").report.spe["identity"].mean_busy_runtime
    };
    let full = build(100.0, 1);
    let capped = build(25.0, 1);
    assert!(
        capped.as_secs_f64() > full.as_secs_f64() * 2.0,
        "a 25% CPU share must slow batches: {full} vs {capped}"
    );
}
