//! Ablations over the design choices DESIGN.md calls out: acknowledgement
//! mode, replication factor, and bandwidth shaping.

use stream2gym::broker::TopicSpec;
use stream2gym::core::{Scenario, SourceSpec};
use stream2gym::net::LinkSpec;
use stream2gym::proto::AckMode;
use stream2gym::sim::{SimDuration, SimTime};

fn cluster(name: &str, replication: u32, acks: AckMode, link: LinkSpec, seed: u64) -> Scenario {
    let mut sc = Scenario::new(name);
    sc.seed(seed)
        .duration(SimTime::from_secs(40))
        .default_link(link)
        .topic(TopicSpec::new("events").replication(replication).primary(0));
    for h in ["h1", "h2", "h3"] {
        sc.broker(h);
    }
    sc.producer(
        "hp",
        SourceSpec::Rate {
            topic: "events".into(),
            count: 200,
            interval: SimDuration::from_millis(50),
            payload: 500,
        },
        stream2gym::broker::ProducerConfig {
            acks,
            ..Default::default()
        },
    );
    sc.consumer("hc", Default::default(), &["events"]);
    sc
}

/// `acks=all` waits for ISR replication, so produce-to-deliver latency is
/// strictly higher than `acks=1` on the same cluster.
#[test]
fn acks_all_costs_replication_latency() {
    let link = LinkSpec::new().latency_ms(10);
    let acks1 = cluster("acks1", 3, AckMode::Leader, link, 2)
        .run()
        .expect("runs");
    let acks_all = cluster("acksall", 3, AckMode::All, link, 2)
        .run()
        .expect("runs");
    assert_eq!(acks1.total_deliveries(), 200);
    assert_eq!(acks_all.total_deliveries(), 200);
    // Compare producer-observed ack latency.
    let mean_ack = |r: &stream2gym::core::RunResult| -> f64 {
        let o = &r.report.producers[0].outcomes;
        o.iter()
            .map(|x| x.completed.saturating_since(x.created).as_secs_f64())
            .sum::<f64>()
            / o.len() as f64
    };
    let l1 = mean_ack(&acks1);
    let lall = mean_ack(&acks_all);
    assert!(
        lall > l1 * 1.3,
        "acks=all must pay the replication round trip: {l1:.4}s vs {lall:.4}s"
    );
}

/// Higher replication factors move more bytes: follower fetch traffic is
/// visible in the leader's port counters.
#[test]
fn replication_traffic_scales_with_factor() {
    let link = LinkSpec::new().latency_ms(2);
    let r1 = cluster("r1", 1, AckMode::Leader, link, 4)
        .run()
        .expect("runs");
    let r3 = cluster("r3", 3, AckMode::Leader, link, 4)
        .run()
        .expect("runs");
    let leader_tx = |r: &stream2gym::core::RunResult| {
        let n = r.net.borrow();
        let h1 = n.topology().lookup("h1").expect("leader host");
        n.node_tx_bytes(h1)
    };
    let tx1 = leader_tx(&r1);
    let tx3 = leader_tx(&r3);
    assert!(
        tx3 as f64 > tx1 as f64 * 1.8,
        "replication 3 must roughly triple leader egress: {tx1} vs {tx3}"
    );
}

/// Bandwidth shaping: squeezing the producer's access link below its offered
/// load stretches end-to-end delivery via queueing.
#[test]
fn bandwidth_cap_throttles_delivery() {
    // 500-byte records every 5 ms ≈ 0.8 Mbps offered; cap at 0.4 Mbps.
    let fast = {
        let mut sc = Scenario::new("fast");
        sc.seed(6)
            .duration(SimTime::from_secs(60))
            .default_link(LinkSpec::new().latency_ms(2))
            .topic(TopicSpec::new("events"));
        sc.broker("hb");
        sc.producer(
            "hp",
            SourceSpec::Rate {
                topic: "events".into(),
                count: 500,
                interval: SimDuration::from_millis(5),
                payload: 500,
            },
            Default::default(),
        );
        sc.consumer("hc", Default::default(), &["events"]);
        sc.run().expect("runs")
    };
    let throttled = {
        let mut sc = Scenario::new("throttled");
        sc.seed(6)
            .duration(SimTime::from_secs(60))
            .default_link(LinkSpec::new().latency_ms(2))
            .host_link("hp", LinkSpec::new().latency_ms(2).bandwidth_mbps(0.4))
            .topic(TopicSpec::new("events"));
        sc.broker("hb");
        sc.producer(
            "hp",
            SourceSpec::Rate {
                topic: "events".into(),
                count: 500,
                interval: SimDuration::from_millis(5),
                payload: 500,
            },
            Default::default(),
        );
        sc.consumer("hc", Default::default(), &["events"]);
        sc.run().expect("runs")
    };
    let fast_lat = fast
        .mean_latency("events")
        .expect("deliveries")
        .as_secs_f64();
    let slow_lat = throttled
        .mean_latency("events")
        .expect("deliveries")
        .as_secs_f64();
    assert!(
        slow_lat > fast_lat * 2.0,
        "a link below offered load must queue: {fast_lat:.4}s vs {slow_lat:.4}s"
    );
    assert_eq!(throttled.total_deliveries(), 500, "throttled, not dropped");
}
