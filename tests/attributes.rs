//! Table I coverage: every attribute of stream2gym's modeling interface is
//! wired through the GraphML front end into running behavior.

use stream2gym::core::{parse_graphml, scenario_from_graphml, ResourceBundle};
use stream2gym::spe::{Event, Plan, Value};

fn split_plan() -> Plan {
    Plan::new().flat_map("split", |e| {
        e.value
            .as_str()
            .unwrap_or("")
            .split_whitespace()
            .map(|w| Event {
                value: Value::Str(w.to_string()),
                ..e.clone()
            })
            .collect()
    })
}

/// A description exercising every Table I attribute at once.
const FULL_SURFACE: &str = r#"
<graph edgedefault="undirected">
  <data key="topicCfg">topics.cfg</data>
  <data key="faultCfg">faults.cfg</data>
  <data key="durationS">30</data>
  <data key="seed">9</data>

  <node id="h1">
    <data key="prodType">SFST</data>
    <data key="prodCfg">src.yaml</data>
    <data key="cpuPercentage">50</data>
  </node>
  <node id="h2"><data key="brokerCfg">broker.yaml</data></node>
  <node id="h3">
    <data key="streamProcType">SPARK</data>
    <data key="streamProcCfg">spe.yaml</data>
  </node>
  <node id="h4">
    <data key="storeType">MYSQL</data>
    <data key="storeCfg">default</data>
  </node>
  <node id="h5">
    <data key="consType">STANDARD</data>
    <data key="consCfg">sink.yaml</data>
  </node>
  <node id="s1"/>
  <edge source="s1" target="h1">
    <data key="st">1</data><data key="dt">1</data>
    <data key="lat">5</data><data key="bw">100</data><data key="loss">0.0</data>
  </edge>
  <edge source="s1" target="h2"><data key="lat">5</data></edge>
  <edge source="s1" target="h3"><data key="lat">5</data></edge>
  <edge source="s1" target="h4"><data key="lat">5</data></edge>
  <edge source="s1" target="h5"><data key="lat">5</data></edge>
</graph>"#;

fn bundle() -> ResourceBundle {
    ResourceBundle::new()
        .file("topics.cfg", "raw-data 1 1\nwords 1 1\n")
        .file("faults.cfg", "10 loss h5 s1 0.5\n12 latency h5 s1 8\n")
        .file(
            "src.yaml",
            "filePath: corpus.txt\ntopicName: raw-data\nmessageInterval: 40ms\n\
             bufferMemory: 16m\nrequestTimeout: 2000ms\n",
        )
        .file("corpus.txt", "alpha beta\ngamma delta epsilon\n")
        .file("broker.yaml", "replicaLagMax: 10s\nsessionTimeout: 6s\n")
        .file(
            "spe.yaml",
            "app: split\nsourceTopics: raw-data\nsinkTopic: words\nbatchInterval: 250ms\n",
        )
        .file("sink.yaml", "topics: words\npollInterval: 50ms\n")
        .plan("split", split_plan)
}

#[test]
fn graphml_parses_all_table1_attributes() {
    let doc = parse_graphml(FULL_SURFACE).expect("parses");
    // Graph attributes.
    assert!(doc.graph_data.contains_key("topicCfg"));
    assert!(doc.graph_data.contains_key("faultCfg"));
    // Node attributes.
    let attr = |n: &str, k: &str| doc.node(n).unwrap().data.get(k).cloned();
    assert_eq!(attr("h1", "prodType").as_deref(), Some("SFST"));
    assert_eq!(attr("h1", "prodCfg").as_deref(), Some("src.yaml"));
    assert_eq!(attr("h1", "cpuPercentage").as_deref(), Some("50"));
    assert_eq!(attr("h2", "brokerCfg").as_deref(), Some("broker.yaml"));
    assert_eq!(attr("h3", "streamProcType").as_deref(), Some("SPARK"));
    assert_eq!(attr("h3", "streamProcCfg").as_deref(), Some("spe.yaml"));
    assert_eq!(attr("h4", "storeType").as_deref(), Some("MYSQL"));
    assert_eq!(attr("h4", "storeCfg").as_deref(), Some("default"));
    assert_eq!(attr("h5", "consType").as_deref(), Some("STANDARD"));
    assert_eq!(attr("h5", "consCfg").as_deref(), Some("sink.yaml"));
    // Link attributes.
    let e = &doc.edges[0];
    for k in ["st", "dt", "lat", "bw", "loss"] {
        assert!(e.data.contains_key(k), "edge attribute {k}");
    }
}

#[test]
fn full_surface_description_runs() {
    let sc = scenario_from_graphml("table1", FULL_SURFACE, &bundle()).expect("resolves");
    let result = sc.run().expect("runs");
    // The pipeline moved data end to end: 2 documents → 5 words.
    let monitor = result.monitor.borrow();
    let words: Vec<_> = monitor.for_topic("words").collect();
    assert_eq!(
        words.len(),
        5,
        "five split words delivered through the pipeline"
    );
    // The fault plan applied (loss/latency changes do not break delivery).
    assert_eq!(result.report.producers[0].stats.acked, 2);
}
