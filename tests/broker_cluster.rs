//! Multi-broker chaos: a rolling bounce of every broker in a replicated
//! cluster under sustained parallel keyed traffic with transactional
//! sinks, plus the zombie-leader fencing regression.
//!
//! The acceptance gates:
//!
//! * with `with_replicated_partitions(3)` + `acks=all`, bouncing brokers
//!   0, 1, 2 in sequence mid-run leaves the committed sink output
//!   equivalent to the fault-free run — every input counted exactly once
//!   (identical `(key, event-time)` multiset) with identical per-key
//!   update order (end-to-end exactly-once across three leader
//!   elections);
//! * a delayed produce stamped with a deposed leader's epoch bounces off
//!   the new leader with `StaleEpoch` instead of being appended (the
//!   zombie-leader fence).

use std::collections::BTreeMap;

use stream2gym::apps::word_count::{running_count_plan, word_stream};
use stream2gym::broker::{
    Broker, BrokerConfig, CollectingSink, ConsumerProcess, ControllerConfig, CoordinationMode,
    ProducerConfig, TopicSpec, ZkController,
};
use stream2gym::core::{MonitoredSink, RunResult, Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use stream2gym::net::{FaultPlan, LinkSpec, NetTransport, Network, Topology};
use stream2gym::proto::{
    AckMode, BrokerId, ClientRpc, CorrelationId, ErrorCode, LeaderEpoch, Record, RecordBatch,
    TopicPartition,
};
use stream2gym::sim::{downcast, Ctx, Message, Process, ProcessId, Sim, SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, Event, SpeConfig};

const WORDS: usize = 560;
const SEED: u64 = 41;

/// Failure detection tight enough that a 3 s outage reliably triggers an
/// election well inside the bounce window (the 6 s default session
/// timeout would sit out the whole outage), a replica-fetch interval
/// short enough that `acks=all` keeps up with the source rate, and a
/// replica lag bound short enough that surviving leaders shrink their ISR
/// during the outage instead of waiting out the 10 s default.
fn tuned_broker_cfg() -> BrokerConfig {
    BrokerConfig {
        heartbeat_interval: SimDuration::from_millis(300),
        session_timeout: SimDuration::from_secs(1),
        replica_fetch_interval: SimDuration::from_millis(10),
        replica_lag_max: SimDuration::from_secs(1),
        ..BrokerConfig::default()
    }
}

/// Three brokers, RF=3 at `acks=all`, a parallelism-2 keyed word count
/// with checkpoint-aligned transactional sinks, and a read-committed
/// consumer. The word stream spans ~28 s — the whole bounce schedule.
fn build(name: &str) -> Scenario {
    let mut sc = Scenario::new(name);
    sc.seed(SEED)
        .duration(SimTime::from_secs(45))
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
        .topic(TopicSpec::new("words").partitions(4))
        .topic(TopicSpec::new("counts"));
    for h in ["h1", "h2", "h3"] {
        sc.broker_with(h, tuned_broker_cfg());
    }
    sc.controller_config(ControllerConfig {
        session_timeout: SimDuration::from_secs(1),
        session_check_interval: SimDuration::from_millis(250),
        ..ControllerConfig::default()
    });
    sc.with_replicated_partitions(3);
    sc.with_acks(AckMode::All);
    sc.producer(
        "hp",
        SourceSpec::Items {
            topic: "words".into(),
            items: word_stream(WORDS, SEED),
            interval: SimDuration::from_millis(50),
        },
        ProducerConfig {
            request_timeout: SimDuration::from_millis(500),
            ..ProducerConfig::default()
        },
    );
    let cfg = SpeConfig {
        batch_interval: SimDuration::from_millis(250),
        scheduling_overhead: SimDuration::from_millis(20),
        startup_cpu: SimDuration::from_millis(200),
        ..SpeConfig::default()
    };
    sc.spe_job(
        "h4",
        SpeJobSpec::new(
            "wc",
            vec!["words".into()],
            running_count_plan,
            SpeSinkSpec::Topic("counts".into()),
            cfg,
        )
        .parallelism(2),
    );
    sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
    sc.with_transactional_sinks();
    sc.consumer("h5", Default::default(), &["counts"]);
    sc
}

/// Every record value the consumer observed on the sink topic, in
/// delivery order.
fn sink_bytes(result: &RunResult) -> Vec<Vec<u8>> {
    let pid = result.consumer_pids[0];
    let cp = result
        .sim
        .process_ref::<ConsumerProcess>(pid)
        .expect("consumer");
    let monitored = cp.sink_as::<MonitoredSink>().expect("monitored sink");
    let sink = (monitored.inner() as &dyn std::any::Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting sink");
    sink.deliveries
        .iter()
        .map(|(_, _, rec)| rec.value.to_vec())
        .collect()
}

/// Per-key sequences of emitted count values, preserving each key's
/// update order. Exactly-once shows as the gapless sequence
/// `1, 2, ..., n` per key: a duplicate repeats a value, a loss skips one.
fn per_key_count_sequences(bytes: &[Vec<u8>]) -> BTreeMap<String, Vec<i64>> {
    let mut map: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for b in bytes {
        let e = Event::from_bytes(b).expect("decodes");
        map.entry(e.key.unwrap_or_default())
            .or_default()
            .push(e.value.as_int().expect("count value"));
    }
    map
}

/// The multiset of `(key, event-time)` pairs on the sink — one entry per
/// counted input record (input times are unique), so equality across runs
/// means every record was counted exactly once. Which count value a given
/// input carries depends on cross-partition arrival order at the keyed
/// stage (keyless production to 4 partitions has no global order), so
/// that axis is covered by [`per_key_count_sequences`] instead.
fn counted_inputs(bytes: &[Vec<u8>]) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = bytes
        .iter()
        .map(|b| {
            let e = Event::from_bytes(b).expect("decodes");
            (e.key.unwrap_or_default(), e.ts.as_nanos())
        })
        .collect();
    v.sort();
    v
}

/// Highest count per word the consumer saw — the final keyed state.
fn final_counts(result: &RunResult) -> BTreeMap<String, i64> {
    let mut counts = BTreeMap::new();
    for value in sink_bytes(result) {
        let e = Event::from_bytes(&value).expect("SPE output decodes");
        let word = e.key.clone().expect("keyed by word");
        let n = e.value.as_int().expect("count value");
        let entry = counts.entry(word).or_insert(0);
        *entry = (*entry).max(n);
    }
    counts
}

fn ground_truth() -> BTreeMap<String, i64> {
    let mut tally = BTreeMap::new();
    for w in word_stream(WORDS, SEED) {
        *tally.entry(w).or_insert(0) += 1;
    }
    tally
}

/// The chaos gate: bounce every broker in sequence (each down 3 s, one at
/// a time so a quorum always survives) while the pipeline runs. The
/// committed sink output must be equivalent to the fault-free run's and
/// the final state must match ground truth.
#[test]
fn rolling_broker_bounce_stays_exactly_once() {
    let baseline = build("cluster-bounce-baseline")
        .run()
        .expect("baseline runs");
    assert_eq!(final_counts(&baseline), ground_truth());

    let mut sc = build("cluster-bounce-chaos");
    sc.faults(
        FaultPlan::new()
            .crash_restart_broker(0, SimTime::from_secs(8), SimDuration::from_secs(3))
            .crash_restart_broker(1, SimTime::from_secs(15), SimDuration::from_secs(3))
            .crash_restart_broker(2, SimTime::from_secs(22), SimDuration::from_secs(3)),
    );
    let faulted = sc.run().expect("chaos run completes");

    // State-level: every word counted exactly once despite three bounces.
    assert_eq!(final_counts(&faulted), ground_truth());

    // Record-level: the committed sink holds exactly one count update per
    // input record, the same set as the fault-free run — no loss, no
    // duplicates...
    assert_eq!(
        counted_inputs(&sink_bytes(&faulted)),
        counted_inputs(&sink_bytes(&baseline)),
        "committed sink output must count the same inputs as the fault-free run"
    );
    // ...and each key's committed update order survived intact.
    assert_eq!(
        per_key_count_sequences(&sink_bytes(&faulted)),
        per_key_count_sequences(&sink_bytes(&baseline)),
    );

    // The bounce really exercised the replication machinery: leadership
    // moved off crashed brokers and the ISR shrank and re-expanded.
    let recoveries: Vec<_> = faulted
        .report
        .brokers
        .iter()
        .filter_map(|b| b.recovery)
        .collect();
    assert_eq!(recoveries.len(), 3, "all three brokers report a recovery");
    let moves: u64 = recoveries.iter().map(|r| r.leadership_moves).sum();
    assert!(moves > 0, "elections moved partition leadership");
    assert!(
        recoveries.iter().any(|r| r.isr_shrinks > 0),
        "ISR shrank while replicas were down"
    );
    assert!(
        recoveries.iter().any(|r| r.isr_expands > 0),
        "caught-up replicas re-entered the ISR"
    );
}

// ---------------------------------------------------------------------------
// Zombie-leader fencing regression.
// ---------------------------------------------------------------------------

/// A produce frozen in flight during a deposed leader's reign: stamped
/// with the old epoch and released straight at the *new* leader, exactly
/// the delayed-packet shape the epoch fence exists for.
struct StaleProducer {
    target: ProcessId,
    tp: TopicPartition,
    epoch: LeaderEpoch,
    response: Option<ErrorCode>,
}

impl Process for StaleProducer {
    fn name(&self) -> &str {
        "stale-producer"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(
            self.target,
            ClientRpc::ProduceRequest {
                corr: CorrelationId(990_001),
                tp: self.tp.clone(),
                batch: RecordBatch::from_records(vec![Record::keyless(
                    b"zombie".to_vec(),
                    ctx.now(),
                )]),
                acks: AckMode::Leader,
                epoch: self.epoch,
                txn: None,
            },
        );
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        if let Ok(rpc) = downcast::<ClientRpc>(msg) {
            if let ClientRpc::ProduceResponse { error, .. } = *rpc {
                self.response = Some(error);
            }
        }
    }
}

/// Builds a bare 3-broker RF=3 cluster (no client traffic — elections run
/// on heartbeats alone) and returns the sim plus the handles the test
/// needs to steer it.
fn bare_cluster(
    seed: u64,
) -> (
    Sim,
    std::rc::Rc<std::cell::RefCell<Network>>,
    Vec<ProcessId>,
) {
    let mut topo = Topology::star(3, LinkSpec::new().latency_ms(2)).unwrap();
    for h in ["hc", "hp"] {
        topo.add_host(h).unwrap();
        topo.add_link(h, "s1", LinkSpec::new().latency_ms(2))
            .unwrap();
    }
    let net = Network::new(topo).into_handle();
    let mut sim = Sim::new(seed);
    sim.set_transport(Box::new(NetTransport(net.clone())));

    let topics = vec![TopicSpec::new("events").replication(3).primary(0)];
    let controller_pid = ProcessId(0);
    let broker_pids: Vec<ProcessId> = (1..4).map(ProcessId).collect();
    let brokers: std::collections::BTreeMap<BrokerId, ProcessId> = (0..3)
        .map(|i| (BrokerId(i), broker_pids[i as usize]))
        .collect();
    let brokers_hash: std::collections::BTreeMap<BrokerId, ProcessId> =
        brokers.iter().map(|(k, v)| (*k, *v)).collect();

    let ctrl_cfg = ControllerConfig {
        session_timeout: SimDuration::from_secs(1),
        session_check_interval: SimDuration::from_millis(250),
        ..ControllerConfig::default()
    };
    let pid = sim.spawn(Box::new(ZkController::new(
        ctrl_cfg,
        brokers.clone(),
        &topics,
    )));
    assert_eq!(pid, controller_pid);
    for i in 0..3u32 {
        let b = Broker::new(
            BrokerId(i),
            tuned_broker_cfg(),
            CoordinationMode::Zk,
            vec![controller_pid],
            brokers_hash.clone(),
        );
        let pid = sim.spawn(Box::new(b));
        assert_eq!(pid, broker_pids[i as usize]);
    }
    {
        let mut n = net.borrow_mut();
        let hc = n.topology().lookup("hc").unwrap();
        let hosts: Vec<_> = (0..3)
            .map(|i| n.topology().lookup(&format!("h{}", i + 1)).unwrap())
            .collect();
        n.place(controller_pid, hc);
        for (i, pid) in broker_pids.iter().enumerate() {
            n.place(*pid, hosts[i]);
        }
    }
    (sim, net, broker_pids)
}

/// The regression: after an election, a produce stamped with the deposed
/// leader's epoch must bounce off the new leader with `StaleEpoch` — not
/// be appended — and the rejection must show up in the broker's stats.
#[test]
fn delayed_produce_from_deposed_epoch_is_fenced() {
    let (mut sim, net, broker_pids) = bare_cluster(13);
    let tp = TopicPartition::new("events", 0);

    sim.run_until(SimTime::from_secs(5));
    let old_leader = (0..3)
        .find(|i| {
            sim.process_ref::<Broker>(broker_pids[*i as usize])
                .is_some_and(|b| b.is_leader(&tp))
        })
        .expect("initial leader elected");
    let old_epoch = sim
        .process_ref::<Broker>(broker_pids[old_leader as usize])
        .unwrap()
        .leader_epoch(&tp)
        .expect("leader knows its epoch");

    // Depose it and let the controller elect a successor.
    sim.kill(broker_pids[old_leader as usize])
        .expect("old leader was alive");
    sim.run_until(SimTime::from_secs(10));
    let new_leader = (0..3)
        .filter(|i| *i != old_leader)
        .find(|i| {
            sim.process_ref::<Broker>(broker_pids[*i as usize])
                .is_some_and(|b| b.is_leader(&tp))
        })
        .expect("successor elected");
    let new_pid = broker_pids[new_leader as usize];
    let new_epoch = sim
        .process_ref::<Broker>(new_pid)
        .unwrap()
        .leader_epoch(&tp)
        .unwrap();
    assert!(
        new_epoch > old_epoch,
        "election must advance the leader epoch ({old_epoch:?} -> {new_epoch:?})"
    );
    let rejected_before = sim
        .process_ref::<Broker>(new_pid)
        .unwrap()
        .stats()
        .rejected_stale_epoch;
    let log_before = sim
        .process_ref::<Broker>(new_pid)
        .unwrap()
        .log_fingerprint(&tp);

    // Release the zombie produce at the new leader.
    let now = sim.now();
    let probe = sim.spawn_at(
        now,
        Box::new(StaleProducer {
            target: new_pid,
            tp: tp.clone(),
            epoch: old_epoch,
            response: None,
        }),
    );
    {
        let mut n = net.borrow_mut();
        let hp = n.topology().lookup("hp").unwrap();
        n.place(probe, hp);
    }
    sim.run_until(SimTime::from_secs(12));

    let b = sim.process_ref::<Broker>(new_pid).unwrap();
    assert_eq!(
        sim.process_ref::<StaleProducer>(probe).unwrap().response,
        Some(ErrorCode::StaleEpoch),
        "the deposed-epoch produce must be answered with StaleEpoch"
    );
    assert_eq!(
        b.stats().rejected_stale_epoch,
        rejected_before + 1,
        "the fence rejection is counted"
    );
    assert_eq!(
        b.log_fingerprint(&tp),
        log_before,
        "the zombie record must not reach the log"
    );
}
